//! Offline workspace shim for the subset of the `rand` 0.8 API that the
//! REAP crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the real dependency. The generator is SplitMix64: deterministic,
//! fast, and statistically adequate for synthetic-data generation and
//! simulation — it is **not** cryptographically secure. Seeded streams are
//! stable across runs and platforms, which the repo's determinism tests
//! rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed. Two generators built from the
    /// same seed yield identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating-point rounding can land exactly on `end`; clamp
                // back inside the half-open interval.
                if v < self.end { v } else { <$t>::max(self.start, prev_down(self.end)) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

/// Largest float strictly below `x` (used to keep half-open ranges honest).
fn prev_down<T: Float>(x: T) -> T {
    x.prev_down_impl()
}

/// Minimal float helper so the range clamp above can be written generically.
trait Float: Copy {
    fn prev_down_impl(self) -> Self;
}

impl Float for f64 {
    fn prev_down_impl(self) -> Self {
        if self.is_finite() {
            let next = self - self.abs() * f64::EPSILON - f64::MIN_POSITIVE;
            if next < self {
                next
            } else {
                self
            }
        } else {
            self
        }
    }
}

impl Float for f32 {
    fn prev_down_impl(self) -> Self {
        if self.is_finite() {
            let next = self - self.abs() * f32::EPSILON - f32::MIN_POSITIVE;
            if next < self {
                next
            } else {
                self
            }
        } else {
            self
        }
    }
}

impl_float_sample_range!(f32, f64);

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator of this shim: SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographically secure, but it is deterministic, seedable, and
    /// fast, which is all the REAP workloads need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related extensions (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Return one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&x));
            let n = rng.gen_range(3..9usize);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(0..=4u32);
            assert!(m <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }
}
