//! The [`Strategy`] trait and its combinators: how property tests describe
//! the space of inputs to sample from.

use crate::runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// either produces a value or rejects (`None`, e.g. a filter failed), and
/// rejected draws are retried by the runner.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value, or `None` if this particular draw was rejected.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Generate an intermediate value, then sample from the strategy it
    /// maps to.
    fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, map }
    }

    /// Keep only values satisfying `predicate`. `_whence` labels the
    /// filter in diagnostics (unused by this shim).
    fn prop_filter<F>(self, _whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            predicate,
        }
    }

    /// Map values through a fallible transform, rejecting draws where it
    /// returns `None`.
    fn prop_filter_map<O, F>(self, _whence: &'static str, map: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { base: self, map }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// Sample with retries; `None` means the strategy kept rejecting and the
/// whole test case should be discarded. Used by the [`crate::proptest!`]
/// macro expansion.
pub fn sample_for_case<S: Strategy>(strategy: &S, rng: &mut TestRng) -> Option<S::Value> {
    const MAX_LOCAL_REJECTS: u32 = 64;
    for _ in 0..MAX_LOCAL_REJECTS {
        if let Some(value) = strategy.sample(rng) {
            return Some(value);
        }
    }
    None
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.base.sample(rng).map(&self.map)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    map: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let intermediate = self.base.sample(rng)?;
        (self.map)(intermediate).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base
            .sample(rng)
            .filter(|value| (self.predicate)(value))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    map: F,
}

impl<S, F, O> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.base.sample(rng).and_then(&self.map)
    }
}

/// Uniform choice between type-erased strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over `arms`.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let arm = rng.index(self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + offset as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                Some((start as i128 + offset as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "strategy range is empty");
                let unit = rng.unit_f64() as $t;
                let value = self.start + unit * (self.end - self.start);
                // Rounding can land exactly on `end`; redraw via rejection.
                if value < self.end { Some(value) } else { None }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let unit = rng.unit_f64() as $t;
                Some(start + unit * (end - start))
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}
