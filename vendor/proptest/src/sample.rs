//! Sampling strategies over explicit value sets (`proptest::sample::select`).

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Strategy choosing uniformly from the given values.
///
/// # Panics
/// Panics (on first sample) if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(self.options[rng.index(self.options.len())].clone())
    }
}
