//! Offline workspace shim for the subset of the `proptest` 1.x API that the
//! REAP property tests use: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`,
//! range and tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//! [`collection::vec`],
//! [`sample::select`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! - **No shrinking**: a failing case reports its values via the assertion
//!   message but is not minimized.
//! - **Deterministic**: each test derives its RNG stream from the test
//!   name, so failures reproduce exactly across runs.
//!
//! [`proptest!`]: macro.proptest.html
//! [`prop_oneof!`]: macro.prop_oneof.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod runner;
pub mod sample;
pub mod strategy;

/// The types and macros most property tests need, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property test; on failure the test panics
/// with the condition (and any formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Assert two values are equal (requires `PartialEq + Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

/// Assert two values are not equal (requires `PartialEq + Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!($($fmt)+);
        }
    }};
}

/// Discard the current test case (it does not count toward the case total)
/// if the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            $crate::runner::mark_rejected();
            return;
        }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type. Only the unweighted form is supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::run_cases($config, stringify!($name), |__reap_rng| {
                $(
                    let $pat = match $crate::strategy::sample_for_case(&($strategy), __reap_rng) {
                        ::core::option::Option::Some(value) => value,
                        ::core::option::Option::None => {
                            $crate::runner::mark_rejected();
                            return;
                        }
                    };
                )+
                $body
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
