//! Collection strategies (`proptest::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// An inclusive size bracket for generated collections, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "vec size range is empty");
        SizeRange {
            lo: range.start,
            hi_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "vec size range is empty");
        SizeRange {
            lo: *range.start(),
            hi_inclusive: *range.end(),
        }
    }
}

/// Strategy for `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.index(span);
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.element.sample(rng)?);
        }
        Some(values)
    }
}
