//! Case runner: drives each property over many deterministically seeded
//! inputs and tracks `prop_assume!` rejections.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::cell::Cell;

/// How many random cases each property runs, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

thread_local! {
    static REJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Mark the current case as rejected (`prop_assume!` failed or a filter
/// strategy could not produce a value). The case will not count toward the
/// configured total.
pub fn mark_rejected() {
    REJECTED.with(|flag| flag.set(true));
}

fn take_rejected() -> bool {
    REJECTED.with(|flag| flag.replace(false))
}

/// Deterministic per-test random source handed to strategies.
///
/// Wraps the workspace `rand` shim's [`StdRng`], seeded from the test
/// name, so each property gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn for_case(test_name: &str, case_index: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform index in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "TestRng::index: empty range");
        self.inner.gen_range(0..bound)
    }
}

/// Run `case` until `config.cases` non-rejected executions have completed.
///
/// A panic inside `case` (e.g. from `prop_assert!`) propagates and fails
/// the surrounding `#[test]`. Rejections (via [`mark_rejected`]) are
/// retried with fresh inputs, up to a generous cap.
pub fn run_cases(config: ProptestConfig, test_name: &str, case: impl Fn(&mut TestRng)) {
    let max_rejections = config.cases.saturating_mul(32).max(4096);
    let mut completed: u32 = 0;
    let mut rejections: u32 = 0;
    let mut stream: u64 = 0;
    take_rejected(); // Clear any leftover flag from a prior test on this thread.
    while completed < config.cases {
        let mut rng = TestRng::for_case(test_name, stream);
        stream += 1;
        case(&mut rng);
        if take_rejected() {
            rejections += 1;
            assert!(
                rejections <= max_rejections,
                "proptest shim: `{test_name}` rejected {rejections} cases \
                 (completed {completed}/{} before giving up); \
                 the strategy or prop_assume! filter is too strict",
                config.cases
            );
        } else {
            completed += 1;
        }
    }
}
