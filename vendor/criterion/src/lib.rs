//! Offline workspace shim for the subset of the `criterion` 0.5 API that
//! the REAP benches use: [`Criterion`], [`BenchmarkId`], benchmark groups
//! with `sample_size` / `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up briefly, then timed in
//! batches until ~60 ms of measurement has accumulated; the per-iteration
//! mean and min are printed. No statistical analysis, plots, or HTML
//! reports — just honest wall-clock numbers suitable for spotting
//! order-of-magnitude regressions in CI logs.
//!
//! Machine-readable output: set `CRITERION_JSON=<path>` and every
//! completed [`Criterion`] appends its measurements to `<path>` as JSON
//! lines (`{"label": ..., "mean_ns": ..., "min_ns": ..., "iterations":
//! ...}`), so CI can track the perf trajectory without scraping logs. The
//! standalone [`measure`] helper runs the same warmup/batch loop directly
//! for harnesses (like `reap-bench`'s `bench_planner`) that assemble their
//! own reports.
//!
//! [`criterion_group!`]: macro.criterion_group.html
//! [`criterion_main!`]: macro.criterion_main.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// Target accumulated measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(60);
/// Warmup budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(10);

/// One completed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark label (`group/function/param`).
    pub label: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed batch, per iteration, in nanoseconds.
    pub min_ns: f64,
    /// Total iterations timed.
    pub iterations: u64,
}

impl Measurement {
    /// Renders the measurement as a JSON object (no external serializer;
    /// labels are ASCII benchmark ids, escaped minimally).
    #[must_use]
    pub fn to_json(&self) -> String {
        let escaped: String = self
            .label
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        format!(
            "{{\"label\": \"{escaped}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iterations\": {}}}",
            self.mean_ns, self.min_ns, self.iterations
        )
    }
}

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let m = run_benchmark(&id.into().label, &mut routine);
        self.results.push(m);
        self
    }

    /// Every measurement this `Criterion` has completed, in run order.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

impl Drop for Criterion {
    /// Appends the run's measurements to the `CRITERION_JSON` file (one
    /// JSON object per line) when that variable is set.
    fn drop(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() || self.results.is_empty() {
            return;
        }
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion shim: cannot open CRITERION_JSON={path}");
            return;
        };
        for m in &self.results {
            let _ = writeln!(file, "{}", m.to_json());
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes runs by wall-clock
    /// budget instead of sample counts.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let m = run_benchmark(&label, &mut routine);
        self.criterion.results.push(m);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let m = run_benchmark(&label, &mut |bencher: &mut Bencher| routine(bencher, input));
        self.criterion.results.push(m);
        self
    }

    /// Finish the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures handed to it by a benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
    min: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iterations: 0,
            min: Duration::MAX,
        }
    }

    /// Measure `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: also estimates per-iteration cost to pick a batch size
        // large enough that Instant overhead stays negligible.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 10_000) as u64;

        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = batch_start.elapsed();
            self.total += elapsed;
            self.iterations += batch;
            let per = elapsed / u32::try_from(batch).unwrap_or(u32::MAX);
            if per < self.min {
                self.min = per;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, routine: &mut F) -> Measurement {
    let mut bencher = Bencher::new();
    routine(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<44} (no iterations)");
        return Measurement {
            label: label.to_owned(),
            mean_ns: 0.0,
            min_ns: 0.0,
            iterations: 0,
        };
    }
    let mean = bencher.total.as_nanos() / u128::from(bencher.iterations);
    println!(
        "{label:<44} mean {:>12} min {:>12} ({} iters)",
        format_ns(mean),
        format_ns(bencher.min.as_nanos()),
        bencher.iterations
    );
    Measurement {
        label: label.to_owned(),
        mean_ns: bencher.total.as_nanos() as f64 / bencher.iterations as f64,
        min_ns: bencher.min.as_nanos() as f64,
        iterations: bencher.iterations,
    }
}

/// Runs the shim's warmup/batch timing loop on `routine` directly and
/// returns the measurement without printing. For harnesses that build
/// their own reports (e.g. machine-readable perf baselines).
pub fn measure<O, R: FnMut() -> O>(label: impl Into<String>, routine: R) -> Measurement {
    let mut bencher = Bencher::new();
    let mut routine = routine;
    bencher.iter(&mut routine);
    Measurement {
        label: label.into(),
        mean_ns: if bencher.iterations == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iterations as f64
        },
        min_ns: if bencher.iterations == 0 {
            0.0
        } else {
            bencher.min.as_nanos() as f64
        },
        iterations: bencher.iterations,
    }
}

fn format_ns(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Define a benchmark group function `$name` that runs each target with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `fn main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; this shim
            // runs everything unconditionally and ignores them.
            $($group();)+
        }
    };
}
