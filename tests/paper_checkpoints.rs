//! Integration tests pinning every quantitative checkpoint the paper
//! states, end to end through the public facade (paper characterization).

use reap::core::{static_schedule, ReapProblem};
use reap::units::{Energy, TimeSpan};

fn paper_problem(alpha: f64) -> ReapProblem {
    ReapProblem::builder()
        .alpha(alpha)
        .points(reap::device::paper_table2_operating_points())
        .build()
        .expect("paper points are valid")
}

#[test]
fn off_state_floor_is_0_18_joules() {
    // Sec. 5.2: "the minimum energy required to run the energy harvesting
    // and monitoring circuitry is 0.18 J".
    let p = paper_problem(1.0);
    assert!((p.min_budget().joules() - 0.18).abs() < 1e-12);
}

#[test]
fn dp1_saturates_at_9_9_joules() {
    // Sec. 5.2: "9.9 J energy is sufficient to run DP1 ... throughout TP".
    let p = paper_problem(1.0);
    assert!((p.saturation_budget().joules() - 9.936).abs() < 1e-3);
    let s = p.solve(Energy::from_joules(9.94)).expect("solvable");
    assert!((s.fraction_for(1) - 1.0).abs() < 1e-6);
}

#[test]
fn five_joule_budget_mixes_dp4_and_dp5() {
    // Sec. 5.2: "At 5 J energy budget ... REAP utilizes DP4 42% of the
    // time and DP5 for 58% of the time".
    let p = paper_problem(1.0);
    let s = p.solve(Energy::from_joules(5.0)).expect("solvable");
    assert!((s.fraction_for(4) - 0.42).abs() < 0.02);
    assert!((s.fraction_for(5) - 0.58).abs() < 0.02);
}

#[test]
fn dp5_saturates_at_4_3_joules() {
    // Sec. 5.2: "When the energy budget goes over 4.3 J, DP5 can remain
    // active throughout the activity period".
    let p = paper_problem(1.0);
    let below = static_schedule(&p, 5, Energy::from_joules(4.2)).expect("solvable");
    let above = static_schedule(&p, 5, Energy::from_joules(4.4)).expect("solvable");
    assert!(below.active_fraction() < 1.0);
    assert!((above.active_fraction() - 1.0).abs() < 1e-9);
}

#[test]
fn region1_active_time_is_2_3x_dp1() {
    // Fig. 5(b): "REAP also achieves 2.3x larger active time compared to
    // DP1" in Region 1.
    let p = paper_problem(1.0);
    let budget = Energy::from_joules(3.0);
    let reap = p.solve(budget).expect("solvable");
    let dp1 = static_schedule(&p, 1, budget).expect("solvable");
    let ratio = reap.active_time() / dp1.active_time();
    assert!((2.2..2.5).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn alpha2_dp4_dominates_below_6j_and_dp3_crosses_at_6_5j() {
    // Sec. 5.3 / Fig. 6.
    let p = paper_problem(2.0);
    // Below 6 J REAP runs DP4 alone and static DP4 matches it.
    let s5 = p.solve(Energy::from_joules(5.0)).expect("solvable");
    let dp4 = static_schedule(&p, 4, Energy::from_joules(5.0)).expect("solvable");
    assert!((s5.objective(2.0) - dp4.objective(2.0)).abs() < 1e-9);
    // DP3 matches REAP at ~6.5 J and falls behind at 8.5 J.
    let at = |j: f64, id: u8| {
        let reap = p.solve(Energy::from_joules(j)).expect("solvable");
        let stat = static_schedule(&p, id, Energy::from_joules(j)).expect("solvable");
        stat.objective(2.0) / reap.objective(2.0)
    };
    assert!(
        (at(6.5, 3) - 1.0).abs() < 0.02,
        "DP3/REAP at 6.5 J = {}",
        at(6.5, 3)
    );
    assert!(at(8.5, 3) < 0.99, "DP3/REAP at 8.5 J = {}", at(8.5, 3));
    // Beyond 9.9 J REAP reduces to DP1.
    assert!((at(10.0, 1) - 1.0).abs() < 1e-6);
}

#[test]
fn reap_matches_or_beats_every_static_point_across_the_sweep() {
    // The paper's core claim, for both alpha regimes it evaluates.
    for alpha in [1.0, 2.0] {
        let p = paper_problem(alpha);
        for j in [
            0.18, 0.5, 1.0, 2.0, 3.0, 4.32, 5.0, 6.0, 7.0, 8.0, 9.0, 9.94, 11.0,
        ] {
            let budget = Energy::from_joules(j);
            let reap = p.solve(budget).expect("solvable");
            for point in p.points() {
                let stat = static_schedule(&p, point.id(), budget).expect("solvable");
                assert!(
                    reap.objective(alpha) >= stat.objective(alpha) - 1e-9,
                    "alpha {alpha}, {j} J: REAP {} < DP{} {}",
                    reap.objective(alpha),
                    point.id(),
                    stat.objective(alpha)
                );
            }
        }
    }
}

#[test]
fn offloading_raw_data_is_not_energy_efficient() {
    // Sec. 4.2: 5.5 mJ raw offload vs 0.38 mJ result transmission.
    let dp1 = &reap::har::DpConfig::paper_pareto_5()[0];
    let (raw, result) = reap::device::radio::offload_comparison(dp1);
    assert!((raw.millijoules() - 5.5).abs() < 1e-9);
    assert!((result.millijoules() - 0.38).abs() < 1e-12);
}

#[test]
fn solver_is_fast_enough_for_runtime_use() {
    // Sec. 3.3: the MCU solves 5 DPs in 1.5 ms and 100 DPs in 8 ms; a
    // desktop-class host must be far under those bounds, and scaling from
    // 5 to 100 points must stay within ~10x (the paper's ratio is 5.3x).
    use reap::core::OperatingPoint;
    use reap::units::Power;
    let time_for = |n: usize| {
        let points: Vec<OperatingPoint> = (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                OperatingPoint::new(
                    i as u8 + 1,
                    format!("P{i}"),
                    0.5 + 0.45 * f,
                    Power::from_milliwatts(1.0 + 2.0 * f),
                )
                .expect("valid")
            })
            .collect();
        let p = ReapProblem::builder()
            .points(points)
            .build()
            .expect("valid");
        let start = std::time::Instant::now();
        for _ in 0..50 {
            let _ = p.solve(Energy::from_joules(5.0)).expect("solvable");
        }
        start.elapsed().as_secs_f64() / 50.0
    };
    let t5 = time_for(5);
    let t100 = time_for(100);
    assert!(t5 < 1.5e-3, "5-point solve took {t5}s");
    assert!(t100 < 8e-3, "100-point solve took {t100}s");
}

#[test]
fn month_long_case_study_matches_fig7_shape() {
    use reap::harvest::HarvestTrace;
    use reap::sim::{Policy, Scenario};
    let trace = HarvestTrace::september_like(2019);
    let run = |alpha: f64| {
        let scenario = Scenario::builder(trace.clone())
            .points(reap::device::paper_table2_operating_points())
            .alpha(alpha)
            .build()
            .expect("valid scenario");
        let reap = scenario.run(Policy::Reap).expect("runs");
        let dp1 = scenario.run(Policy::Static(1)).expect("runs");
        let dp5 = scenario.run(Policy::Static(5)).expect("runs");
        let vs1 = reap.normalized_daily(&dp1, alpha).expect("dp1 scores");
        let vs5 = reap.normalized_daily(&dp5, alpha).expect("dp5 scores");
        (vs1, vs5)
    };
    let ((_, mean1_low, _), (_, mean5_low, _)) = run(0.5);
    let ((_, mean1_high, _), (_, mean5_high, _)) = run(8.0);
    // vs DP1: large gains at alpha = 0.5, smaller but > 1.1x at alpha = 8.
    assert!(mean1_low > 1.4, "vs DP1 at alpha 0.5: {mean1_low}");
    assert!(mean1_high > 1.1, "vs DP1 at alpha 8: {mean1_high}");
    assert!(mean1_low > mean1_high, "gains must shrink with alpha");
    // vs DP5: near parity at alpha = 0.5, large gains at alpha = 8.
    assert!(mean5_low < 1.2, "vs DP5 at alpha 0.5: {mean5_low}");
    assert!(mean5_high > 1.5, "vs DP5 at alpha 8: {mean5_high}");
}

#[test]
fn window_period_arithmetic_matches_paper() {
    // 1.6 s windows, 100 Hz sampling, one-hour activity period.
    assert_eq!(reap::data::WINDOW_SAMPLES, 160);
    assert!((reap::data::WINDOW_SECONDS - 1.6).abs() < 1e-12);
    let per_hour = TimeSpan::from_hours(1.0).seconds() / reap::data::WINDOW_SECONDS;
    assert!((per_hour - 2250.0).abs() < 1e-9);
}
