//! Reproducibility: every stochastic component in the workspace is
//! seeded, so identical seeds must give bit-identical results across the
//! whole stack — the property that makes the experiment harness
//! trustworthy.

use reap::data::Dataset;
use reap::har::{train_classifier, DpConfig, TrainConfig};
use reap::harvest::HarvestTrace;
use reap::sim::{Policy, Scenario};
use reap::units::Energy;

#[test]
fn dataset_generation_is_bit_reproducible() {
    let a = Dataset::generate(3, 210, 77);
    let b = Dataset::generate(3, 210, 77);
    assert_eq!(a, b);
    assert_ne!(a, Dataset::generate(3, 210, 78));
}

#[test]
fn training_is_bit_reproducible() {
    let dataset = Dataset::generate(3, 210, 5);
    let config = &DpConfig::paper_pareto_5()[4];
    let a = train_classifier(&dataset, config, &TrainConfig::fast(5)).expect("trains");
    let b = train_classifier(&dataset, config, &TrainConfig::fast(5)).expect("trains");
    assert_eq!(a.test_accuracy, b.test_accuracy);
    assert_eq!(a.confusion, b.confusion);
}

#[test]
fn harvest_traces_are_bit_reproducible() {
    assert_eq!(
        HarvestTrace::september_like(123),
        HarvestTrace::september_like(123)
    );
}

#[test]
fn whole_simulations_are_bit_reproducible() {
    let build = || {
        Scenario::builder(HarvestTrace::september_like(3))
            .points(reap::device::paper_table2_operating_points())
            .build()
            .expect("valid")
    };
    let a = build().run(Policy::Reap).expect("runs");
    let b = build().run(Policy::Reap).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn solver_output_does_not_depend_on_call_history() {
    // Solving other budgets in between must not perturb a solve.
    let problem = reap::core::ReapProblem::builder()
        .points(reap::device::paper_table2_operating_points())
        .build()
        .expect("valid");
    let before = problem.solve(Energy::from_joules(5.0)).expect("solvable");
    for j in [0.2, 1.0, 7.7, 11.0] {
        let _ = problem.solve(Energy::from_joules(j)).expect("solvable");
    }
    let after = problem.solve(Energy::from_joules(5.0)).expect("solvable");
    assert_eq!(before, after);
}
