//! Cross-crate integration: the full pipeline from synthetic sensor data
//! to an executed schedule, including a classifier-in-the-loop check that
//! realized recognition accuracy tracks the accuracy the optimizer was
//! promised.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reap::data::{ActivityWindow, Dataset, UserProfile};
use reap::device::characterize;
use reap::har::{train_classifier, DesignPoint, DpConfig, TrainConfig};
use reap::sim::ActivityStream;
use reap::units::Energy;

/// Train a small model, characterize it, optimize with it, and execute
/// the schedule against freshly synthesized sensor data.
#[test]
fn pipeline_from_waveforms_to_schedule() {
    let dataset = Dataset::generate(5, 560, 7);
    let train_config = TrainConfig::fast(7);

    // Train two design points: the best and the cheapest.
    let configs = DpConfig::paper_pareto_5();
    let dp1_trained = train_classifier(&dataset, &configs[0], &train_config).expect("trains");
    let dp5_trained = train_classifier(&dataset, &configs[4], &train_config).expect("trains");

    // Characterize on the device model and build the optimizer's view.
    let dp1 = characterize(
        &DesignPoint::new(1, configs[0].clone(), dp1_trained.test_accuracy).expect("valid"),
    );
    let dp5 = characterize(
        &DesignPoint::new(5, configs[4].clone(), dp5_trained.test_accuracy).expect("valid"),
    );
    assert!(dp1.total_energy() > dp5.total_energy());
    assert!(dp1.point.accuracy > dp5.point.accuracy);

    let problem = reap::core::ReapProblem::builder()
        .points(vec![dp1.operating_point(), dp5.operating_point()])
        .build()
        .expect("valid problem");

    // A mid-range budget must mix or pick one point and stay feasible.
    let budget = Energy::from_joules(5.0);
    let schedule = problem.solve(budget).expect("solvable");
    assert!(schedule.is_feasible(budget, 1e-6));
    assert!(schedule.expected_accuracy() > 0.5);

    // Execute the schedule "for real": classify fresh windows with each
    // allocated design point for its time share and measure accuracy.
    let mut stream = ActivityStream::new(99);
    let profile = UserProfile::generate(3, 7);
    let mut rng = StdRng::seed_from_u64(123);
    let mut correct = 0usize;
    let mut total = 0usize;
    for allocation in schedule.allocations() {
        let windows = (allocation.duration.seconds() / 1.6) as usize;
        // Sample a manageable number of windows proportional to the
        // allocation.
        let sample = (windows / 20).clamp(1, 60);
        let classifier = if allocation.point.id() == 1 {
            &dp1_trained
        } else {
            &dp5_trained
        };
        for _ in 0..sample {
            let label = stream.next_window();
            let window = ActivityWindow::synthesize(&profile, label, &mut rng);
            if classifier.classify(&window).expect("classifies") == label {
                correct += 1;
            }
            total += 1;
        }
    }
    let realized = correct as f64 / total as f64;
    // The optimizer's promise must not be overoptimistic: realized
    // accuracy must not fall meaningfully below the planned expected
    // accuracy. (It may legitimately exceed it — the measured test
    // accuracy includes label noise and cross-user confusion, while this
    // execution classifies clean windows of an in-cohort user.)
    assert!(
        realized >= schedule.expected_accuracy() - 0.10,
        "realized {realized} fell below expected {}",
        schedule.expected_accuracy()
    );
    assert!(
        realized > 0.5,
        "realized accuracy {realized} implausibly low"
    );
}

/// The trained five-point set yields a valid problem whose solution
/// structure matches the paper's (<= 2 active points, feasible, dominated
/// by no static policy).
#[test]
fn trained_points_preserve_optimizer_invariants() {
    let dataset = Dataset::generate(4, 420, 11);
    let train_config = TrainConfig::fast(11);
    let points: Vec<reap::core::OperatingPoint> = DpConfig::paper_pareto_5()
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let trained = train_classifier(&dataset, config, &train_config).expect("trains");
            characterize(
                &DesignPoint::new(i as u8 + 1, config.clone(), trained.test_accuracy)
                    .expect("valid"),
            )
            .operating_point()
        })
        .collect();
    let problem = reap::core::ReapProblem::builder()
        .points(points)
        .build()
        .expect("valid");
    for j in [0.5, 2.0, 4.0, 6.0, 9.0] {
        let budget = Energy::from_joules(j);
        let reap = problem.solve(budget).expect("solvable");
        assert!(reap.allocations().len() <= 2);
        assert!(reap.is_feasible(budget, 1e-6));
        for p in problem.points() {
            let stat = reap::core::static_schedule(&problem, p.id(), budget).expect("solvable");
            assert!(reap.objective(1.0) >= stat.objective(1.0) - 1e-9);
        }
    }
}

/// Harvest -> allocate -> plan -> execute, with the classifier-backed
/// operating points, over a synthetic week.
#[test]
fn week_long_simulation_with_trained_points() {
    use reap::harvest::{HarvestTrace, SolarModel, SolarPanel, WeatherModel};
    use reap::sim::Scenario;

    let trace = HarvestTrace::generate(
        &SolarModel::golden_colorado(),
        &WeatherModel::new(5),
        &SolarPanel::sp3_37_wearable(),
        244,
        7,
    )
    .expect("valid");
    let scenario = Scenario::builder(trace)
        .points(reap::device::paper_table2_operating_points())
        .build()
        .expect("valid");
    let (reap_report, statics) = scenario.run_all().expect("runs");
    assert_eq!(reap_report.hours().len(), 7 * 24);
    assert_eq!(statics.len(), 5);
    for s in &statics {
        assert!(
            reap_report.total_objective(1.0) >= s.total_objective(1.0) - 1e-9,
            "REAP lost to {} over the week",
            s.policy_name()
        );
    }
}
