//! Build-system smoke tests: every committed example must keep running.
//!
//! `cargo test` compiles all examples before running integration tests, so
//! the binaries are guaranteed to exist next to this test's own binary
//! (`target/<profile>/examples/`). Executing them here makes example rot a
//! tier-1 failure instead of something only discovered by readers of the
//! README.

use std::path::PathBuf;
use std::process::Command;

/// The seven examples wired up in the root `Cargo.toml`.
const EXAMPLES: [&str; 7] = [
    "quickstart",
    "har_pipeline",
    "alpha_tradeoff",
    "horizon_planning",
    "runtime_adaptation",
    "solar_month",
    "serve_client",
];

/// `target/<profile>/examples`, derived from this test binary's own path
/// (`target/<profile>/deps/workspace_smoke-<hash>`).
fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <hash> binary
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

#[test]
fn every_example_builds_and_exits_zero() {
    let dir = examples_dir();
    let mut failures = Vec::new();
    for name in EXAMPLES {
        let binary = dir.join(name);
        assert!(
            binary.exists(),
            "example binary {} missing — was it removed from Cargo.toml?",
            binary.display()
        );
        let output = Command::new(&binary)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        if !output.status.success() {
            failures.push(format!(
                "{name}: exit {:?}\n--- stderr ---\n{}",
                output.status.code(),
                String::from_utf8_lossy(&output.stderr)
            ));
        } else if output.stdout.is_empty() {
            failures.push(format!("{name}: printed nothing on stdout"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} example(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
