//! Integration tests for the reproduction's extensions beyond the paper:
//! region analysis, shadow prices, lookahead planning, quantized
//! deployment, and empirical recognition sampling — all through the
//! public facade.

use reap::core::{detect_regions, energy_shadow_price, plan_horizon, ReapProblem};
use reap::units::Energy;

fn paper_problem() -> ReapProblem {
    ReapProblem::builder()
        .points(reap::device::paper_table2_operating_points())
        .build()
        .expect("valid")
}

#[test]
fn region_map_recovers_the_papers_figure5_structure() {
    let map = detect_regions(&paper_problem(), 1000).expect("detects");
    // At least: all-off sliver, DP5-only, one or more mixes, DP1-only.
    assert!(map.regions.len() >= 4, "{} regions", map.regions.len());
    // Region 1 of the paper: DP5 alone, not fully active.
    let r1 = map.region_at(Energy::from_joules(3.0)).expect("in range");
    assert_eq!(r1.active_ids, vec![5]);
    assert!(!r1.fully_active);
    // Region 3: DP1 alone, fully active.
    let r3 = map.region_at(Energy::from_joules(10.0)).expect("in range");
    assert_eq!(r3.active_ids, vec![1]);
    assert!(r3.fully_active);
}

#[test]
fn shadow_price_orders_banking_decisions() {
    let p = paper_problem();
    let starved = energy_shadow_price(&p, Energy::from_joules(1.0)).expect("solvable");
    let comfortable = energy_shadow_price(&p, Energy::from_joules(8.0)).expect("solvable");
    let saturated = energy_shadow_price(&p, Energy::from_joules(11.0)).expect("solvable");
    assert!(starved > comfortable);
    assert!(comfortable > saturated);
    assert!(saturated.abs() < 1e-9);
}

#[test]
fn lookahead_planner_banks_solar_noon_for_the_night() {
    let p = paper_problem();
    // Midnight-to-midnight day: dark, bright noon, dark again.
    let mut forecast = vec![Energy::ZERO; 8];
    forecast.extend(vec![Energy::from_joules(9.0); 8]);
    forecast.extend(vec![Energy::ZERO; 8]);
    let plan = plan_horizon(
        &p,
        &forecast,
        Energy::from_joules(5.0),
        Energy::from_joules(60.0),
    )
    .expect("plannable");
    // Evening hours still run on banked energy.
    let evening_active: f64 = plan.schedules[16..]
        .iter()
        .map(|s| s.active_time().seconds())
        .sum();
    assert!(evening_active > 3600.0, "evening active {evening_active}s");
    // And the joint plan beats spending each hour's harvest in place.
    let myopic: f64 = forecast
        .iter()
        .map(|&e| {
            if e >= p.min_budget() {
                p.solve(e).expect("solvable").objective(1.0)
            } else {
                0.0
            }
        })
        .sum();
    assert!(plan.total_objective(1.0) > myopic);
}

#[test]
fn quantized_deployment_survives_the_full_pipeline() {
    use reap::data::Dataset;
    use reap::har::{train_classifier, DpConfig, QuantizedMlp, TrainConfig};
    let dataset = Dataset::generate(4, 420, 3);
    let config = &DpConfig::paper_pareto_5()[0];
    let trained = train_classifier(&dataset, config, &TrainConfig::fast(3)).expect("trains");
    let q = QuantizedMlp::from_mlp(trained.network(), 8).expect("valid width");
    // The flash image is dramatically smaller than f64 weights.
    let f64_bytes = trained.network().num_params() * 8;
    assert!(q.storage_bytes() * 4 < f64_bytes);
}

#[test]
fn empirical_recognition_matches_expectation_at_scale() {
    use reap::harvest::HarvestTrace;
    use reap::sim::{sample_report, Policy, Scenario};
    let scenario = Scenario::builder(HarvestTrace::september_like(11))
        .points(reap::device::paper_table2_operating_points())
        .build()
        .expect("valid");
    let report = scenario.run(Policy::Reap).expect("runs");
    let sampled = sample_report(&report, 5).expect("device ran");
    assert!((0.5..1.0).contains(&sampled), "sampled accuracy {sampled}");
}
