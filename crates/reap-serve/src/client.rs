//! A minimal blocking client for the daemon's wire protocol, used by the
//! examples, the end-to-end tests, and the loopback load generator.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{Request, Response, PROTOCOL_VERSION};

/// A connected, greeted session with a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    users: u32,
}

fn protocol_io(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connects to `addr` and performs the versioned handshake.
    ///
    /// # Errors
    ///
    /// I/O failures, a refused handshake (the server's error frame is
    /// surfaced as [`io::ErrorKind::InvalidData`]), or a garbled welcome.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            users: 0,
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
        };
        match client.request(&hello)? {
            Response::Welcome { users, .. } => {
                client.users = users;
                Ok(client)
            }
            Response::Error { code, message } => Err(protocol_io(format!(
                "handshake refused ({code}): {message}"
            ))),
            other => Err(protocol_io(format!("expected welcome, got {other:?}"))),
        }
    }

    /// Resident users reported by the welcome frame.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Sends one request frame and reads the matching response frame.
    ///
    /// # Errors
    ///
    /// I/O failures, a closed connection, or an undecodable response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim_end_matches(['\n', '\r'])).map_err(protocol_io)
    }

    /// Sends a raw pre-encoded line (malformed-input tests).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn request_raw(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim_end_matches(['\n', '\r'])).map_err(protocol_io)
    }
}
