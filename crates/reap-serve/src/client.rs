//! A minimal blocking client for the daemon's wire protocol, used by the
//! examples, the end-to-end tests, and the loopback load generator.
//!
//! The client keeps the raw [`TcpStream`] as a *control handle* (socket
//! options, timeouts) while reads and writes go through an [`IoLayer`]
//! wrap — identity for [`NoFaults`] (the production path), a seeded
//! [`crate::fault::ChaosStream`] when the chaos tests hand in an
//! `Arc<FaultPlan>` via [`Client::connect_with_layer`]. The self-healing
//! wrapper that survives those faults lives in [`crate::retry`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::fault::{IoLayer, NoFaults};
use crate::protocol::{Request, Response, PROTOCOL_VERSION};

/// A connected, greeted session with a daemon.
pub struct Client {
    control: TcpStream,
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    users: u32,
}

fn protocol_io(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connects to `addr` and performs the versioned handshake.
    ///
    /// # Errors
    ///
    /// I/O failures, a refused handshake (the server's error frame is
    /// surfaced as [`io::ErrorKind::InvalidData`]), or a garbled welcome.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with_layer(addr, &NoFaults)
    }

    /// [`Client::connect`] through an explicit [`IoLayer`]; chaos tests
    /// pass an `Arc<FaultPlan>` so every read and write runs the seeded
    /// fault schedule.
    ///
    /// # Errors
    ///
    /// Same as [`Client::connect`].
    pub fn connect_with_layer<L: IoLayer>(
        addr: impl ToSocketAddrs,
        layer: &L,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let write_half = stream.try_clone()?;
        let mut client = Client {
            control: stream,
            reader: BufReader::new(Box::new(layer.wrap(read_half)) as Box<dyn Read + Send>),
            writer: Box::new(layer.wrap(write_half)),
            users: 0,
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
        };
        match client.request(&hello)? {
            Response::Welcome { users, .. } => {
                client.users = users;
                Ok(client)
            }
            Response::Error { code, message } => Err(protocol_io(format!(
                "handshake refused ({code}): {message}"
            ))),
            other => Err(protocol_io(format!("expected welcome, got {other:?}"))),
        }
    }

    /// Sets the socket read *and* write timeout — the per-request
    /// deadline enforcement point for [`crate::RetryClient`]. `None`
    /// blocks forever (the default).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.control.set_read_timeout(timeout)?;
        self.control.set_write_timeout(timeout)
    }

    /// Resident users reported by the welcome frame.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Sends one request frame and reads the matching response frame.
    ///
    /// # Errors
    ///
    /// I/O failures, a closed connection, or an undecodable response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a raw pre-encoded line (malformed-input tests).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn request_raw(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim_end_matches(['\n', '\r'])).map_err(protocol_io)
    }
}
