//! Fleet-as-a-service: a resident policy daemon for REAP populations.
//!
//! The simulator answers "what would a month look like"; deployments ask
//! a different question — "this hour just happened, what budget does
//! this user get next?" — thousands of times a second, across a whole
//! fleet, without rebuilding state per request. This crate keeps the
//! population *resident*: per-user EWMA allocators, open-loop virtual
//! batteries, and running accumulators live in sharded memory
//! ([`FleetState`]), with cohort-shared precomputed plan frontiers, so
//! an allocation decision is a cached-table walk instead of an LP solve.
//!
//! On top of that state sits a persistent std-only TCP daemon
//! ([`Server`]): newline-delimited JSON frames ([`protocol`]) with a
//! versioned handshake, a bounded thread-per-connection accept loop,
//! atomic request metrics ([`ServerMetrics`]), versioned binary
//! checkpoint/restore of the whole population ([`snapshot`] — restored
//! state is bit-identical), and graceful drain on `Shutdown` or SIGINT.
//!
//! Robustness is first-class: all checkpoint writes are crash-safe
//! (temp + fsync + atomic rename, with a retained [`SnapshotRing`] and
//! digest-validated recovery), the server carries frame deadlines,
//! slow-client eviction and overload shedding, a [`RetryClient`] heals
//! itself across resets and restarts with seq-deduplicated observes,
//! and the whole stack is testable under seeded fault injection
//! ([`fault`]) that compiles away ([`fault::NoFaults`]) in production.
//!
//! # Example (in-process server + TCP client)
//!
//! ```
//! use reap_serve::{Client, FleetState, Request, Response, Server, ServerConfig};
//! use reap_sim::Fleet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
//!     .users(16)
//!     .days(1)
//!     .build()?;
//! let state = FleetState::new(&fleet, 4)?;
//! // Port 0: the kernel picks a free port; read it back from the server.
//! let server = Server::bind("127.0.0.1:0", state, ServerConfig::default())?;
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let serving = std::thread::spawn(move || server.serve());
//!
//! let mut client = Client::connect(addr)?;
//! assert_eq!(client.users(), 16);
//! let reply = client.request(&Request::Observe {
//!     user: 3,
//!     hour: 0,
//!     harvest_j: 1.5,
//!     activity: None,
//!     seq: None,
//! })?;
//! assert!(matches!(reply, Response::Observed { user: 3, .. }));
//! let decision = client.request(&Request::Decide { user: 3 })?;
//! assert!(matches!(decision, Response::Decision { .. }));
//!
//! handle.shutdown();
//! serving.join().unwrap()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod fault;
pub mod locks;
mod metrics;
pub mod protocol;
mod retry;
mod server;
pub mod snapshot;
mod state;

pub use client::Client;
pub use fault::{ChaosStream, CrashPoint, FaultConfig, FaultPlan, IoLayer, NoFaults};
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use protocol::{
    ErrorCode, FleetStats, ProtocolError, Request, Response, ServerStats, WireShare,
    MAX_LINE_BYTES, PROTOCOL_VERSION,
};
pub use retry::{RetryClient, RetryConfig, RetryError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{Recovery, SnapshotRing};
pub use state::{DecideOutcome, FleetState};
