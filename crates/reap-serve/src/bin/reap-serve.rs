//! The `reap-serve` daemon binary.
//!
//! ```text
//! reap-serve [--addr 127.0.0.1:0] [--users 2000] [--seed 0]
//!            [--source <label>]... [--shards 16] [--max-connections 64]
//!            [--restore <path>] [--checkpoint-on-exit <path>]
//!            [--checkpoint-ring <dir>] [--ring-keep 4]
//!            [--checkpoint-every-ms <ms>] [--resume]
//! ```
//!
//! Builds the resident population from the same seeded [`Fleet`]
//! definition the simulator uses, binds the TCP daemon (port 0 by
//! default — the kernel-assigned address is printed on stdout), and
//! serves until SIGINT or an in-band `shutdown` request. Both paths
//! drain in-flight connections, write the exit checkpoint if
//! `--checkpoint-on-exit` was given, and exit 0.
//!
//! Source labels are the [`SourceKind`] names: `outdoor-solar`,
//! `indoor-pv`, `body-heat-teg`, `kinetic`. Repeat `--source` to
//! round-robin users over several; omit it for all four.
//!
//! Crash safety: `--checkpoint-ring DIR` keeps a ring of the last
//! `--ring-keep` snapshots in `DIR` (written crash-safely every
//! `--checkpoint-every-ms`, and once at graceful shutdown); `--resume`
//! recovers the newest digest-valid snapshot from that ring at startup,
//! skipping torn or corrupt files — after a SIGKILL, restarting with the
//! same flags plus `--resume` lands on the last durable checkpoint.

use std::path::PathBuf;
use std::process::ExitCode;

use reap_harvest::SourceKind;
use reap_serve::{FleetState, Server, ServerConfig};
use reap_sim::Fleet;

/// Polling cadence of the SIGINT watcher thread.
const SIGINT_POLL: std::time::Duration = std::time::Duration::from_millis(50);

#[cfg(unix)]
mod sigint {
    //! Minimal SIGINT hook: libc `signal` via FFI (the workspace vendors
    //! no signal crate), a handler that only stores an atomic — the one
    //! async-signal-safe thing worth doing — and a poller that turns the
    //! flag into a graceful server shutdown.

    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the handler for SIGINT (2).
    pub fn install() {
        // reap-lint: allow(unsafe:unsafe-block) -- libc signal(2) FFI; the handler only stores an AtomicBool, which is async-signal-safe
        unsafe {
            signal(2, on_sigint);
        }
    }

    /// Whether SIGINT has arrived.
    pub fn seen() -> bool {
        SIGINT_SEEN.load(Ordering::SeqCst)
    }
}

struct Args {
    addr: String,
    users: u32,
    seed: u64,
    sources: Vec<SourceKind>,
    shards: usize,
    max_connections: usize,
    restore: Option<PathBuf>,
    checkpoint_on_exit: Option<PathBuf>,
    checkpoint_ring: Option<PathBuf>,
    ring_keep: usize,
    checkpoint_every_ms: Option<u64>,
    resume: bool,
}

fn parse_source(label: &str) -> Result<SourceKind, String> {
    SourceKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = SourceKind::ALL.iter().map(|k| k.label()).collect();
            format!("unknown source {label:?}; known: {}", known.join(", "))
        })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        users: 2000,
        seed: 0,
        sources: Vec::new(),
        shards: 16,
        max_connections: 64,
        restore: None,
        checkpoint_on_exit: None,
        checkpoint_ring: None,
        ring_keep: 4,
        checkpoint_every_ms: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--users" => {
                args.users = value("--users")?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--source" => args.sources.push(parse_source(&value("--source")?)?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--restore" => args.restore = Some(PathBuf::from(value("--restore")?)),
            "--checkpoint-on-exit" => {
                args.checkpoint_on_exit = Some(PathBuf::from(value("--checkpoint-on-exit")?));
            }
            "--checkpoint-ring" => {
                args.checkpoint_ring = Some(PathBuf::from(value("--checkpoint-ring")?));
            }
            "--ring-keep" => {
                args.ring_keep = value("--ring-keep")?
                    .parse()
                    .map_err(|e| format!("--ring-keep: {e}"))?;
                if args.ring_keep == 0 {
                    return Err("--ring-keep must be at least 1".into());
                }
            }
            "--checkpoint-every-ms" => {
                args.checkpoint_every_ms = Some(
                    value("--checkpoint-every-ms")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every-ms: {e}"))?,
                );
            }
            "--resume" => args.resume = true,
            "--help" | "-h" => {
                println!(
                    "usage: reap-serve [--addr A] [--users N] [--seed S] [--source L]... \
                     [--shards N] [--max-connections N] [--restore P] [--checkpoint-on-exit P] \
                     [--checkpoint-ring D] [--ring-keep N] [--checkpoint-every-ms MS] [--resume]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.sources.is_empty() {
        args.sources = SourceKind::ALL.to_vec();
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(args.users)
        .seed(args.seed)
        .sources(args.sources.clone())
        .build()
        .map_err(|e| format!("building fleet: {e}"))?;
    let state = FleetState::new(&fleet, args.shards).map_err(|e| format!("building state: {e}"))?;
    if let Some(path) = &args.restore {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let users = reap_serve::snapshot::restore(&state, &bytes)
            .map_err(|e| format!("restoring {}: {e}", path.display()))?;
        println!("reap-serve: restored {users} users from {}", path.display());
    }
    if args.resume {
        let dir = args
            .checkpoint_ring
            .as_ref()
            .ok_or("--resume needs --checkpoint-ring")?;
        let ring = reap_serve::SnapshotRing::create(dir, args.ring_keep)
            .map_err(|e| format!("opening ring {}: {e}", dir.display()))?;
        match ring
            .recover(&state)
            .map_err(|e| format!("recovering from {}: {e}", dir.display()))?
        {
            Some(r) => println!(
                "reap-serve: resumed {} users from checkpoint #{} ({}){}",
                r.users,
                r.seq,
                r.path.display(),
                if r.skipped > 0 {
                    format!(", skipped {} invalid newer snapshot(s)", r.skipped)
                } else {
                    String::new()
                }
            ),
            None => println!(
                "reap-serve: no usable snapshot in {}, starting fresh",
                dir.display()
            ),
        }
    }

    let server = Server::bind(
        args.addr.as_str(),
        state,
        ServerConfig {
            max_connections: args.max_connections,
            checkpoint_on_exit: args.checkpoint_on_exit.clone(),
            checkpoint_ring: args.checkpoint_ring.clone(),
            ring_keep: args.ring_keep,
            checkpoint_every: args
                .checkpoint_every_ms
                .map(std::time::Duration::from_millis),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("binding {}: {e}", args.addr))?;
    println!(
        "reap-serve: {} users resident over {} sources, listening on {}",
        args.users,
        args.sources.len(),
        server.local_addr()
    );

    let handle = server.handle();
    #[cfg(unix)]
    {
        sigint::install();
        let watcher_handle = handle.clone();
        std::thread::spawn(move || loop {
            if sigint::seen() {
                eprintln!("reap-serve: SIGINT, draining");
                watcher_handle.shutdown();
                return;
            }
            if watcher_handle.is_shutting_down() {
                return;
            }
            std::thread::sleep(SIGINT_POLL);
        });
    }
    let _ = &handle;

    server.serve().map_err(|e| format!("serving: {e}"))?;
    println!("reap-serve: drained, exiting");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("reap-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
