//! The `reap-serve` daemon binary.
//!
//! ```text
//! reap-serve [--addr 127.0.0.1:0] [--users 2000] [--seed 0]
//!            [--source <label>]... [--shards 16] [--max-connections 64]
//!            [--restore <path>] [--checkpoint-on-exit <path>]
//! ```
//!
//! Builds the resident population from the same seeded [`Fleet`]
//! definition the simulator uses, binds the TCP daemon (port 0 by
//! default — the kernel-assigned address is printed on stdout), and
//! serves until SIGINT or an in-band `shutdown` request. Both paths
//! drain in-flight connections, write the exit checkpoint if
//! `--checkpoint-on-exit` was given, and exit 0.
//!
//! Source labels are the [`SourceKind`] names: `outdoor-solar`,
//! `indoor-pv`, `body-heat-teg`, `kinetic`. Repeat `--source` to
//! round-robin users over several; omit it for all four.

use std::path::PathBuf;
use std::process::ExitCode;

use reap_harvest::SourceKind;
use reap_serve::{FleetState, Server, ServerConfig};
use reap_sim::Fleet;

/// Polling cadence of the SIGINT watcher thread.
const SIGINT_POLL: std::time::Duration = std::time::Duration::from_millis(50);

#[cfg(unix)]
mod sigint {
    //! Minimal SIGINT hook: libc `signal` via FFI (the workspace vendors
    //! no signal crate), a handler that only stores an atomic — the one
    //! async-signal-safe thing worth doing — and a poller that turns the
    //! flag into a graceful server shutdown.

    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the handler for SIGINT (2).
    pub fn install() {
        unsafe {
            signal(2, on_sigint);
        }
    }

    /// Whether SIGINT has arrived.
    pub fn seen() -> bool {
        SIGINT_SEEN.load(Ordering::SeqCst)
    }
}

struct Args {
    addr: String,
    users: u32,
    seed: u64,
    sources: Vec<SourceKind>,
    shards: usize,
    max_connections: usize,
    restore: Option<PathBuf>,
    checkpoint_on_exit: Option<PathBuf>,
}

fn parse_source(label: &str) -> Result<SourceKind, String> {
    SourceKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = SourceKind::ALL.iter().map(|k| k.label()).collect();
            format!("unknown source {label:?}; known: {}", known.join(", "))
        })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        users: 2000,
        seed: 0,
        sources: Vec::new(),
        shards: 16,
        max_connections: 64,
        restore: None,
        checkpoint_on_exit: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--users" => {
                args.users = value("--users")?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--source" => args.sources.push(parse_source(&value("--source")?)?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--restore" => args.restore = Some(PathBuf::from(value("--restore")?)),
            "--checkpoint-on-exit" => {
                args.checkpoint_on_exit = Some(PathBuf::from(value("--checkpoint-on-exit")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reap-serve [--addr A] [--users N] [--seed S] [--source L]... \
                     [--shards N] [--max-connections N] [--restore P] [--checkpoint-on-exit P]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.sources.is_empty() {
        args.sources = SourceKind::ALL.to_vec();
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(args.users)
        .seed(args.seed)
        .sources(args.sources.clone())
        .build()
        .map_err(|e| format!("building fleet: {e}"))?;
    let state = FleetState::new(&fleet, args.shards).map_err(|e| format!("building state: {e}"))?;
    if let Some(path) = &args.restore {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let users = reap_serve::snapshot::restore(&state, &bytes)
            .map_err(|e| format!("restoring {}: {e}", path.display()))?;
        println!("reap-serve: restored {users} users from {}", path.display());
    }

    let server = Server::bind(
        args.addr.as_str(),
        state,
        ServerConfig {
            max_connections: args.max_connections,
            checkpoint_on_exit: args.checkpoint_on_exit.clone(),
        },
    )
    .map_err(|e| format!("binding {}: {e}", args.addr))?;
    println!(
        "reap-serve: {} users resident over {} sources, listening on {}",
        args.users,
        args.sources.len(),
        server.local_addr()
    );

    let handle = server.handle();
    #[cfg(unix)]
    {
        sigint::install();
        let watcher_handle = handle.clone();
        std::thread::spawn(move || loop {
            if sigint::seen() {
                eprintln!("reap-serve: SIGINT, draining");
                watcher_handle.shutdown();
                return;
            }
            if watcher_handle.is_shutting_down() {
                return;
            }
            std::thread::sleep(SIGINT_POLL);
        });
    }
    let _ = &handle;

    server.serve().map_err(|e| format!("serving: {e}"))?;
    println!("reap-serve: drained, exiting");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("reap-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
