//! The TCP daemon: bounded thread-per-connection serving over the
//! sharded resident state.
//!
//! [`Server::bind`] takes any address (tests bind `127.0.0.1:0` and read
//! the kernel-assigned port back with [`Server::local_addr`] — no
//! hardcoded ports anywhere); [`Server::serve`] then accepts until a
//! [`ServerHandle::shutdown`] or an in-band `Shutdown` request. Each
//! connection runs on its own thread, admitted through a
//! `Mutex + Condvar` gate that caps concurrent connections; excess
//! accepts wait for a slot rather than being dropped.
//!
//! Graceful shutdown: the flag flips, a dummy self-connection wakes the
//! blocking accept, and in-flight connections drain — every connection
//! reads with a short timeout, notices the flag at the next boundary,
//! and closes after finishing the request in hand. Once every handler
//! has joined, an exit checkpoint is written if
//! [`ServerConfig::checkpoint_on_exit`] is set, and `serve` returns.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::ServerMetrics;
use crate::protocol::{
    ErrorCode, ProtocolError, Request, Response, WireShare, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use crate::snapshot;
use crate::state::FleetState;

/// How long a connection read blocks before re-checking the shutdown
/// flag; the upper bound on drain latency for an idle connection.
const READ_POLL: Duration = Duration::from_millis(250);

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Maximum concurrent connections; further accepts wait for a slot.
    /// `0` means the default (64).
    pub max_connections: usize,
    /// Write a final snapshot here during graceful shutdown.
    pub checkpoint_on_exit: Option<PathBuf>,
}

/// Everything connection handlers share.
struct Shared {
    state: FleetState,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A bound, not-yet-serving daemon. Grab [`Server::local_addr`] and a
/// [`ServerHandle`] before calling [`Server::serve`] (which blocks until
/// shutdown).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    max_connections: usize,
    checkpoint_on_exit: Option<PathBuf>,
}

/// A cheap clonable handle that can stop a running [`Server`] from any
/// thread (or signal handler watcher).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain in-flight
    /// connections, write the exit checkpoint if configured. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // A blocking `accept` only notices the flag on its next return;
        // poke it with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds the daemon to `addr` over `state`. Bind port 0 to let the
    /// kernel pick a free port (read it back with
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        state: FleetState,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                state,
                metrics: ServerMetrics::new(),
                shutdown: AtomicBool::new(false),
                addr,
            }),
            max_connections: if config.max_connections == 0 {
                64
            } else {
                config.max_connections
            },
            checkpoint_on_exit: config.checkpoint_on_exit,
        })
    }

    /// The address actually bound — with port 0, the kernel-assigned
    /// port appears here.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until shutdown, then drains
    /// in-flight connections and (if configured) writes the exit
    /// checkpoint. Returns once the last connection has closed.
    ///
    /// # Errors
    ///
    /// Propagates exit-checkpoint write failures; accept errors on
    /// individual connections are skipped, not fatal.
    pub fn serve(self) -> io::Result<()> {
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();

        for incoming in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            // The shutdown self-connect lands here: re-check before
            // admitting it as a real session.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            handlers.retain(|h| !h.is_finished());
            {
                let (count, cv) = &*gate;
                let mut active = count
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while *active >= self.max_connections {
                    active = cv
                        .wait(active)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                *active += 1;
            }
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let gate = Arc::clone(&gate);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &shared);
                let (count, cv) = &*gate;
                let mut active = count
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *active -= 1;
                cv.notify_one();
            }));
        }

        // Drain: every handler notices the flag within one read-poll.
        for h in handlers {
            let _ = h.join();
        }
        if let Some(path) = &self.checkpoint_on_exit {
            std::fs::write(path, snapshot::snapshot(&self.shared.state))?;
        }
        Ok(())
    }
}

/// What one attempt to pull a line off the socket produced.
enum ReadOutcome {
    Line(Vec<u8>),
    Eof,
    TimedOut,
    Oversized,
    Failed,
}

/// Incremental line framing over a read-timeout socket: bytes accumulate
/// across timeouts, lines split off as newlines arrive.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn next_line(&mut self) -> ReadOutcome {
        loop {
            if let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=nl).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return ReadOutcome::Line(line);
            }
            if self.pending.len() >= MAX_LINE_BYTES {
                return ReadOutcome::Oversized;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return ReadOutcome::TimedOut;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Failed,
            }
        }
    }

    /// Discards buffered and in-flight input before a server-initiated
    /// close. Closing with unread bytes in the receive buffer makes the
    /// kernel send RST, which can destroy the error frame we just queued;
    /// draining (bounded, so a firehosing peer can't pin the thread)
    /// lets the close go out as a clean FIN after the frame.
    fn drain_before_close(&mut self) {
        self.pending.clear();
        let mut chunk = [0u8; 4096];
        for _ in 0..256 {
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    }
}

fn send(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn send_error(stream: &mut TcpStream, shared: &Shared, err: ProtocolError) -> io::Result<()> {
    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
    send(stream, &Response::from(err))
}

/// Runs one session: handshake, then one response frame per request
/// until EOF, a fatal framing error, or shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader {
        stream: read_half,
        pending: Vec::new(),
    };

    let mut greeted = false;
    loop {
        let line = match reader.next_line() {
            ReadOutcome::Line(line) => line,
            ReadOutcome::Eof | ReadOutcome::Failed => return,
            ReadOutcome::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // drained
                }
                continue;
            }
            ReadOutcome::Oversized => {
                // The frame boundary is gone; report and close.
                let _ = send_error(
                    &mut stream,
                    shared,
                    ProtocolError::new(
                        ErrorCode::Oversized,
                        format!("line exceeds {MAX_LINE_BYTES} bytes"),
                    ),
                );
                reader.drain_before_close();
                return;
            }
        };
        let Ok(text) = std::str::from_utf8(&line) else {
            if send_error(
                &mut stream,
                shared,
                ProtocolError::new(ErrorCode::Malformed, "frame is not UTF-8"),
            )
            .is_err()
            {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let request = match Request::decode(text) {
            Ok(r) => r,
            Err(e) => {
                if send_error(&mut stream, shared, e).is_err() {
                    return;
                }
                continue;
            }
        };

        if !greeted {
            match request {
                Request::Hello { version } if version == PROTOCOL_VERSION => {
                    greeted = true;
                    if send(
                        &mut stream,
                        &Response::Welcome {
                            version: PROTOCOL_VERSION,
                            users: shared.state.users(),
                        },
                    )
                    .is_err()
                    {
                        return;
                    }
                    continue;
                }
                Request::Hello { version } => {
                    // Version-mismatch refusal: error frame, then close.
                    let _ = send_error(
                        &mut stream,
                        shared,
                        ProtocolError::new(
                            ErrorCode::Version,
                            format!("client speaks v{version}, server v{PROTOCOL_VERSION}"),
                        ),
                    );
                    return;
                }
                _ => {
                    let _ = send_error(
                        &mut stream,
                        shared,
                        ProtocolError::new(ErrorCode::Handshake, "first frame must be a hello"),
                    );
                    return;
                }
            }
        }

        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut close_after = false;
        let response = match request {
            Request::Hello { .. } => Response::from(ProtocolError::new(
                ErrorCode::Handshake,
                "session already greeted",
            )),
            Request::Observe {
                user,
                hour,
                harvest_j,
                activity,
            } => {
                let t0 = Instant::now();
                let outcome = shared.state.observe(user, hour, harvest_j, activity);
                shared.metrics.observe_latency.record(t0.elapsed());
                shared.metrics.observes.fetch_add(1, Ordering::Relaxed);
                match outcome {
                    Ok(budget_j) => Response::Observed {
                        user,
                        hour: hour % 24,
                        budget_j,
                    },
                    Err(e) => Response::from(e),
                }
            }
            Request::Decide { user } => {
                let t0 = Instant::now();
                let outcome = shared.state.decide(user);
                shared.metrics.decide_latency.record(t0.elapsed());
                shared.metrics.decides.fetch_add(1, Ordering::Relaxed);
                match outcome {
                    Ok(out) => Response::Decision {
                        user,
                        budget_j: out.budget_j,
                        accuracy: out.decision.eval.accuracy,
                        active_s: out.decision.eval.active_s,
                        energy_j: out.decision.eval.energy_j,
                        off_s: out.decision.off_s,
                        shares: out
                            .decision
                            .shares()
                            .iter()
                            .map(|s| WireShare {
                                id: s.id,
                                seconds: s.seconds,
                            })
                            .collect(),
                    },
                    Err(e) => Response::from(e),
                }
            }
            Request::Stats => Response::Stats {
                fleet: shared.state.fleet_stats(),
                server: shared.metrics.server_stats(),
            },
            Request::Checkpoint { path } => {
                shared.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
                let bytes = snapshot::snapshot(&shared.state);
                match std::fs::write(&path, &bytes) {
                    Ok(()) => Response::CheckpointDone {
                        path,
                        bytes: bytes.len() as u64,
                    },
                    Err(e) => Response::from(ProtocolError::new(
                        ErrorCode::Snapshot,
                        format!("writing {path:?}: {e}"),
                    )),
                }
            }
            Request::Restore { path } => {
                shared.metrics.restores.fetch_add(1, Ordering::Relaxed);
                match std::fs::read(&path) {
                    Ok(bytes) => match snapshot::restore(&shared.state, &bytes) {
                        Ok(users) => Response::RestoreDone { path, users },
                        Err(e) => Response::from(e),
                    },
                    Err(e) => Response::from(ProtocolError::new(
                        ErrorCode::Snapshot,
                        format!("reading {path:?}: {e}"),
                    )),
                }
            }
            Request::Shutdown => {
                close_after = true;
                Response::ShuttingDown
            }
        };
        let is_error = matches!(response, Response::Error { .. });
        if is_error {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if send(&mut stream, &response).is_err() {
            return;
        }
        if close_after {
            // Flip the flag only after the acknowledgement is on the
            // wire, then poke the blocking accept awake.
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}
