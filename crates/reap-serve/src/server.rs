//! The TCP daemon: bounded thread-per-connection serving over the
//! sharded resident state.
//!
//! [`Server::bind`] takes any address (tests bind `127.0.0.1:0` and read
//! the kernel-assigned port back with [`Server::local_addr`] — no
//! hardcoded ports anywhere); [`Server::serve`] then accepts until a
//! [`ServerHandle::shutdown`] or an in-band `Shutdown` request. Each
//! connection runs on its own thread, admitted through a
//! `Mutex + Condvar` gate that caps concurrent connections; excess
//! accepts wait for a slot rather than being dropped.
//!
//! Degradation under hostile load: every connection carries a *frame
//! deadline* — a peer that starts a frame and stalls mid-line past
//! [`ServerConfig::frame_deadline`] is evicted with an
//! [`ErrorCode::Evicted`] frame (idle connections between frames are
//! never evicted); writes run under
//! [`ServerConfig::write_deadline`], so a peer that stops reading
//! cannot pin a handler thread; and past
//! [`ServerConfig::overload_shed_at`] concurrent connections the server
//! sheds `Observe` with [`ErrorCode::Overloaded`] while keeping `Decide`
//! live — decisions are read-only table walks and stay cheap, while
//! observes mutate state and can be replayed later by a sequence-number
//! retrying client. All three show up in [`ServerMetrics`].
//!
//! Fault injection: the server is generic over [`IoLayer`]. Production
//! uses the zero-sized [`NoFaults`] (identity wrap — the monomorphized
//! code is the raw `TcpStream` path); chaos tests pass an
//! `Arc<FaultPlan>` via [`Server::bind_with_layer`] and every connection
//! then runs through a seeded [`crate::fault::ChaosStream`] schedule.
//!
//! Graceful shutdown: the flag flips, a dummy self-connection wakes the
//! blocking accept, and in-flight connections drain — every connection
//! reads with a short timeout, notices the flag at the next boundary,
//! and closes after finishing the request in hand. Once every handler
//! has joined, a final ring checkpoint is written if a
//! [`ServerConfig::checkpoint_ring`] is configured, then the exit
//! checkpoint if [`ServerConfig::checkpoint_on_exit`] is set, and
//! `serve` returns. All checkpoint writes are crash-safe
//! ([`snapshot::write_atomic`]: temp + fsync + rename + directory
//! fsync).

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{IoLayer, NoFaults};
use crate::locks::{rank, OrderedLock};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    ErrorCode, ProtocolError, Request, Response, WireShare, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use crate::snapshot::{self, SnapshotRing};
use crate::state::FleetState;

/// How long a connection read blocks before re-checking the shutdown
/// flag; the upper bound on drain latency for an idle connection.
const READ_POLL: Duration = Duration::from_millis(250);

/// Default [`ServerConfig::frame_deadline`]: generous for real clients
/// (frames are tens of bytes), fatal for slow-loris ones.
const DEFAULT_FRAME_DEADLINE: Duration = Duration::from_secs(5);

/// Default [`ServerConfig::write_deadline`].
const DEFAULT_WRITE_DEADLINE: Duration = Duration::from_secs(5);

/// Polling cadence of the periodic ring-checkpoint thread.
const RING_POLL: Duration = Duration::from_millis(20);

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Maximum concurrent connections; further accepts wait for a slot.
    /// `0` means the default (64).
    pub max_connections: usize,
    /// Write a final snapshot here during graceful shutdown.
    pub checkpoint_on_exit: Option<PathBuf>,
    /// Directory for the retained snapshot ring; checkpoints land here
    /// periodically (see [`ServerConfig::checkpoint_every`]) and once on
    /// graceful shutdown. `None` disables the ring.
    pub checkpoint_ring: Option<PathBuf>,
    /// Snapshots retained in the ring; `0` means the default (4).
    pub ring_keep: usize,
    /// Cadence of periodic ring checkpoints while serving; `None` means
    /// ring checkpoints happen only at graceful shutdown.
    pub checkpoint_every: Option<Duration>,
    /// How long a connection may stall *mid-frame* before being evicted
    /// (idle connections between frames are exempt). `None` means the
    /// default (5 s).
    pub frame_deadline: Option<Duration>,
    /// Socket write timeout; a peer that stops reading long enough to
    /// block a response write this long is dropped (and counted
    /// evicted). `None` means the default (5 s).
    pub write_deadline: Option<Duration>,
    /// Concurrent-connection count above which `Observe` requests are
    /// shed with [`ErrorCode::Overloaded`] (`Decide`/`Stats` stay live).
    /// `0` disables shedding.
    pub overload_shed_at: usize,
}

/// Everything connection handlers share.
struct Shared<L: IoLayer> {
    state: FleetState,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    layer: L,
    /// Live connection count (mirrors the admission gate, readable
    /// without its lock) — the overload-shed signal.
    active: AtomicUsize,
    frame_deadline: Duration,
    write_deadline: Duration,
    overload_shed_at: usize,
}

/// A bound, not-yet-serving daemon. Grab [`Server::local_addr`] and a
/// [`ServerHandle`] before calling [`Server::serve`] (which blocks until
/// shutdown).
pub struct Server<L: IoLayer = NoFaults> {
    listener: TcpListener,
    shared: Arc<Shared<L>>,
    max_connections: usize,
    checkpoint_on_exit: Option<PathBuf>,
    checkpoint_ring: Option<PathBuf>,
    ring_keep: usize,
    checkpoint_every: Option<Duration>,
}

/// A cheap clonable handle that can stop a running [`Server`] from any
/// thread (or signal handler watcher).
pub struct ServerHandle<L: IoLayer = NoFaults> {
    shared: Arc<Shared<L>>,
}

impl<L: IoLayer> Clone for ServerHandle<L> {
    fn clone(&self) -> Self {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<L: IoLayer> ServerHandle<L> {
    /// Requests graceful shutdown: stop accepting, drain in-flight
    /// connections, write the exit checkpoint if configured. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // A blocking `accept` only notices the flag on its next return;
        // poke it with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Server<NoFaults> {
    /// Binds the daemon to `addr` over `state`. Bind port 0 to let the
    /// kernel pick a free port (read it back with
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        state: FleetState,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_with_layer(addr, state, config, NoFaults)
    }
}

impl<L: IoLayer> Server<L> {
    /// [`Server::bind`] with an explicit [`IoLayer`] — the chaos tests'
    /// entry point (`Arc<FaultPlan>` wraps every connection in a seeded
    /// fault schedule and arms the snapshot writer's crash hook).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_layer(
        addr: impl ToSocketAddrs,
        state: FleetState,
        config: ServerConfig,
        layer: L,
    ) -> io::Result<Server<L>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                state,
                metrics: ServerMetrics::new(),
                shutdown: AtomicBool::new(false),
                addr,
                layer,
                active: AtomicUsize::new(0),
                frame_deadline: config.frame_deadline.unwrap_or(DEFAULT_FRAME_DEADLINE),
                write_deadline: config.write_deadline.unwrap_or(DEFAULT_WRITE_DEADLINE),
                overload_shed_at: config.overload_shed_at,
            }),
            max_connections: if config.max_connections == 0 {
                64
            } else {
                config.max_connections
            },
            checkpoint_on_exit: config.checkpoint_on_exit,
            checkpoint_ring: config.checkpoint_ring,
            ring_keep: if config.ring_keep == 0 {
                4
            } else {
                config.ring_keep
            },
            checkpoint_every: config.checkpoint_every,
        })
    }

    /// The address actually bound — with port 0, the kernel-assigned
    /// port appears here.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle<L> {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until shutdown, then drains
    /// in-flight connections, writes a final ring checkpoint (if a ring
    /// is configured) and the exit checkpoint (if configured). Returns
    /// once the last connection has closed.
    ///
    /// # Errors
    ///
    /// Propagates exit-checkpoint write failures; accept errors on
    /// individual connections are skipped, not fatal, and periodic ring
    /// checkpoint failures are logged to stderr rather than killing the
    /// daemon.
    pub fn serve(self) -> io::Result<()> {
        let ring = match &self.checkpoint_ring {
            Some(dir) => Some(SnapshotRing::create(dir, self.ring_keep)?),
            None => None,
        };

        // Periodic ring checkpoints run off the request path: a helper
        // thread snapshots the fleet (crash-safely) every
        // `checkpoint_every` until shutdown.
        let ring_thread: Option<JoinHandle<()>> = match (&ring, self.checkpoint_every) {
            (Some(ring), Some(every)) => {
                let ring = ring.clone();
                let shared = Arc::clone(&self.shared);
                Some(std::thread::spawn(move || {
                    let mut last = Instant::now();
                    while !shared.shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(RING_POLL.min(every));
                        if last.elapsed() >= every {
                            match ring.write_with(&shared.state, &shared.layer) {
                                Ok(Some(_)) => {
                                    shared.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(None) => {} // injected crash: a real one wouldn't log either
                                Err(e) => eprintln!("reap-serve: ring checkpoint failed: {e}"),
                            }
                            last = Instant::now();
                        }
                    }
                }))
            }
            _ => None,
        };

        let gate = Arc::new((
            OrderedLock::new("admission", rank::ADMISSION, 0, 0usize),
            Condvar::new(),
        ));
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();

        for incoming in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            // The shutdown self-connect lands here: re-check before
            // admitting it as a real session.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            handlers.retain(|h| !h.is_finished());
            {
                let (count, cv) = &*gate;
                // reap-lint: acquires(admission)
                let active = count.lock();
                let max = self.max_connections;
                let mut active = count.wait_while(active, cv, |n| *n >= max);
                *active += 1;
            }
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let gate = Arc::clone(&gate);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &shared);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                let (count, cv) = &*gate;
                // reap-lint: acquires(admission)
                let mut active = count.lock();
                *active -= 1;
                cv.notify_one();
            }));
        }

        // Drain: every handler notices the flag within one read-poll.
        for h in handlers {
            let _ = h.join();
        }
        if let Some(h) = ring_thread {
            let _ = h.join();
        }
        if let Some(ring) = &ring {
            // One last durable cut of the drained state.
            match ring.write_with(&self.shared.state, &self.shared.layer) {
                Ok(Some(_)) => {
                    self.shared
                        .metrics
                        .checkpoints
                        .fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => {}
                Err(e) => eprintln!("reap-serve: final ring checkpoint failed: {e}"),
            }
        }
        if let Some(path) = &self.checkpoint_on_exit {
            snapshot::write_atomic(path, &snapshot::snapshot(&self.shared.state))?;
        }
        Ok(())
    }
}

/// What one attempt to pull a line off the socket produced.
enum ReadOutcome {
    Line(Vec<u8>),
    Eof,
    TimedOut,
    Oversized,
    /// The peer stalled mid-frame past the frame deadline.
    Stalled,
    Failed,
}

/// Incremental line framing over a read-timeout socket: bytes accumulate
/// across timeouts, lines split off as newlines arrive. A frame that
/// stays incomplete past `frame_deadline` reports [`ReadOutcome::Stalled`]
/// (the slow-loris defense); an idle socket with no partial frame can
/// wait forever.
struct LineReader<S> {
    stream: S,
    pending: Vec<u8>,
    frame_deadline: Duration,
    frame_start: Option<Instant>,
}

impl<S: Read> LineReader<S> {
    fn new(stream: S, frame_deadline: Duration) -> LineReader<S> {
        LineReader {
            stream,
            pending: Vec::new(),
            frame_deadline,
            frame_start: None,
        }
    }

    fn next_line(&mut self) -> ReadOutcome {
        loop {
            if let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
                // A complete line that still busts the cap is just as
                // oversized as one with no newline in sight — without
                // this check a single big read chunk could smuggle an
                // arbitrarily long line past the cap.
                if nl >= MAX_LINE_BYTES {
                    return ReadOutcome::Oversized;
                }
                let mut line: Vec<u8> = self.pending.drain(..=nl).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.frame_start = None;
                return ReadOutcome::Line(line);
            }
            if self.pending.len() >= MAX_LINE_BYTES {
                return ReadOutcome::Oversized;
            }
            if self.pending.is_empty() {
                self.frame_start = None;
            } else if self.frame_start.is_none() {
                self.frame_start = Some(Instant::now());
            }
            if let Some(t0) = self.frame_start {
                if t0.elapsed() >= self.frame_deadline {
                    return ReadOutcome::Stalled;
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                // reap-lint: allow(panic:index) -- Read contract: n <= chunk.len()
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return ReadOutcome::TimedOut;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Failed,
            }
        }
    }

    /// Discards buffered and in-flight input before a server-initiated
    /// close. Closing with unread bytes in the receive buffer makes the
    /// kernel send RST, which can destroy the error frame we just queued;
    /// draining (bounded, so a firehosing peer can't pin the thread)
    /// lets the close go out as a clean FIN after the frame.
    fn drain_before_close(&mut self) {
        self.pending.clear();
        let mut chunk = [0u8; 4096];
        for _ in 0..256 {
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    }
}

fn send<L: IoLayer>(
    stream: &mut L::Stream,
    shared: &Shared<L>,
    response: &Response,
) -> io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    let out = stream.write_all(line.as_bytes());
    if let Err(e) = &out {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            // The peer stopped reading long enough to blow the write
            // deadline: this connection is being dropped, count it.
            shared.metrics.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }
    out
}

fn send_error<L: IoLayer>(
    stream: &mut L::Stream,
    shared: &Shared<L>,
    err: ProtocolError,
) -> io::Result<()> {
    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
    send(stream, shared, &Response::from(err))
}

/// Runs one session: handshake, then one response frame per request
/// until EOF, a fatal framing error, eviction, or shutdown.
fn handle_connection<L: IoLayer>(stream: TcpStream, shared: &Shared<L>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(shared.write_deadline));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(shared.layer.wrap(read_half), shared.frame_deadline);
    let mut stream = shared.layer.wrap(stream);

    let mut greeted = false;
    loop {
        let line = match reader.next_line() {
            ReadOutcome::Line(line) => line,
            ReadOutcome::Eof | ReadOutcome::Failed => return,
            ReadOutcome::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // drained
                }
                continue;
            }
            ReadOutcome::Stalled => {
                // Slow-loris eviction: a typed frame (best-effort — the
                // peer may not be reading), then close.
                shared.metrics.evicted.fetch_add(1, Ordering::Relaxed);
                let _ = send_error(
                    &mut stream,
                    shared,
                    ProtocolError::new(
                        ErrorCode::Evicted,
                        format!(
                            "frame not completed within {:?}; connection evicted",
                            shared.frame_deadline
                        ),
                    ),
                );
                reader.drain_before_close();
                return;
            }
            ReadOutcome::Oversized => {
                // The frame boundary is gone (or the frame is absurd);
                // report and close.
                let _ = send_error(
                    &mut stream,
                    shared,
                    ProtocolError::new(
                        ErrorCode::Oversized,
                        format!("line exceeds {MAX_LINE_BYTES} bytes"),
                    ),
                );
                reader.drain_before_close();
                return;
            }
        };
        let Ok(text) = std::str::from_utf8(&line) else {
            if send_error(
                &mut stream,
                shared,
                ProtocolError::new(ErrorCode::Malformed, "frame is not UTF-8"),
            )
            .is_err()
            {
                return;
            }
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let request = match Request::decode(text) {
            Ok(r) => r,
            Err(e) => {
                if send_error(&mut stream, shared, e).is_err() {
                    return;
                }
                continue;
            }
        };

        if !greeted {
            match request {
                Request::Hello { version } if version == PROTOCOL_VERSION => {
                    greeted = true;
                    if send(
                        &mut stream,
                        shared,
                        &Response::Welcome {
                            version: PROTOCOL_VERSION,
                            users: shared.state.users(),
                        },
                    )
                    .is_err()
                    {
                        return;
                    }
                    continue;
                }
                Request::Hello { version } => {
                    // Version-mismatch refusal: error frame, then close.
                    let _ = send_error(
                        &mut stream,
                        shared,
                        ProtocolError::new(
                            ErrorCode::Version,
                            format!("client speaks v{version}, server v{PROTOCOL_VERSION}"),
                        ),
                    );
                    return;
                }
                _ => {
                    let _ = send_error(
                        &mut stream,
                        shared,
                        ProtocolError::new(ErrorCode::Handshake, "first frame must be a hello"),
                    );
                    return;
                }
            }
        }

        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut close_after = false;
        let response = match request {
            Request::Hello { .. } => Response::from(ProtocolError::new(
                ErrorCode::Handshake,
                "session already greeted",
            )),
            Request::Observe {
                user,
                hour,
                harvest_j,
                activity,
                seq,
            } => {
                if shared.overload_shed_at != 0
                    && shared.active.load(Ordering::SeqCst) > shared.overload_shed_at
                {
                    // Overload mode: shed the mutating request class,
                    // keep decisions live. A seq-carrying client replays
                    // the observe after backoff with no double-count.
                    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    Response::from(ProtocolError::new(
                        ErrorCode::Overloaded,
                        "shedding observes under overload; retry after backoff",
                    ))
                } else {
                    let t0 = Instant::now();
                    let outcome = shared
                        .state
                        .observe_seq(user, hour, harvest_j, activity, seq);
                    shared.metrics.observe_latency.record(t0.elapsed());
                    shared.metrics.observes.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(budget_j) => Response::Observed {
                            user,
                            hour: hour % 24,
                            budget_j,
                        },
                        Err(e) => Response::from(e),
                    }
                }
            }
            Request::Decide { user } => {
                let t0 = Instant::now();
                let outcome = shared.state.decide(user);
                shared.metrics.decide_latency.record(t0.elapsed());
                shared.metrics.decides.fetch_add(1, Ordering::Relaxed);
                match outcome {
                    Ok(out) => Response::Decision {
                        user,
                        budget_j: out.budget_j,
                        accuracy: out.decision.eval.accuracy,
                        active_s: out.decision.eval.active_s,
                        energy_j: out.decision.eval.energy_j,
                        off_s: out.decision.off_s,
                        shares: out
                            .decision
                            .shares()
                            .iter()
                            .map(|s| WireShare {
                                id: s.id,
                                seconds: s.seconds,
                            })
                            .collect(),
                    },
                    Err(e) => Response::from(e),
                }
            }
            Request::Stats => Response::Stats {
                fleet: shared.state.fleet_stats(),
                server: shared.metrics.server_stats(),
            },
            Request::Checkpoint { path } => {
                shared.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
                let bytes = snapshot::snapshot(&shared.state);
                match snapshot::write_atomic_with(
                    std::path::Path::new(&path),
                    &bytes,
                    &shared.layer,
                ) {
                    Ok(true) => Response::CheckpointDone {
                        path,
                        bytes: bytes.len() as u64,
                    },
                    Ok(false) => Response::from(ProtocolError::new(
                        ErrorCode::Snapshot,
                        format!("writing {path:?}: checkpoint writer crashed (injected)"),
                    )),
                    Err(e) => Response::from(ProtocolError::new(
                        ErrorCode::Snapshot,
                        format!("writing {path:?}: {e}"),
                    )),
                }
            }
            Request::Restore { path } => {
                shared.metrics.restores.fetch_add(1, Ordering::Relaxed);
                match std::fs::read(&path) {
                    Ok(bytes) => match snapshot::restore(&shared.state, &bytes) {
                        Ok(users) => Response::RestoreDone { path, users },
                        Err(e) => Response::from(e),
                    },
                    Err(e) => Response::from(ProtocolError::new(
                        ErrorCode::Snapshot,
                        format!("reading {path:?}: {e}"),
                    )),
                }
            }
            Request::Shutdown => {
                close_after = true;
                Response::ShuttingDown
            }
        };
        let is_error = matches!(response, Response::Error { .. });
        if is_error {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if send(&mut stream, shared, &response).is_err() {
            return;
        }
        if close_after {
            // Flip the flag only after the acknowledgement is on the
            // wire, then poke the blocking accept awake.
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}
