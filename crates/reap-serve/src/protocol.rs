//! The wire protocol: newline-delimited JSON frames over TCP.
//!
//! Every frame is one line of UTF-8 JSON terminated by `\n`, at most
//! [`MAX_LINE_BYTES`] long, with a `"type"` tag naming the variant. The
//! encoder and decoder are hand-rolled (the workspace is offline-vendored
//! and carries no serde): a ~150-line recursive-descent JSON parser feeds
//! typed extractors, and encoding is direct string building. `f64` fields
//! are formatted with Rust's shortest-round-trip `Display`, so a value
//! decodes back to the exact same bits — the property the round-trip
//! proptests pin.
//!
//! Sessions open with a versioned handshake: the client's first frame
//! must be `{"type":"hello","version":N}` with `N` equal to
//! [`PROTOCOL_VERSION`]; anything else is refused with an error frame and
//! the connection closes. After `{"type":"welcome",..}` the client streams
//! requests and reads one response frame per request, in order. Errors
//! never tear down framing: a malformed line is answered with an error
//! frame and the session continues (only oversized lines close the
//! connection, because the frame boundary itself is no longer trusted).

use std::fmt;

/// Protocol version spoken by this build; bumped on any wire change
/// (v2 added the `observe` sequence number for idempotent retries, the
/// `overloaded`/`evicted` error codes, and the shed/evicted counters in
/// server stats).
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on one frame (including the terminating newline). Lines
/// beyond it are rejected with an [`ErrorCode::Oversized`] frame and the
/// connection closes.
pub const MAX_LINE_BYTES: usize = 16 * 1024;

/// Machine-readable error category carried by an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Handshake version differs from [`PROTOCOL_VERSION`].
    Version,
    /// First frame was not `hello`, or `hello` arrived twice.
    Handshake,
    /// The line was not valid JSON, or not a known frame shape.
    Malformed,
    /// The line exceeded [`MAX_LINE_BYTES`].
    Oversized,
    /// A field failed validation (non-finite harvest, unknown user, ...).
    BadRequest,
    /// The referenced user does not exist in the resident fleet.
    UnknownUser,
    /// A checkpoint/restore operation failed (I/O or format).
    Snapshot,
    /// The server is shedding this request class under overload; safe to
    /// retry after a backoff.
    Overloaded,
    /// The connection is being evicted (stalled mid-frame past the
    /// server's frame deadline).
    Evicted,
    /// The server failed internally while handling the request.
    Internal,
}

impl ErrorCode {
    /// The stable wire string of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Version => "version",
            ErrorCode::Handshake => "handshake",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownUser => "unknown_user",
            ErrorCode::Snapshot => "snapshot",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Evicted => "evicted",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire string back to the code.
    #[must_use]
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "version" => ErrorCode::Version,
            "handshake" => ErrorCode::Handshake,
            "malformed" => ErrorCode::Malformed,
            "oversized" => ErrorCode::Oversized,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_user" => ErrorCode::UnknownUser,
            "snapshot" => ErrorCode::Snapshot,
            "overloaded" => ErrorCode::Overloaded,
            "evicted" => ErrorCode::Evicted,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level failure: the error frame it should be answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Versioned handshake; must be the first frame of a session.
    Hello {
        /// Client protocol version.
        version: u32,
    },
    /// Stream one completed hour of one user's life into the resident
    /// state: hour `hour` (any absolute hour; slotted mod 24) harvested
    /// `harvest_j` joules, with an optional activity intensity.
    Observe {
        /// Fleet user index.
        user: u32,
        /// Hour the observation describes (taken mod 24 for the diurnal
        /// slot).
        hour: u32,
        /// Energy harvested during the hour, in joules (finite, >= 0).
        harvest_j: f64,
        /// Optional activity intensity for the hour (finite if present).
        activity: Option<f64>,
        /// Optional client sequence number (starting at 1, strictly
        /// increasing per user) making the observe idempotent: resending
        /// the newest applied number replays the cached budget instead of
        /// reapplying the observation.
        seq: Option<u64>,
    },
    /// Serve an allocation decision for the user's upcoming hour from the
    /// cohort's cached plan frontier. Read-only: repeated decides are
    /// idempotent.
    Decide {
        /// Fleet user index.
        user: u32,
    },
    /// Fetch fleet + server statistics.
    Stats,
    /// Write a versioned binary snapshot of the whole population.
    Checkpoint {
        /// Filesystem path to write.
        path: String,
    },
    /// Replace the whole population's state from a snapshot.
    Restore {
        /// Filesystem path to read.
        path: String,
    },
    /// Gracefully stop the server: in-flight connections drain, an exit
    /// checkpoint is written if configured, the process exits 0.
    Shutdown,
}

/// One operating point's share of a served decision, on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireShare {
    /// Operating point id.
    pub id: u8,
    /// Seconds of the period at this point.
    pub seconds: f64,
}

/// The deterministic, checkpoint-covered half of a `stats` response:
/// pure functions of the observation stream, bit-identical across
/// checkpoint/restore (the property the snapshot tests pin).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Resident users.
    pub users: u32,
    /// Distinct `(operating points, alpha)` cohorts sharing a frontier.
    pub cohorts: u32,
    /// Total observations absorbed.
    pub observations: u64,
    /// Sum of harvested energy over all observations, in joules.
    pub harvested_j: f64,
    /// Sum of granted budgets over all observations, in joules.
    pub budget_j: f64,
    /// Sum of current virtual-battery levels, in joules.
    pub battery_j: f64,
    /// Sum of reported activity intensities.
    pub activity: f64,
    /// FNV-1a digest over every user's serialized resident state.
    pub state_digest: u64,
}

/// The timing-dependent half of a `stats` response: request counters and
/// latency quantiles. Not checkpointed (a restored server starts fresh).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Total requests handled (post-handshake).
    pub requests: u64,
    /// Error frames sent.
    pub errors: u64,
    /// `observe` requests handled.
    pub observes: u64,
    /// `decide` requests handled.
    pub decides: u64,
    /// `checkpoint` requests handled.
    pub checkpoints: u64,
    /// `restore` requests handled.
    pub restores: u64,
    /// Connections evicted for stalling mid-frame past the frame
    /// deadline (slow-loris defense).
    pub evicted: u64,
    /// `observe` requests shed with [`ErrorCode::Overloaded`] while the
    /// server was over its shed threshold.
    pub shed: u64,
    /// Server-side observe handling p50, in microseconds.
    pub observe_p50_us: f64,
    /// Server-side observe handling p99, in microseconds.
    pub observe_p99_us: f64,
    /// Server-side decide handling p50, in microseconds.
    pub decide_p50_us: f64,
    /// Server-side decide handling p99, in microseconds.
    pub decide_p99_us: f64,
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful handshake.
    Welcome {
        /// Server protocol version (equals [`PROTOCOL_VERSION`]).
        version: u32,
        /// Resident fleet size.
        users: u32,
    },
    /// An observation was absorbed; echoes the open-loop budget granted
    /// for the observed hour.
    Observed {
        /// Fleet user index.
        user: u32,
        /// Echo of the observed hour.
        hour: u32,
        /// Budget granted for the observed hour, in joules.
        budget_j: f64,
    },
    /// A served allocation decision.
    Decision {
        /// Fleet user index.
        user: u32,
        /// Budget the plan was decided at, in joules.
        budget_j: f64,
        /// Expected accuracy of the plan over the period.
        accuracy: f64,
        /// Active seconds of the plan.
        active_s: f64,
        /// Energy the plan consumes, in joules.
        energy_j: f64,
        /// Off-state seconds of the plan.
        off_s: f64,
        /// The (at most two) point shares of the blend, ascending id.
        shares: Vec<WireShare>,
    },
    /// Fleet + server statistics.
    Stats {
        /// Deterministic, checkpoint-covered statistics.
        fleet: FleetStats,
        /// Timing-dependent request-path statistics.
        server: ServerStats,
    },
    /// A checkpoint was written.
    CheckpointDone {
        /// Path written.
        path: String,
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// A snapshot was restored.
    RestoreDone {
        /// Path read.
        path: String,
        /// Users restored.
        users: u32,
    },
    /// Acknowledges a shutdown request; the server stops accepting and
    /// drains.
    ShuttingDown,
    /// An error frame.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl From<ProtocolError> for Response {
    fn from(e: ProtocolError) -> Response {
        Response::Error {
            code: e.code,
            message: e.message,
        }
    }
}

// ---------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------

/// A parsed JSON value (the subset the protocol needs; no nested-depth
/// limit is required because frames are line-bounded).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> ProtocolError {
        ProtocolError::new(ErrorCode::Malformed, format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ProtocolError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ProtocolError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ProtocolError> {
        // reap-lint: allow(panic:index) -- parser invariant: pos <= bytes.len(), so the range slice is in-bounds
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ProtocolError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ProtocolError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00..DFFF.
                            if (0xD800..0xDC00).contains(&cp) {
                                // reap-lint: allow(panic:index) -- parser invariant: pos <= bytes.len()
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid codepoint"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-scan the full UTF-8 sequence starting here. The
                    // input is a &str, so sequences are always valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    // reap-lint: allow(panic:index) -- input is a &str, so the UTF-8 sequence at `start` is complete and in-bounds
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ProtocolError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // reap-lint: allow(panic:index) -- length checked on the line above
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // reap-lint: allow(panic:index) -- parser invariant: start <= pos <= bytes.len()
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(v))
    }
}

/// Byte length of the UTF-8 sequence starting with `b` (1 for ASCII and,
/// defensively, for continuation bytes — unreachable from a `&str`).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

fn parse_json(line: &str) -> Result<Json, ProtocolError> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after JSON value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Typed extraction
// ---------------------------------------------------------------------

fn as_obj(v: &Json) -> Result<&[(String, Json)], ProtocolError> {
    match v {
        Json::Obj(members) => Ok(members),
        _ => Err(ProtocolError::new(
            ErrorCode::Malformed,
            "frame is not a JSON object",
        )),
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn need<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, ProtocolError> {
    get(obj, key)
        .ok_or_else(|| ProtocolError::new(ErrorCode::Malformed, format!("missing field {key:?}")))
}

fn need_f64(obj: &[(String, Json)], key: &str) -> Result<f64, ProtocolError> {
    match need(obj, key)? {
        Json::Num(v) => Ok(*v),
        _ => Err(ProtocolError::new(
            ErrorCode::Malformed,
            format!("field {key:?} is not a number"),
        )),
    }
}

fn need_u32(obj: &[(String, Json)], key: &str) -> Result<u32, ProtocolError> {
    let v = need_f64(obj, key)?;
    if v.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&v) {
        return Err(ProtocolError::new(
            ErrorCode::Malformed,
            format!("field {key:?} is not a u32"),
        ));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(v as u32)
}

fn need_u64(obj: &[(String, Json)], key: &str) -> Result<u64, ProtocolError> {
    let v = need_f64(obj, key)?;
    if v.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&v) {
        return Err(ProtocolError::new(
            ErrorCode::Malformed,
            format!("field {key:?} is not an exactly-representable u64"),
        ));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(v as u64)
}

fn need_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, ProtocolError> {
    match need(obj, key)? {
        Json::Str(s) => Ok(s),
        _ => Err(ProtocolError::new(
            ErrorCode::Malformed,
            format!("field {key:?} is not a string"),
        )),
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Appends `s` JSON-escaped (quoted) to `out`.
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in shortest-round-trip form. Only finite values reach
/// the wire (validation upstream), but map the impossible defensively.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl Request {
    /// Encodes the request as one JSON line **without** the trailing
    /// newline (the framing layer appends it).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            Request::Hello { version } => {
                s.push_str(&format!("{{\"type\":\"hello\",\"version\":{version}}}"));
            }
            Request::Observe {
                user,
                hour,
                harvest_j,
                activity,
                seq,
            } => {
                s.push_str(&format!(
                    "{{\"type\":\"observe\",\"user\":{user},\"hour\":{hour},\"harvest_j\":"
                ));
                push_f64(&mut s, *harvest_j);
                if let Some(a) = activity {
                    s.push_str(",\"activity\":");
                    push_f64(&mut s, *a);
                }
                if let Some(n) = seq {
                    s.push_str(&format!(",\"seq\":{n}"));
                }
                s.push('}');
            }
            Request::Decide { user } => {
                s.push_str(&format!("{{\"type\":\"decide\",\"user\":{user}}}"));
            }
            Request::Stats => s.push_str("{\"type\":\"stats\"}"),
            Request::Checkpoint { path } => {
                s.push_str("{\"type\":\"checkpoint\",\"path\":");
                push_escaped(&mut s, path);
                s.push('}');
            }
            Request::Restore { path } => {
                s.push_str("{\"type\":\"restore\",\"path\":");
                push_escaped(&mut s, path);
                s.push('}');
            }
            Request::Shutdown => s.push_str("{\"type\":\"shutdown\"}"),
        }
        s
    }

    /// Decodes one line (without its newline) into a request.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] with [`ErrorCode::Malformed`] on anything that
    /// is not a well-formed known request frame.
    pub fn decode(line: &str) -> Result<Request, ProtocolError> {
        let v = parse_json(line)?;
        let obj = as_obj(&v)?;
        match need_str(obj, "type")? {
            "hello" => Ok(Request::Hello {
                version: need_u32(obj, "version")?,
            }),
            "observe" => {
                let activity = match get(obj, "activity") {
                    None | Some(Json::Null) => None,
                    Some(Json::Num(a)) => Some(*a),
                    Some(_) => {
                        return Err(ProtocolError::new(
                            ErrorCode::Malformed,
                            "field \"activity\" is not a number",
                        ))
                    }
                };
                let seq = match get(obj, "seq") {
                    None | Some(Json::Null) => None,
                    Some(_) => Some(need_u64(obj, "seq")?),
                };
                Ok(Request::Observe {
                    user: need_u32(obj, "user")?,
                    hour: need_u32(obj, "hour")?,
                    harvest_j: need_f64(obj, "harvest_j")?,
                    activity,
                    seq,
                })
            }
            "decide" => Ok(Request::Decide {
                user: need_u32(obj, "user")?,
            }),
            "stats" => Ok(Request::Stats),
            "checkpoint" => Ok(Request::Checkpoint {
                path: need_str(obj, "path")?.to_string(),
            }),
            "restore" => Ok(Request::Restore {
                path: need_str(obj, "path")?.to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(
                ErrorCode::Malformed,
                format!("unknown request type {other:?}"),
            )),
        }
    }
}

impl Response {
    /// Encodes the response as one JSON line **without** the trailing
    /// newline.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            Response::Welcome { version, users } => {
                s.push_str(&format!(
                    "{{\"type\":\"welcome\",\"version\":{version},\"users\":{users}}}"
                ));
            }
            Response::Observed {
                user,
                hour,
                budget_j,
            } => {
                s.push_str(&format!(
                    "{{\"type\":\"observed\",\"user\":{user},\"hour\":{hour},\"budget_j\":"
                ));
                push_f64(&mut s, *budget_j);
                s.push('}');
            }
            Response::Decision {
                user,
                budget_j,
                accuracy,
                active_s,
                energy_j,
                off_s,
                shares,
            } => {
                s.push_str(&format!("{{\"type\":\"decision\",\"user\":{user}"));
                for (key, v) in [
                    ("budget_j", budget_j),
                    ("accuracy", accuracy),
                    ("active_s", active_s),
                    ("energy_j", energy_j),
                    ("off_s", off_s),
                ] {
                    s.push_str(&format!(",\"{key}\":"));
                    push_f64(&mut s, *v);
                }
                s.push_str(",\"shares\":[");
                for (i, share) in shares.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("{{\"id\":{},\"seconds\":", share.id));
                    push_f64(&mut s, share.seconds);
                    s.push('}');
                }
                s.push_str("]}");
            }
            Response::Stats { fleet, server } => {
                s.push_str("{\"type\":\"stats\",\"fleet\":");
                s.push_str(&fleet.encode());
                s.push_str(",\"server\":");
                s.push_str(&server.encode());
                s.push('}');
            }
            Response::CheckpointDone { path, bytes } => {
                s.push_str("{\"type\":\"checkpoint_done\",\"path\":");
                push_escaped(&mut s, path);
                s.push_str(&format!(",\"bytes\":{bytes}}}"));
            }
            Response::RestoreDone { path, users } => {
                s.push_str("{\"type\":\"restore_done\",\"path\":");
                push_escaped(&mut s, path);
                s.push_str(&format!(",\"users\":{users}}}"));
            }
            Response::ShuttingDown => s.push_str("{\"type\":\"shutting_down\"}"),
            Response::Error { code, message } => {
                s.push_str(&format!(
                    "{{\"type\":\"error\",\"code\":\"{code}\",\"message\":"
                ));
                push_escaped(&mut s, message);
                s.push('}');
            }
        }
        s
    }

    /// Decodes one line (without its newline) into a response.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] with [`ErrorCode::Malformed`] on anything that
    /// is not a well-formed known response frame.
    pub fn decode(line: &str) -> Result<Response, ProtocolError> {
        let v = parse_json(line)?;
        let obj = as_obj(&v)?;
        match need_str(obj, "type")? {
            "welcome" => Ok(Response::Welcome {
                version: need_u32(obj, "version")?,
                users: need_u32(obj, "users")?,
            }),
            "observed" => Ok(Response::Observed {
                user: need_u32(obj, "user")?,
                hour: need_u32(obj, "hour")?,
                budget_j: need_f64(obj, "budget_j")?,
            }),
            "decision" => {
                let shares = match need(obj, "shares")? {
                    Json::Arr(items) => items
                        .iter()
                        .map(|item| {
                            let share = as_obj(item)?;
                            let id = need_u32(share, "id")?;
                            let id = u8::try_from(id).map_err(|_| {
                                ProtocolError::new(ErrorCode::Malformed, "share id overflows u8")
                            })?;
                            Ok(WireShare {
                                id,
                                seconds: need_f64(share, "seconds")?,
                            })
                        })
                        .collect::<Result<Vec<_>, ProtocolError>>()?,
                    _ => {
                        return Err(ProtocolError::new(
                            ErrorCode::Malformed,
                            "field \"shares\" is not an array",
                        ))
                    }
                };
                Ok(Response::Decision {
                    user: need_u32(obj, "user")?,
                    budget_j: need_f64(obj, "budget_j")?,
                    accuracy: need_f64(obj, "accuracy")?,
                    active_s: need_f64(obj, "active_s")?,
                    energy_j: need_f64(obj, "energy_j")?,
                    off_s: need_f64(obj, "off_s")?,
                    shares,
                })
            }
            "stats" => Ok(Response::Stats {
                fleet: FleetStats::decode_obj(as_obj(need(obj, "fleet")?)?)?,
                server: ServerStats::decode_obj(as_obj(need(obj, "server")?)?)?,
            }),
            "checkpoint_done" => Ok(Response::CheckpointDone {
                path: need_str(obj, "path")?.to_string(),
                bytes: need_u64(obj, "bytes")?,
            }),
            "restore_done" => Ok(Response::RestoreDone {
                path: need_str(obj, "path")?.to_string(),
                users: need_u32(obj, "users")?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => {
                let code_str = need_str(obj, "code")?;
                let code = ErrorCode::parse(code_str).ok_or_else(|| {
                    ProtocolError::new(
                        ErrorCode::Malformed,
                        format!("unknown error code {code_str:?}"),
                    )
                })?;
                Ok(Response::Error {
                    code,
                    message: need_str(obj, "message")?.to_string(),
                })
            }
            other => Err(ProtocolError::new(
                ErrorCode::Malformed,
                format!("unknown response type {other:?}"),
            )),
        }
    }
}

impl FleetStats {
    /// Encodes the deterministic fleet section as a JSON object. Field
    /// values are pure functions of the observation stream, and `f64`s
    /// print in shortest-round-trip form — so bit-identical state yields
    /// a byte-identical encoding (what the checkpoint tests compare).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"users\":{},\"cohorts\":{},\"observations\":{},\"harvested_j\":",
            self.users, self.cohorts, self.observations
        ));
        push_f64(&mut s, self.harvested_j);
        s.push_str(",\"budget_j\":");
        push_f64(&mut s, self.budget_j);
        s.push_str(",\"battery_j\":");
        push_f64(&mut s, self.battery_j);
        s.push_str(",\"activity\":");
        push_f64(&mut s, self.activity);
        s.push_str(&format!(
            ",\"state_digest\":\"{:016x}\"}}",
            self.state_digest
        ));
        s
    }

    fn decode_obj(obj: &[(String, Json)]) -> Result<FleetStats, ProtocolError> {
        let digest_hex = need_str(obj, "state_digest")?;
        let state_digest = u64::from_str_radix(digest_hex, 16).map_err(|_| {
            ProtocolError::new(ErrorCode::Malformed, "state_digest is not a hex u64")
        })?;
        Ok(FleetStats {
            users: need_u32(obj, "users")?,
            cohorts: need_u32(obj, "cohorts")?,
            observations: need_u64(obj, "observations")?,
            harvested_j: need_f64(obj, "harvested_j")?,
            budget_j: need_f64(obj, "budget_j")?,
            battery_j: need_f64(obj, "battery_j")?,
            activity: need_f64(obj, "activity")?,
            state_digest,
        })
    }
}

impl ServerStats {
    /// Encodes the server section as a JSON object.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(224);
        s.push_str(&format!(
            "{{\"connections\":{},\"requests\":{},\"errors\":{},\"observes\":{},\
             \"decides\":{},\"checkpoints\":{},\"restores\":{},\"evicted\":{},\"shed\":{}",
            self.connections,
            self.requests,
            self.errors,
            self.observes,
            self.decides,
            self.checkpoints,
            self.restores,
            self.evicted,
            self.shed
        ));
        for (key, v) in [
            ("observe_p50_us", self.observe_p50_us),
            ("observe_p99_us", self.observe_p99_us),
            ("decide_p50_us", self.decide_p50_us),
            ("decide_p99_us", self.decide_p99_us),
        ] {
            s.push_str(&format!(",\"{key}\":"));
            push_f64(&mut s, v);
        }
        s.push('}');
        s
    }

    fn decode_obj(obj: &[(String, Json)]) -> Result<ServerStats, ProtocolError> {
        Ok(ServerStats {
            connections: need_u64(obj, "connections")?,
            requests: need_u64(obj, "requests")?,
            errors: need_u64(obj, "errors")?,
            observes: need_u64(obj, "observes")?,
            decides: need_u64(obj, "decides")?,
            checkpoints: need_u64(obj, "checkpoints")?,
            restores: need_u64(obj, "restores")?,
            evicted: need_u64(obj, "evicted")?,
            shed: need_u64(obj, "shed")?,
            observe_p50_us: need_f64(obj, "observe_p50_us")?,
            observe_p99_us: need_f64(obj, "observe_p99_us")?,
            decide_p50_us: need_f64(obj, "decide_p50_us")?,
            decide_p99_us: need_f64(obj, "decide_p99_us")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Hello { version: 2 },
            Request::Observe {
                user: 42,
                hour: 17,
                harvest_j: 1.2345678901234567,
                activity: Some(0.5),
                seq: Some(u64::from(u32::MAX) + 7),
            },
            Request::Observe {
                user: 0,
                hour: 0,
                harvest_j: 0.0,
                activity: None,
                seq: None,
            },
            Request::Decide { user: u32::MAX },
            Request::Stats,
            Request::Checkpoint {
                path: "/tmp/weird \"path\"\\with\nescapes\tand unicode é🙂".into(),
            },
            Request::Restore {
                path: String::new(),
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(
                !line.contains('\n'),
                "encoded frame contains newline: {line}"
            );
            assert_eq!(Request::decode(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Welcome {
                version: 2,
                users: 2000,
            },
            Response::Observed {
                user: 3,
                hour: 23,
                budget_j: 0.18,
            },
            Response::Decision {
                user: 9,
                budget_j: 4.999999999999999,
                accuracy: 0.87,
                active_s: 3600.0,
                energy_j: 5.0,
                off_s: 0.0,
                shares: vec![
                    WireShare {
                        id: 4,
                        seconds: 1511.9999999,
                    },
                    WireShare {
                        id: 5,
                        seconds: 2088.0000001,
                    },
                ],
            },
            Response::Stats {
                fleet: FleetStats {
                    users: 10,
                    cohorts: 10,
                    observations: 240,
                    harvested_j: 123.456,
                    budget_j: 100.0,
                    battery_j: 299.5,
                    activity: 0.0,
                    state_digest: 0xDEAD_BEEF_CAFE_F00D,
                },
                server: ServerStats {
                    connections: 3,
                    requests: 250,
                    errors: 1,
                    observes: 240,
                    decides: 9,
                    checkpoints: 0,
                    restores: 0,
                    evicted: 2,
                    shed: 5,
                    observe_p50_us: 1.5,
                    observe_p99_us: 12.0,
                    decide_p50_us: 0.5,
                    decide_p99_us: 4.0,
                },
            },
            Response::CheckpointDone {
                path: "/tmp/ckpt.bin".into(),
                bytes: 123_456,
            },
            Response::RestoreDone {
                path: "snap".into(),
                users: 64,
            },
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::Malformed,
                message: "broken \"frame\"".into(),
            },
        ];
        for resp in resps {
            let line = resp.encode();
            assert!(
                !line.contains('\n'),
                "encoded frame contains newline: {line}"
            );
            assert_eq!(Response::decode(&line).unwrap(), resp, "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "not json",
            "{",
            "{}",
            "[1,2]",
            "{\"type\":\"nope\"}",
            "{\"type\":\"observe\",\"user\":1}",
            "{\"type\":\"observe\",\"user\":-1,\"hour\":0,\"harvest_j\":1}",
            "{\"type\":\"observe\",\"user\":1.5,\"hour\":0,\"harvest_j\":1}",
            "{\"type\":\"observe\",\"user\":1,\"hour\":0,\"harvest_j\":1,\"seq\":-1}",
            "{\"type\":\"observe\",\"user\":1,\"hour\":0,\"harvest_j\":1,\"seq\":1.5}",
            "{\"type\":\"observe\",\"user\":1,\"hour\":0,\"harvest_j\":1,\"seq\":\"x\"}",
            "{\"type\":\"decide\",\"user\":\"three\"}",
            "{\"type\":\"hello\",\"version\":1} trailing",
            "{\"type\":\"checkpoint\",\"path\":7}",
            "{\"type\":\"hello\",\"version\":1e999}",
            "{\"type\":\"error\",\"code\":\"martian\",\"message\":\"x\"}",
        ] {
            assert!(Request::decode(line).is_err(), "accepted request: {line:?}");
            assert!(
                Response::decode(line).is_err(),
                "accepted response: {line:?}"
            );
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let req = Request::decode("{\"type\":\"checkpoint\",\"path\":\"\\u00e9\\ud83d\\ude02x\"}")
            .unwrap();
        assert_eq!(
            req,
            Request::Checkpoint {
                path: "é😂x".into()
            }
        );
        assert!(Request::decode("{\"type\":\"checkpoint\",\"path\":\"\\ud83d\"}").is_err());
    }
}
