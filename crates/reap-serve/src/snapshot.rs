//! Versioned binary snapshots of the resident population.
//!
//! Layout (all integers and floats little-endian):
//!
//! ```text
//! magic        8 bytes   b"REAPSNAP"
//! version      u32       SNAPSHOT_VERSION
//! fingerprint  u64       FleetState::fingerprint() of the writer
//! ewma_alpha   f64       allocator smoothing factor of the writer
//! users        u32       population size
//! records      users × RECORD_BYTES   per-user records, user-index order
//! digest       u64       FNV-1a over the records region
//! ```
//!
//! Each per-user record is fixed-size (252 bytes):
//!
//! ```text
//! flags        u32       bit 0: allocator first_call_done
//! last_hour    u32       hour-of-day of the last observation; u32::MAX = none
//! seen_mask    u32       DiurnalEwma seeded-slot bitmask (24 bits)
//! observations u64
//! vbat_level   f64       virtual-battery level, joules (exact bits)
//! last_harvest f64       joules
//! harvested_j  f64       running sum
//! budget_j     f64       running sum
//! activity     f64       running sum
//! estimates    24 × f64  DiurnalEwma per-slot estimates (exact bits)
//! ```
//!
//! Every `f64` is stored as its exact bit pattern, and restore reinjects
//! those bits unmodified — so a restored population's subsequent budgets,
//! stats, and digest are *bit-identical* to the uninterrupted original
//! (the property the checkpoint tests pin). The fingerprint ties a
//! snapshot to the fleet configuration that wrote it: restoring into a
//! state built from a different fleet (different seed, size, points, or
//! sources) is refused rather than silently misapplied.

use reap_harvest::{DiurnalEwma, EwmaAllocator};
use reap_units::Energy;

use crate::protocol::{ErrorCode, ProtocolError};
use crate::state::{FleetState, Fnv, UserState, NO_HOUR};

/// Snapshot format version; bumped on any layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The 8-byte magic opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"REAPSNAP";

/// Fixed size of one per-user record.
pub(crate) const RECORD_BYTES: usize = 4 + 4 + 4 + 8 + 5 * 8 + 24 * 8;

const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 4;

/// Serializes one user's resident state into its fixed-size record —
/// also the unit the stats digest hashes, so "digest equal" and
/// "snapshot equal" are the same statement.
pub(crate) fn user_record(state: &UserState) -> [u8; RECORD_BYTES] {
    let mut rec = [0u8; RECORD_BYTES];
    let mut at = 0usize;
    let mut put = |bytes: &[u8]| {
        rec[at..at + bytes.len()].copy_from_slice(bytes);
        at += bytes.len();
    };
    let flags: u32 = u32::from(state.alloc.first_call_done());
    put(&flags.to_le_bytes());
    put(&state.last_hour.to_le_bytes());
    let (estimates, seen_mask) = state.alloc.diurnal().to_parts();
    put(&seen_mask.to_le_bytes());
    put(&state.observations.to_le_bytes());
    put(&state.vbat.level().joules().to_le_bytes());
    put(&state.last_harvest.joules().to_le_bytes());
    put(&state.harvested_j.to_le_bytes());
    put(&state.budget_j.to_le_bytes());
    put(&state.activity.to_le_bytes());
    for e in estimates {
        put(&e.to_le_bytes());
    }
    debug_assert_eq!(at, RECORD_BYTES);
    rec
}

/// Serializes the whole population into snapshot bytes. Takes all shard
/// locks for the duration, so the snapshot is an atomic cut of the
/// fleet.
#[must_use]
pub fn snapshot(state: &FleetState) -> Vec<u8> {
    let users = state.users() as usize;
    let mut out = Vec::with_capacity(HEADER_BYTES + users * RECORD_BYTES + 8);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&state.fingerprint().to_le_bytes());
    out.extend_from_slice(&state.ewma_alpha().to_le_bytes());
    out.extend_from_slice(&state.users().to_le_bytes());
    state.for_each_user_in_order(|u| out.extend_from_slice(&user_record(u)));
    let mut digest = Fnv::new();
    digest.write_bytes(&out[HEADER_BYTES..]);
    out.extend_from_slice(&digest.finish().to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        if self.at + N > self.bytes.len() {
            return Err(ProtocolError::new(
                ErrorCode::Snapshot,
                format!("snapshot truncated at byte {}", self.at),
            ));
        }
        let mut buf = [0u8; N];
        buf.copy_from_slice(&self.bytes[self.at..self.at + N]);
        self.at += N;
        Ok(buf)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take()?))
    }
}

/// Replaces the whole population's resident state from snapshot bytes.
/// Validates magic, version, fleet fingerprint, user count, and the
/// trailing digest before touching any state, then rewrites every user
/// atomically (all shard locks held). Returns the number of users
/// restored.
///
/// # Errors
///
/// [`ErrorCode::Snapshot`] when the bytes are truncated or corrupt, the
/// version is unknown, the fingerprint does not match this state's
/// fleet, or a record carries an out-of-range value.
pub fn restore(state: &FleetState, bytes: &[u8]) -> Result<u32, ProtocolError> {
    let mut r = Reader { bytes, at: 0 };
    let magic: [u8; 8] = r.take()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            "not a REAP snapshot (bad magic)",
        ));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!("snapshot version {version}, this build reads {SNAPSHOT_VERSION}"),
        ));
    }
    let fingerprint = r.u64()?;
    if fingerprint != state.fingerprint() {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!(
                "snapshot fingerprint {fingerprint:016x} does not match this fleet \
                 ({:016x}); it was written by a different configuration",
                state.fingerprint()
            ),
        ));
    }
    let ewma_alpha = r.f64()?;
    if ewma_alpha.to_bits() != state.ewma_alpha().to_bits() {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!(
                "snapshot allocator alpha {ewma_alpha} differs from this build's {}",
                state.ewma_alpha()
            ),
        ));
    }
    let users = r.u32()?;
    if users != state.users() {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!("snapshot holds {users} users, this fleet {}", state.users()),
        ));
    }
    let records_len = users as usize * RECORD_BYTES;
    if bytes.len() != HEADER_BYTES + records_len + 8 {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!(
                "snapshot is {} bytes, expected {}",
                bytes.len(),
                HEADER_BYTES + records_len + 8
            ),
        ));
    }
    let mut digest = Fnv::new();
    digest.write_bytes(&bytes[HEADER_BYTES..HEADER_BYTES + records_len]);
    let stored = u64::from_le_bytes(
        bytes[HEADER_BYTES + records_len..]
            .try_into()
            .expect("length checked above"),
    );
    if digest.finish() != stored {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            "snapshot digest mismatch (corrupt records)",
        ));
    }

    // Decode every record before mutating anything, so a bad record
    // cannot leave the population half-restored.
    let mut decoded = Vec::with_capacity(users as usize);
    for user in 0..users {
        decoded.push(decode_record(&mut r, ewma_alpha, user)?);
    }

    let mut next = decoded.into_iter();
    state.for_each_user_in_order_mut(|u| {
        let d = next.next().expect("one decoded record per user");
        u.alloc = d.alloc;
        u.vbat
            .set_level(d.vbat_level)
            .expect("level validated during decode");
        u.last_harvest = d.last_harvest;
        u.last_hour = d.last_hour;
        u.observations = d.observations;
        u.harvested_j = d.harvested_j;
        u.budget_j = d.budget_j;
        u.activity = d.activity;
    });
    Ok(users)
}

struct DecodedUser {
    alloc: EwmaAllocator,
    vbat_level: Energy,
    last_harvest: Energy,
    last_hour: u32,
    observations: u64,
    harvested_j: f64,
    budget_j: f64,
    activity: f64,
}

fn decode_record(
    r: &mut Reader<'_>,
    ewma_alpha: f64,
    user: u32,
) -> Result<DecodedUser, ProtocolError> {
    let bad = |what: &str| ProtocolError::new(ErrorCode::Snapshot, format!("user {user}: {what}"));
    let flags = r.u32()?;
    if flags > 1 {
        return Err(bad("unknown flag bits"));
    }
    let last_hour = r.u32()?;
    if last_hour != NO_HOUR && last_hour >= 24 {
        return Err(bad("last_hour out of range"));
    }
    let seen_mask = r.u32()?;
    if seen_mask >= 1 << 24 {
        return Err(bad("seen_mask has bits beyond slot 23"));
    }
    let observations = r.u64()?;
    let vbat_level = r.f64()?;
    let last_harvest = r.f64()?;
    let harvested_j = r.f64()?;
    let budget_j = r.f64()?;
    let activity = r.f64()?;
    if !vbat_level.is_finite() || !(0.0..=60.0).contains(&vbat_level) {
        return Err(bad("battery level outside [0, capacity]"));
    }
    if !last_harvest.is_finite() || last_harvest < 0.0 {
        return Err(bad("negative or non-finite last_harvest"));
    }
    for (name, v) in [
        ("harvested_j", harvested_j),
        ("budget_j", budget_j),
        ("activity", activity),
    ] {
        if !v.is_finite() {
            return Err(bad(&format!("non-finite {name}")));
        }
    }
    let mut estimates = [0.0f64; 24];
    for slot in &mut estimates {
        let e = r.f64()?;
        if !e.is_finite() {
            return Err(bad("non-finite EWMA estimate"));
        }
        *slot = e;
    }
    Ok(DecodedUser {
        alloc: EwmaAllocator::from_parts(
            DiurnalEwma::from_parts(ewma_alpha, estimates, seen_mask),
            flags & 1 == 1,
        ),
        vbat_level: Energy::from_joules(vbat_level),
        last_harvest: Energy::from_joules(last_harvest),
        last_hour,
        observations,
        harvested_j,
        budget_j,
        activity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_sim::Fleet;
    use reap_units::Power;

    fn fleet(users: u32, seed: u64) -> Fleet {
        Fleet::builder(vec![
            reap_core::OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).unwrap(),
            reap_core::OperatingPoint::new(5, "DP5", 0.76, Power::from_milliwatts(1.20)).unwrap(),
        ])
        .users(users)
        .days(1)
        .seed(seed)
        .build()
        .unwrap()
    }

    fn warmed(users: u32, seed: u64, hours: u32) -> FleetState {
        let state = FleetState::new(&fleet(users, seed), 3).unwrap();
        for u in 0..users {
            for h in 0..hours {
                let harvest = f64::from((u + h) % 5) * 0.7;
                let _ = state.observe(u, h, harvest, Some(0.1));
            }
        }
        state
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let state = warmed(6, 9, 30);
        let stats_before = state.fleet_stats();
        let bytes = snapshot(&state);

        // Restore into a *fresh* state built from the same fleet.
        let fresh = FleetState::new(&fleet(6, 9), 5).unwrap();
        assert_ne!(fresh.fleet_stats(), stats_before);
        assert_eq!(restore(&fresh, &bytes).unwrap(), 6);
        assert_eq!(fresh.fleet_stats(), stats_before);
        // And the two populations keep agreeing after more observations.
        for u in 0..6u32 {
            let a = state.observe(u, 6, 1.25, None).unwrap();
            let b = fresh.observe(u, 6, 1.25, None).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "user {u} diverged after restore");
        }
        assert_eq!(fresh.fleet_stats(), state.fleet_stats());
    }

    #[test]
    fn restore_refuses_foreign_and_corrupt_snapshots() {
        let state = warmed(4, 1, 10);
        let bytes = snapshot(&state);

        // Different seed → different fingerprint.
        let other = FleetState::new(&fleet(4, 2), 1).unwrap();
        assert_eq!(
            restore(&other, &bytes).unwrap_err().code,
            ErrorCode::Snapshot
        );
        // Different population size.
        let bigger = FleetState::new(&fleet(5, 1), 1).unwrap();
        assert_eq!(
            restore(&bigger, &bytes).unwrap_err().code,
            ErrorCode::Snapshot
        );

        let same = FleetState::new(&fleet(4, 1), 1).unwrap();
        // Truncation.
        assert!(restore(&same, &bytes[..bytes.len() - 1]).is_err());
        assert!(restore(&same, &[]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(restore(&same, &bad).is_err());
        // Unknown version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(restore(&same, &bad).is_err());
        // A flipped record byte breaks the digest.
        let mut bad = bytes.clone();
        let record_byte = 8 + 4 + 8 + 8 + 4 + 16;
        bad[record_byte] ^= 0x01;
        assert!(restore(&same, &bad).is_err());
        // None of the failed restores touched the target.
        assert_eq!(same.fleet_stats().observations, 0);
        // The pristine bytes still restore fine afterwards.
        assert_eq!(restore(&same, &bytes).unwrap(), 4);
        assert_eq!(same.fleet_stats(), state.fleet_stats());
    }

    #[test]
    fn record_size_matches_layout() {
        assert_eq!(RECORD_BYTES, 252);
        let state = warmed(1, 3, 2);
        assert_eq!(snapshot(&state).len(), 8 + 4 + 8 + 8 + 4 + 252 + 8);
    }
}
