//! Versioned binary snapshots of the resident population.
//!
//! Layout (all integers and floats little-endian):
//!
//! ```text
//! magic        8 bytes   b"REAPSNAP"
//! version      u32       SNAPSHOT_VERSION
//! fingerprint  u64       FleetState::fingerprint() of the writer
//! ewma_alpha   f64       allocator smoothing factor of the writer
//! users        u32       population size
//! records      users × RECORD_BYTES   per-user records, user-index order
//! digest       u64       FNV-1a over the records region
//! ```
//!
//! Each per-user record is fixed-size (268 bytes):
//!
//! ```text
//! flags        u32       bit 0: allocator first_call_done
//! last_hour    u32       hour-of-day of the last observation; u32::MAX = none
//! seen_mask    u32       DiurnalEwma seeded-slot bitmask (24 bits)
//! observations u64
//! vbat_level   f64       virtual-battery level, joules (exact bits)
//! last_harvest f64       joules
//! harvested_j  f64       running sum
//! budget_j     f64       running sum
//! activity     f64       running sum
//! last_seq     u64       newest observe sequence number applied; 0 = none
//! last_budget  f64       budget granted at last_seq (replayed on dup)
//! estimates    24 × f64  DiurnalEwma per-slot estimates (exact bits)
//! ```
//!
//! Every `f64` is stored as its exact bit pattern, and restore reinjects
//! those bits unmodified — so a restored population's subsequent budgets,
//! stats, and digest are *bit-identical* to the uninterrupted original
//! (the property the checkpoint tests pin). The fingerprint ties a
//! snapshot to the fleet configuration that wrote it: restoring into a
//! state built from a different fleet (different seed, size, points, or
//! sources) is refused rather than silently misapplied.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use reap_harvest::{DiurnalEwma, EwmaAllocator};
use reap_units::Energy;

use crate::fault::{CrashPoint, IoLayer, NoFaults};
use crate::protocol::{ErrorCode, ProtocolError};
use crate::state::{FleetState, Fnv, UserState, NO_HOUR};

/// Snapshot format version; bumped on any layout change (v2 added the
/// observe-replay fields `last_seq`/`last_budget`).
pub const SNAPSHOT_VERSION: u32 = 2;

/// The 8-byte magic opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"REAPSNAP";

/// Fixed size of one per-user record.
pub(crate) const RECORD_BYTES: usize = 4 + 4 + 4 + 8 + 5 * 8 + 8 + 8 + 24 * 8;

const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 4;

/// Serializes one user's resident state into its fixed-size record —
/// also the unit the stats digest hashes, so "digest equal" and
/// "snapshot equal" are the same statement.
pub(crate) fn user_record(state: &UserState) -> [u8; RECORD_BYTES] {
    let mut rec = [0u8; RECORD_BYTES];
    let mut at = 0usize;
    let mut put = |bytes: &[u8]| {
        // reap-lint: allow(panic:index) -- field offsets sum to RECORD_BYTES (debug-asserted below)
        rec[at..at + bytes.len()].copy_from_slice(bytes);
        at += bytes.len();
    };
    let flags: u32 = u32::from(state.alloc.first_call_done());
    put(&flags.to_le_bytes());
    put(&state.last_hour.to_le_bytes());
    let (estimates, seen_mask) = state.alloc.diurnal().to_parts();
    put(&seen_mask.to_le_bytes());
    put(&state.observations.to_le_bytes());
    put(&state.vbat.level().joules().to_le_bytes());
    put(&state.last_harvest.joules().to_le_bytes());
    put(&state.harvested_j.to_le_bytes());
    put(&state.budget_j.to_le_bytes());
    put(&state.activity.to_le_bytes());
    put(&state.last_seq.to_le_bytes());
    put(&state.last_budget.to_le_bytes());
    for e in estimates {
        put(&e.to_le_bytes());
    }
    debug_assert_eq!(at, RECORD_BYTES);
    rec
}

/// Serializes the whole population into snapshot bytes. Takes all shard
/// locks for the duration, so the snapshot is an atomic cut of the
/// fleet.
#[must_use]
pub fn snapshot(state: &FleetState) -> Vec<u8> {
    let users = state.users() as usize;
    let mut out = Vec::with_capacity(HEADER_BYTES + users * RECORD_BYTES + 8);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&state.fingerprint().to_le_bytes());
    out.extend_from_slice(&state.ewma_alpha().to_le_bytes());
    out.extend_from_slice(&state.users().to_le_bytes());
    state.for_each_user_in_order(|u| out.extend_from_slice(&user_record(u)));
    let mut digest = Fnv::new();
    // reap-lint: allow(panic:index) -- the header was just written: out.len() >= HEADER_BYTES
    digest.write_bytes(&out[HEADER_BYTES..]);
    out.extend_from_slice(&digest.finish().to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        if self.at + N > self.bytes.len() {
            return Err(ProtocolError::new(
                ErrorCode::Snapshot,
                format!("snapshot truncated at byte {}", self.at),
            ));
        }
        let mut buf = [0u8; N];
        // reap-lint: allow(panic:index) -- bounds checked on entry to take()
        buf.copy_from_slice(&self.bytes[self.at..self.at + N]);
        self.at += N;
        Ok(buf)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take()?))
    }
}

/// Replaces the whole population's resident state from snapshot bytes.
/// Validates magic, version, fleet fingerprint, user count, and the
/// trailing digest before touching any state, then rewrites every user
/// atomically (all shard locks held). Returns the number of users
/// restored.
///
/// # Errors
///
/// [`ErrorCode::Snapshot`] when the bytes are truncated or corrupt, the
/// version is unknown, the fingerprint does not match this state's
/// fleet, or a record carries an out-of-range value.
pub fn restore(state: &FleetState, bytes: &[u8]) -> Result<u32, ProtocolError> {
    let mut r = Reader { bytes, at: 0 };
    let magic: [u8; 8] = r.take()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            "not a REAP snapshot (bad magic)",
        ));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!("snapshot version {version}, this build reads {SNAPSHOT_VERSION}"),
        ));
    }
    let fingerprint = r.u64()?;
    if fingerprint != state.fingerprint() {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!(
                "snapshot fingerprint {fingerprint:016x} does not match this fleet \
                 ({:016x}); it was written by a different configuration",
                state.fingerprint()
            ),
        ));
    }
    let ewma_alpha = r.f64()?;
    if ewma_alpha.to_bits() != state.ewma_alpha().to_bits() {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!(
                "snapshot allocator alpha {ewma_alpha} differs from this build's {}",
                state.ewma_alpha()
            ),
        ));
    }
    let users = r.u32()?;
    if users != state.users() {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!("snapshot holds {users} users, this fleet {}", state.users()),
        ));
    }
    let records_len = users as usize * RECORD_BYTES;
    if bytes.len() != HEADER_BYTES + records_len + 8 {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            format!(
                "snapshot is {} bytes, expected {}",
                bytes.len(),
                HEADER_BYTES + records_len + 8
            ),
        ));
    }
    let mut digest = Fnv::new();
    // reap-lint: allow(panic:index) -- bytes.len() == HEADER_BYTES + records_len + 8 was just checked
    digest.write_bytes(&bytes[HEADER_BYTES..HEADER_BYTES + records_len]);
    // reap-lint: allow(panic:index) -- same length check: the tail slice is exactly 8 bytes
    let stored = match bytes[HEADER_BYTES + records_len..].try_into() {
        Ok(tail) => u64::from_le_bytes(tail),
        Err(_) => {
            return Err(ProtocolError::new(
                ErrorCode::Snapshot,
                "snapshot digest truncated",
            ));
        }
    };
    if digest.finish() != stored {
        return Err(ProtocolError::new(
            ErrorCode::Snapshot,
            "snapshot digest mismatch (corrupt records)",
        ));
    }

    // Decode every record before mutating anything, so a bad record
    // cannot leave the population half-restored.
    let mut decoded = Vec::with_capacity(users as usize);
    for user in 0..users {
        decoded.push(decode_record(&mut r, ewma_alpha, user)?);
    }

    let mut next = decoded.into_iter();
    state.for_each_user_in_order_mut(|u| {
        // reap-lint: allow(panic:expect) -- users == state.users() was validated; the walk yields exactly that many records
        let d = next.next().expect("one decoded record per user");
        u.alloc = d.alloc;
        u.vbat
            .set_level(d.vbat_level)
            // reap-lint: allow(panic:expect) -- decode_record already rejected levels outside [0, capacity]
            .expect("level validated during decode");
        u.last_harvest = d.last_harvest;
        u.last_hour = d.last_hour;
        u.observations = d.observations;
        u.harvested_j = d.harvested_j;
        u.budget_j = d.budget_j;
        u.activity = d.activity;
        u.last_seq = d.last_seq;
        u.last_budget = d.last_budget;
    });
    Ok(users)
}

struct DecodedUser {
    alloc: EwmaAllocator,
    vbat_level: Energy,
    last_harvest: Energy,
    last_hour: u32,
    observations: u64,
    harvested_j: f64,
    budget_j: f64,
    activity: f64,
    last_seq: u64,
    last_budget: f64,
}

fn decode_record(
    r: &mut Reader<'_>,
    ewma_alpha: f64,
    user: u32,
) -> Result<DecodedUser, ProtocolError> {
    let bad = |what: &str| ProtocolError::new(ErrorCode::Snapshot, format!("user {user}: {what}"));
    let flags = r.u32()?;
    if flags > 1 {
        return Err(bad("unknown flag bits"));
    }
    let last_hour = r.u32()?;
    if last_hour != NO_HOUR && last_hour >= 24 {
        return Err(bad("last_hour out of range"));
    }
    let seen_mask = r.u32()?;
    if seen_mask >= 1 << 24 {
        return Err(bad("seen_mask has bits beyond slot 23"));
    }
    let observations = r.u64()?;
    let vbat_level = r.f64()?;
    let last_harvest = r.f64()?;
    let harvested_j = r.f64()?;
    let budget_j = r.f64()?;
    let activity = r.f64()?;
    let last_seq = r.u64()?;
    let last_budget = r.f64()?;
    if !last_budget.is_finite() {
        return Err(bad("non-finite last_budget"));
    }
    if !vbat_level.is_finite() || !(0.0..=60.0).contains(&vbat_level) {
        return Err(bad("battery level outside [0, capacity]"));
    }
    if !last_harvest.is_finite() || last_harvest < 0.0 {
        return Err(bad("negative or non-finite last_harvest"));
    }
    for (name, v) in [
        ("harvested_j", harvested_j),
        ("budget_j", budget_j),
        ("activity", activity),
    ] {
        if !v.is_finite() {
            return Err(bad(&format!("non-finite {name}")));
        }
    }
    let mut estimates = [0.0f64; 24];
    for slot in &mut estimates {
        let e = r.f64()?;
        if !e.is_finite() {
            return Err(bad("non-finite EWMA estimate"));
        }
        *slot = e;
    }
    Ok(DecodedUser {
        alloc: EwmaAllocator::from_parts(
            DiurnalEwma::from_parts(ewma_alpha, estimates, seen_mask),
            flags & 1 == 1,
        ),
        vbat_level: Energy::from_joules(vbat_level),
        last_harvest: Energy::from_joules(last_harvest),
        last_hour,
        observations,
        harvested_j,
        budget_j,
        activity,
        last_seq,
        last_budget,
    })
}

// ---------------------------------------------------------------------
// Crash-safe persistence: atomic writes and the retained snapshot ring
// ---------------------------------------------------------------------

/// Fsyncs a directory so a rename inside it is durable. No-op off unix
/// (directory handles are not fsyncable portably).
fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// The parent directory of `path`, defaulting to `.` for bare filenames.
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Writes `bytes` to `path` crash-safely: write to `<path>.tmp`, fsync,
/// atomically rename over `path`, then fsync the parent directory so the
/// rename itself is durable. A crash at any point leaves either the old
/// `path` contents (plus possibly a torn `.tmp`, which [`restore`] would
/// refuse anyway) or the complete new contents — never a torn `path`.
///
/// # Errors
///
/// Any I/O failure along the way; on error the final `path` is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, bytes, &NoFaults).map(|_| ())
}

/// [`write_atomic`] with an [`IoLayer`] crash hook consulted at every
/// [`CrashPoint`]. Returns `Ok(true)` when the write completed, and
/// `Ok(false)` when the layer "killed" the writer mid-flight — the
/// filesystem is then left exactly as a real crash at that point would
/// leave it (that's what the kill-at-every-crash-point test exercises).
///
/// # Errors
///
/// Any genuine I/O failure along the way.
pub fn write_atomic_with<L: IoLayer>(path: &Path, bytes: &[u8], layer: &L) -> io::Result<bool> {
    let Some(name) = path.file_name() else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("snapshot path {path:?} has no file name"),
        ));
    };
    let mut tmp_name = name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let mut file = std::fs::File::create(&tmp)?;
    if layer.crash_at(CrashPoint::TempCreated) {
        return Ok(false);
    }
    let half = bytes.len() / 2;
    // reap-lint: allow(panic:index) -- half = len / 2 <= len
    file.write_all(&bytes[..half])?;
    if layer.crash_at(CrashPoint::TempHalfWritten) {
        return Ok(false);
    }
    // reap-lint: allow(panic:index) -- half = len / 2 <= len
    file.write_all(&bytes[half..])?;
    if layer.crash_at(CrashPoint::TempWritten) {
        return Ok(false);
    }
    file.sync_all()?;
    if layer.crash_at(CrashPoint::TempSynced) {
        return Ok(false);
    }
    drop(file);
    std::fs::rename(&tmp, path)?;
    if layer.crash_at(CrashPoint::Renamed) {
        return Ok(false);
    }
    fsync_dir(parent_dir(path))?;
    Ok(true)
}

/// A retained ring of the last `keep` snapshots in one directory.
///
/// Files are named `ckpt-<seq>.reapsnap` with a monotonically increasing
/// sequence number; every write goes through [`write_atomic`] and then
/// prunes beyond the retention count. [`SnapshotRing::recover`] scans
/// newest-first for the first snapshot whose digest (and fingerprint,
/// version, …) validates, so recovery after any crash lands on the last
/// durable checkpoint — torn temp files and corrupt rings degrade to the
/// next-older snapshot instead of failing.
#[derive(Debug, Clone)]
pub struct SnapshotRing {
    dir: PathBuf,
    keep: usize,
}

/// What [`SnapshotRing::recover`] restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The snapshot file that validated and was restored.
    pub path: PathBuf,
    /// Its ring sequence number.
    pub seq: u64,
    /// Users restored from it.
    pub users: u32,
    /// Newer ring files that failed validation and were skipped.
    pub skipped: usize,
}

impl SnapshotRing {
    /// Opens (creating if needed) a ring directory retaining the last
    /// `keep` snapshots (`keep` is clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(dir: impl Into<PathBuf>, keep: usize) -> io::Result<SnapshotRing> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotRing {
            dir,
            keep: keep.max(1),
        })
    }

    /// The ring directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Parses a ring filename back to its sequence number.
    fn parse_seq(name: &str) -> Option<u64> {
        name.strip_prefix("ckpt-")?
            .strip_suffix(".reapsnap")?
            .parse()
            .ok()
    }

    fn file_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:010}.reapsnap"))
    }

    /// Ring entries as `(seq, path)`, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn entries(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(seq) = entry.file_name().to_str().and_then(Self::parse_seq) {
                out.push((seq, entry.path()));
            }
        }
        out.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Snapshots `state` into the next ring slot ([`write_atomic`] under
    /// the hood), then prunes snapshots beyond the retention count and
    /// any stale temp files. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the ring is unchanged on error).
    pub fn write(&self, state: &FleetState) -> io::Result<PathBuf> {
        self.write_with(state, &NoFaults)?
            .ok_or_else(|| io::Error::other("NoFaults cannot crash the writer mid-checkpoint"))
    }

    /// [`SnapshotRing::write`] with a crash hook; `Ok(None)` means the
    /// layer killed the writer mid-checkpoint (no pruning happens then —
    /// a real crash wouldn't prune either).
    ///
    /// # Errors
    ///
    /// Propagates genuine I/O failures.
    pub fn write_with<L: IoLayer>(
        &self,
        state: &FleetState,
        layer: &L,
    ) -> io::Result<Option<PathBuf>> {
        let next = self.entries()?.last().map_or(0, |(seq, _)| seq + 1);
        let path = self.file_for(next);
        if !write_atomic_with(&path, &snapshot(state), layer)? {
            return Ok(None);
        }
        self.prune()?;
        Ok(Some(path))
    }

    /// Removes snapshots beyond the retention count, plus stale `.tmp`
    /// leftovers from crashed writers.
    fn prune(&self) -> io::Result<()> {
        let entries = self.entries()?;
        if entries.len() > self.keep {
            // reap-lint: allow(panic:index) -- entries.len() > keep, so the range end is in-bounds
            for (_, path) in &entries[..entries.len() - self.keep] {
                let _ = std::fs::remove_file(path);
            }
        }
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Scans the ring newest-first and restores `state` from the first
    /// snapshot that fully validates (magic, version, fingerprint,
    /// digest — via [`restore`], which never mutates on failure).
    /// `Ok(None)` means the ring holds no snapshot this state accepts;
    /// unreadable or torn files are skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures only.
    pub fn recover(&self, state: &FleetState) -> io::Result<Option<Recovery>> {
        let mut skipped = 0usize;
        for (seq, path) in self.entries()?.into_iter().rev() {
            let Ok(bytes) = std::fs::read(&path) else {
                skipped += 1;
                continue;
            };
            match restore(state, &bytes) {
                Ok(users) => {
                    return Ok(Some(Recovery {
                        path,
                        seq,
                        users,
                        skipped,
                    }));
                }
                Err(_) => skipped += 1,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_sim::Fleet;
    use reap_units::Power;

    fn fleet(users: u32, seed: u64) -> Fleet {
        Fleet::builder(vec![
            reap_core::OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).unwrap(),
            reap_core::OperatingPoint::new(5, "DP5", 0.76, Power::from_milliwatts(1.20)).unwrap(),
        ])
        .users(users)
        .days(1)
        .seed(seed)
        .build()
        .unwrap()
    }

    fn warmed(users: u32, seed: u64, hours: u32) -> FleetState {
        let state = FleetState::new(&fleet(users, seed), 3).unwrap();
        for u in 0..users {
            for h in 0..hours {
                let harvest = f64::from((u + h) % 5) * 0.7;
                let _ = state.observe(u, h, harvest, Some(0.1));
            }
        }
        state
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let state = warmed(6, 9, 30);
        let stats_before = state.fleet_stats();
        let bytes = snapshot(&state);

        // Restore into a *fresh* state built from the same fleet.
        let fresh = FleetState::new(&fleet(6, 9), 5).unwrap();
        assert_ne!(fresh.fleet_stats(), stats_before);
        assert_eq!(restore(&fresh, &bytes).unwrap(), 6);
        assert_eq!(fresh.fleet_stats(), stats_before);
        // And the two populations keep agreeing after more observations.
        for u in 0..6u32 {
            let a = state.observe(u, 6, 1.25, None).unwrap();
            let b = fresh.observe(u, 6, 1.25, None).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "user {u} diverged after restore");
        }
        assert_eq!(fresh.fleet_stats(), state.fleet_stats());
    }

    #[test]
    fn restore_refuses_foreign_and_corrupt_snapshots() {
        let state = warmed(4, 1, 10);
        let bytes = snapshot(&state);

        // Different seed → different fingerprint.
        let other = FleetState::new(&fleet(4, 2), 1).unwrap();
        assert_eq!(
            restore(&other, &bytes).unwrap_err().code,
            ErrorCode::Snapshot
        );
        // Different population size.
        let bigger = FleetState::new(&fleet(5, 1), 1).unwrap();
        assert_eq!(
            restore(&bigger, &bytes).unwrap_err().code,
            ErrorCode::Snapshot
        );

        let same = FleetState::new(&fleet(4, 1), 1).unwrap();
        // Truncation.
        assert!(restore(&same, &bytes[..bytes.len() - 1]).is_err());
        assert!(restore(&same, &[]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(restore(&same, &bad).is_err());
        // Unknown version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(restore(&same, &bad).is_err());
        // A flipped record byte breaks the digest.
        let mut bad = bytes.clone();
        let record_byte = 8 + 4 + 8 + 8 + 4 + 16;
        bad[record_byte] ^= 0x01;
        assert!(restore(&same, &bad).is_err());
        // None of the failed restores touched the target.
        assert_eq!(same.fleet_stats().observations, 0);
        // The pristine bytes still restore fine afterwards.
        assert_eq!(restore(&same, &bytes).unwrap(), 4);
        assert_eq!(same.fleet_stats(), state.fleet_stats());
    }

    #[test]
    fn record_size_matches_layout() {
        assert_eq!(RECORD_BYTES, 268);
        let state = warmed(1, 3, 2);
        assert_eq!(snapshot(&state).len(), 8 + 4 + 8 + 8 + 4 + 268 + 8);
    }

    #[test]
    fn seq_state_survives_the_round_trip() {
        let state = warmed(3, 11, 5);
        // Stamp a sequence-numbered observe, then snapshot.
        let granted = state.observe_seq(1, 5, 0.8, None, Some(42)).unwrap();
        let bytes = snapshot(&state);
        let fresh = FleetState::new(&fleet(3, 11), 2).unwrap();
        restore(&fresh, &bytes).unwrap();
        // Replaying the same seq on the restored state returns the cached
        // budget without reapplying.
        let obs_before = fresh.fleet_stats().observations;
        let replayed = fresh.observe_seq(1, 5, 0.8, None, Some(42)).unwrap();
        assert_eq!(replayed.to_bits(), granted.to_bits());
        assert_eq!(fresh.fleet_stats().observations, obs_before);
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("reap-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.reapsnap");
        let state = warmed(2, 5, 4);
        write_atomic(&path, &snapshot(&state)).unwrap();
        let fresh = FleetState::new(&fleet(2, 5), 1).unwrap();
        restore(&fresh, &std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(fresh.fleet_stats(), state.fleet_stats());
        // Overwriting in place is just as atomic.
        let _ = state.observe(0, 9, 1.0, None);
        write_atomic(&path, &snapshot(&state)).unwrap();
        let fresh2 = FleetState::new(&fleet(2, 5), 1).unwrap();
        restore(&fresh2, &std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(fresh2.fleet_stats(), state.fleet_stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_retains_newest_and_prunes() {
        let dir = std::env::temp_dir().join(format!("reap-ring-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ring = SnapshotRing::create(&dir, 3).unwrap();
        let state = warmed(2, 8, 2);
        for h in 0..5u32 {
            let _ = state.observe(0, h, 0.5, None);
            ring.write(&state).unwrap();
        }
        let entries = ring.entries().unwrap();
        assert_eq!(entries.len(), 3, "ring prunes to the retention count");
        assert_eq!(
            entries.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Recovery restores the newest snapshot (the current state).
        let fresh = FleetState::new(&fleet(2, 8), 1).unwrap();
        let rec = ring.recover(&fresh).unwrap().unwrap();
        assert_eq!(rec.seq, 4);
        assert_eq!(rec.skipped, 0);
        assert_eq!(fresh.fleet_stats(), state.fleet_stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_recovery_skips_corrupt_newest() {
        let dir = std::env::temp_dir().join(format!("reap-ring-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ring = SnapshotRing::create(&dir, 4).unwrap();
        let state = warmed(2, 13, 3);
        ring.write(&state).unwrap();
        let stats_durable = state.fleet_stats();
        let _ = state.observe(1, 7, 2.0, None);
        let newest = ring.write(&state).unwrap();
        // Simulate a power-loss torn write: truncate the newest file.
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let fresh = FleetState::new(&fleet(2, 13), 1).unwrap();
        let rec = ring.recover(&fresh).unwrap().unwrap();
        assert_eq!(rec.skipped, 1, "torn newest snapshot was skipped");
        assert_eq!(fresh.fleet_stats(), stats_durable);
        // An empty or all-corrupt ring recovers to None, state untouched.
        let empty = SnapshotRing::create(dir.join("empty"), 2).unwrap();
        let blank = FleetState::new(&fleet(2, 13), 1).unwrap();
        assert!(empty.recover(&blank).unwrap().is_none());
        assert_eq!(blank.fleet_stats().observations, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killing_the_writer_at_every_crash_point_never_loses_durable_state() {
        use crate::fault::{FaultConfig, FaultPlan};
        use std::sync::Arc;

        for point in CrashPoint::ALL {
            let dir =
                std::env::temp_dir().join(format!("reap-crash-{:?}-{}", point, std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let ring = SnapshotRing::create(&dir, 4).unwrap();
            let state = warmed(3, 17, 6);

            // Checkpoint A completes normally: the durable baseline.
            ring.write(&state).unwrap();
            let stats_durable = state.fleet_stats();

            // More work arrives, then checkpoint B dies at `point`.
            for h in 6..10u32 {
                for u in 0..3u32 {
                    let _ = state.observe(u, h, 0.9, None);
                }
            }
            let stats_new = state.fleet_stats();
            let killer: Arc<FaultPlan> = Arc::new(FaultPlan::new(
                0,
                FaultConfig {
                    crash_at: Some(point),
                    ..FaultConfig::default()
                },
            ));
            assert_eq!(
                ring.write_with(&state, &killer).unwrap(),
                None,
                "{point:?}: the writer must report the injected crash"
            );

            // Recovery must land on a digest-valid snapshot: the new one
            // iff the rename completed, else the durable baseline —
            // never a torn file, never an error.
            let fresh = FleetState::new(&fleet(3, 17), 2).unwrap();
            let rec = ring
                .recover(&fresh)
                .unwrap()
                .unwrap_or_else(|| panic!("{point:?}: recovery found no valid snapshot"));
            let recovered = fresh.fleet_stats();
            if point.new_snapshot_visible() {
                assert_eq!(recovered, stats_new, "{point:?}");
                assert_eq!(rec.skipped, 0, "{point:?}");
            } else {
                assert_eq!(recovered, stats_durable, "{point:?}");
            }
            // A later checkpoint heals the ring (stale temp pruned).
            ring.write(&state).unwrap();
            let healed = FleetState::new(&fleet(3, 17), 2).unwrap();
            ring.recover(&healed).unwrap().unwrap();
            assert_eq!(healed.fleet_stats(), stats_new, "{point:?}");
            assert!(
                std::fs::read_dir(&dir).unwrap().all(|e| !e
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")),
                "{point:?}: prune removed the torn temp file"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
