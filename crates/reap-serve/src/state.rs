//! Resident fleet state: the population the daemon serves from.
//!
//! The simulator rebuilds users from seeds every run; the daemon instead
//! holds each user's *live* policy state in memory — the EWMA diurnal
//! allocator, the virtual battery of the open-loop protocol, and running
//! accumulators — and advances it one observation at a time. Users are
//! derived from a [`Fleet`] (same seeds, same
//! [`Fleet::user_params`] definition), so a daemon observing the exact
//! hours a simulation ran grants the exact budgets the simulation
//! granted.
//!
//! Users sharing `(operating points, alpha)` form a cohort and resolve
//! decisions through one cached [`FrontierTable`] — the same
//! deduplication the SoA simulation core performs, keyed on the exact
//! bit patterns of `(alpha, per-point id/accuracy/power)`. A `Decide`
//! request is therefore a table walk, not an LP solve.
//!
//! Concurrency: users are striped over `S` shards (`user % S`), each
//! behind its own rank-ordered mutex ([`OrderedLock`], class
//! [`rank::SHARD`], sub-rank = shard index). Requests for different
//! shards proceed in parallel; fleet-wide operations (`Stats`,
//! checkpoint, restore) lock all shards in ascending index order — the
//! `ordered` same-rank discipline — and walk users in index order, so
//! their results are deterministic whatever the request interleaving
//! that got there.

use crate::locks::{rank, OrderedLock};

use reap_core::{Decision, FrontierTable, ReapProblem};
use reap_harvest::{Battery, BudgetAllocator, EwmaAllocator};
use reap_sim::Fleet;
use reap_units::{Energy, Power};

use crate::protocol::{ErrorCode, FleetStats, ProtocolError};

/// Sentinel for "no observation absorbed yet" in [`UserState::last_hour`].
pub(crate) const NO_HOUR: u32 = u32::MAX;

/// The off-state power every fleet device idles at (matches the SoA core
/// and the scalar engine: 50 µW).
const OFF_POWER_UW: f64 = 50.0;

/// One user's live policy state.
#[derive(Debug, Clone)]
pub(crate) struct UserState {
    /// The Kansal-style diurnal budget allocator, warm.
    pub alloc: EwmaAllocator,
    /// The open-loop protocol's virtual battery (assumes every granted
    /// budget is fully spent).
    pub vbat: Battery,
    /// Harvest reported by the most recent observation (feeds the next
    /// allocation, exactly like the engine's `harvested_last_hour`).
    pub last_harvest: Energy,
    /// Hour-of-day of the most recent observation; [`NO_HOUR`] before
    /// the first.
    pub last_hour: u32,
    /// Observations absorbed.
    pub observations: u64,
    /// Running sum of harvested energy, joules.
    pub harvested_j: f64,
    /// Running sum of granted budgets, joules.
    pub budget_j: f64,
    /// Running sum of reported activity intensities.
    pub activity: f64,
    /// Newest observe sequence number applied for this user; `0` = none
    /// (client sequence numbers start at 1).
    pub last_seq: u64,
    /// Budget granted at `last_seq`, replayed verbatim when a retrying
    /// client resends the same sequence number.
    pub last_budget: f64,
    /// Cohort index into the shared frontier tables.
    pub cohort: u32,
}

/// One served allocation decision plus the budget it was decided at.
#[derive(Debug, Clone, Copy)]
pub struct DecideOutcome {
    /// The budget the cohort frontier was evaluated at, joules.
    pub budget_j: f64,
    /// The plan: aggregates plus the (at most two) point shares.
    pub decision: Decision,
}

/// A stripe of the population: users `u` with `u % shards == index`.
#[derive(Debug)]
struct Shard {
    users: Vec<UserState>,
}

/// The resident population, sharded for concurrent serving.
#[derive(Debug)]
pub struct FleetState {
    shards: Vec<OrderedLock<Shard>>,
    /// Cohort-shared frontier tables, indexed by `UserState::cohort`.
    tables: Vec<FrontierTable>,
    users: u32,
    /// FNV-1a over the fleet configuration (user count, per-user alpha /
    /// point bits / source label); snapshots embed it so a checkpoint
    /// can only restore into a state built from the same fleet.
    fingerprint: u64,
    /// The EWMA smoothing factor every resident allocator runs
    /// (checkpointed so restore can rebuild allocators exactly).
    ewma_alpha: f64,
}

impl FleetState {
    /// Builds resident state for every user of `fleet`, deduplicating
    /// `(points, alpha)` cohorts into shared frontier tables and striping
    /// users over `shards` mutexes.
    ///
    /// # Errors
    ///
    /// Propagates [`reap_sim::SimError`] from user-parameter derivation
    /// or frontier construction (cannot happen for fleets accepted by
    /// [`Fleet::builder`]). A `shards` of zero is clamped up to one.
    pub fn new(fleet: &Fleet, shards: usize) -> Result<FleetState, reap_sim::SimError> {
        let users = fleet.users();
        let shards = shards.min(users as usize).max(1);

        let mut fp = Fnv::new();
        fp.write_u64(u64::from(users));

        // Cohort dedup: exact bit patterns of (alpha, per-point
        // id/accuracy/power) — the same key the SoA simulation core uses,
        // so a fleet reports the same cohort count served or simulated.
        let mut cohort_keys: Vec<Vec<u64>> = Vec::new();
        let mut tables: Vec<FrontierTable> = Vec::new();
        let mut shard_users: Vec<Vec<UserState>> = vec![Vec::new(); shards];

        for u in 0..users {
            let params = fleet.user_params(u)?;
            let mut key = Vec::with_capacity(1 + 3 * params.points.len());
            key.push(params.alpha.to_bits());
            for p in &params.points {
                key.push(u64::from(p.id()));
                key.push(p.accuracy().to_bits());
                key.push(p.power().watts().to_bits());
            }
            for &w in &key {
                fp.write_u64(w);
            }
            fp.write_bytes(fleet.user_source(u).label().as_bytes());

            let cohort = match cohort_keys.iter().position(|k| *k == key) {
                Some(idx) => idx as u32,
                None => {
                    let problem = ReapProblem::builder()
                        .alpha(params.alpha)
                        .off_power(Power::from_microwatts(OFF_POWER_UW))
                        .points(params.points.clone())
                        .build()?;
                    cohort_keys.push(key);
                    tables.push(problem.frontier().table());
                    (tables.len() - 1) as u32
                }
            };

            // reap-lint: allow(panic:index) -- `u % shards` is < shards == shard_users.len()
            shard_users[u as usize % shards].push(UserState {
                alloc: EwmaAllocator::new(),
                vbat: Battery::small_wearable(),
                last_harvest: Energy::ZERO,
                last_hour: NO_HOUR,
                observations: 0,
                harvested_j: 0.0,
                budget_j: 0.0,
                activity: 0.0,
                last_seq: 0,
                last_budget: 0.0,
                cohort,
            });
        }

        Ok(FleetState {
            shards: shard_users
                .into_iter()
                .enumerate()
                .map(|(i, users)| OrderedLock::new("shard", rank::SHARD, i as u32, Shard { users }))
                .collect(),
            tables,
            users,
            fingerprint: fp.finish(),
            ewma_alpha: EwmaAllocator::new().diurnal().alpha(),
        })
    }

    /// Resident users.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Distinct `(points, alpha)` cohorts sharing a frontier table.
    #[must_use]
    pub fn cohorts(&self) -> u32 {
        self.tables.len() as u32
    }

    /// The fleet-configuration fingerprint embedded in snapshots.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The resident allocators' EWMA smoothing factor.
    #[must_use]
    pub(crate) fn ewma_alpha(&self) -> f64 {
        self.ewma_alpha
    }

    /// Runs `f` on user `user`'s state (under its shard lock) together
    /// with the cohort frontier tables.
    fn with_user<T>(
        &self,
        user: u32,
        f: impl FnOnce(&mut UserState, &[FrontierTable]) -> T,
    ) -> Result<T, ProtocolError> {
        if user >= self.users {
            return Err(ProtocolError::new(
                ErrorCode::UnknownUser,
                format!("user {user} >= fleet size {}", self.users),
            ));
        }
        let shards = self.shards.len();
        // reap-lint: acquires(shard)
        // reap-lint: allow(panic:index) -- `user % shards` is < shards == self.shards.len()
        let mut shard = self.shards[user as usize % shards].lock();
        // reap-lint: allow(panic:index) -- striping invariant: user < self.users puts `user / shards` in this shard
        let state = &mut shard.users[user as usize / shards];
        Ok(f(state, &self.tables))
    }

    /// Absorbs one completed hour of `user`'s life — one open-loop
    /// protocol step, arithmetic-identical to the simulation engine's:
    /// the allocator proposes from the *previous* hour's harvest, the
    /// grant is clamped to what the virtual supply (battery plus this
    /// hour's harvest) can deliver but never below the reachable
    /// monitoring floor, then the virtual battery banks the harvest and
    /// spends the whole budget. Returns the granted budget in joules.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownUser`] for an out-of-range user;
    /// [`ErrorCode::BadRequest`] for a non-finite or negative harvest or
    /// a non-finite activity.
    pub fn observe(
        &self,
        user: u32,
        hour: u32,
        harvest_j: f64,
        activity: Option<f64>,
    ) -> Result<f64, ProtocolError> {
        self.observe_seq(user, hour, harvest_j, activity, None)
    }

    /// [`FleetState::observe`] with an optional client sequence number
    /// making the request idempotent: resending the user's newest applied
    /// sequence number replays the cached budget without touching state
    /// (the retrying client's at-most-once guarantee), while an older
    /// number is refused as stale. Sequence numbers start at 1 and must
    /// be strictly increasing per user.
    ///
    /// # Errors
    ///
    /// Everything [`FleetState::observe`] rejects, plus
    /// [`ErrorCode::BadRequest`] for `seq == 0` or a stale (already
    /// superseded) sequence number.
    pub fn observe_seq(
        &self,
        user: u32,
        hour: u32,
        harvest_j: f64,
        activity: Option<f64>,
        seq: Option<u64>,
    ) -> Result<f64, ProtocolError> {
        if !harvest_j.is_finite() || harvest_j < 0.0 {
            return Err(ProtocolError::new(
                ErrorCode::BadRequest,
                format!("harvest_j {harvest_j} must be finite and >= 0"),
            ));
        }
        if let Some(a) = activity {
            if !a.is_finite() {
                return Err(ProtocolError::new(
                    ErrorCode::BadRequest,
                    format!("activity {a} must be finite"),
                ));
            }
        }
        if seq == Some(0) {
            return Err(ProtocolError::new(
                ErrorCode::BadRequest,
                "seq 0 is reserved (sequence numbers start at 1)",
            ));
        }
        let hour = hour % 24;
        self.with_user(user, |state, tables| {
            if let Some(s) = seq {
                if s == state.last_seq {
                    // Duplicate delivery of the newest observe: replay
                    // the cached grant, apply nothing.
                    return Ok(state.last_budget);
                }
                if s < state.last_seq {
                    return Err(ProtocolError::new(
                        ErrorCode::BadRequest,
                        format!("stale seq {s} (newest applied is {})", state.last_seq),
                    ));
                }
            }
            // reap-lint: allow(panic:index) -- cohort indices are assigned from tables.len() at build
            let floor = Energy::from_joules(tables[state.cohort as usize].min_budget_j());
            let harvested = Energy::from_joules(harvest_j);
            let proposed = state.alloc.allocate(hour, state.last_harvest, &state.vbat);
            let supply = state.vbat.deliverable() + harvested;
            let budget = proposed.min(supply).max(floor.min(supply));
            state.vbat.charge(harvested);
            state.vbat.discharge(budget);
            state.last_harvest = harvested;
            state.last_hour = hour;
            state.observations += 1;
            state.harvested_j += harvest_j;
            state.budget_j += budget.joules();
            state.activity += activity.unwrap_or(0.0);
            if let Some(s) = seq {
                state.last_seq = s;
                state.last_budget = budget.joules();
            }
            Ok(budget.joules())
        })?
    }

    /// Serves an allocation decision for `user`'s upcoming hour from the
    /// cohort's cached frontier. Read-only and idempotent: the proposal
    /// is computed on a throwaway clone of the allocator (exactly what
    /// the next [`FleetState::observe`] will propose), clamped to what
    /// the battery alone can deliver — the upcoming hour's harvest is
    /// not yet known at decide time — and resolved with one
    /// [`FrontierTable::decide`] walk.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownUser`] for an out-of-range user.
    pub fn decide(&self, user: u32) -> Result<DecideOutcome, ProtocolError> {
        self.with_user(user, |state, tables| {
            // reap-lint: allow(panic:index) -- cohort indices are assigned from tables.len() at build
            let table = &tables[state.cohort as usize];
            let floor = Energy::from_joules(table.min_budget_j());
            let next_hour = if state.last_hour == NO_HOUR {
                0
            } else {
                (state.last_hour + 1) % 24
            };
            let proposed = state
                .alloc
                .clone()
                .allocate(next_hour, state.last_harvest, &state.vbat);
            let supply = state.vbat.deliverable();
            let budget = proposed.min(supply).max(floor.min(supply));
            DecideOutcome {
                budget_j: budget.joules(),
                decision: table.decide(budget.joules()),
            }
        })
    }

    /// Computes the deterministic fleet statistics: running sums
    /// accumulated in user-index order (so the result is a pure function
    /// of the observation multiset per user, independent of request
    /// interleaving) plus the FNV-1a digest of every user's serialized
    /// resident state — the value the checkpoint bit-identity tests
    /// compare across restore.
    #[must_use]
    pub fn fleet_stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            users: self.users,
            cohorts: self.cohorts(),
            observations: 0,
            harvested_j: 0.0,
            budget_j: 0.0,
            battery_j: 0.0,
            activity: 0.0,
            state_digest: 0,
        };
        let mut digest = Fnv::new();
        self.for_each_user_in_order(|state| {
            stats.observations += state.observations;
            stats.harvested_j += state.harvested_j;
            stats.budget_j += state.budget_j;
            stats.battery_j += state.vbat.level().joules();
            stats.activity += state.activity;
            digest.write_bytes(&crate::snapshot::user_record(state));
        });
        stats.state_digest = digest.finish();
        stats
    }

    /// Locks every shard — in ascending index order, the shard class's
    /// `ordered` discipline — and visits users in index order. The shard
    /// guards are all held for the duration, so the walk is an atomic
    /// fleet-wide read with respect to concurrent observes.
    pub(crate) fn for_each_user_in_order(&self, mut f: impl FnMut(&UserState)) {
        // reap-lint: acquires(shard, ordered)
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let shards = guards.len();
        for u in 0..self.users as usize {
            // reap-lint: allow(panic:index) -- `u % shards` < guards.len(); striping puts `u / shards` in-bounds
            f(&guards[u % shards].users[u / shards]);
        }
    }

    /// Locks every shard (ascending index order) and visits users mutably
    /// in index order — the restore path's atomic fleet-wide write.
    pub(crate) fn for_each_user_in_order_mut(&self, mut f: impl FnMut(&mut UserState)) {
        // reap-lint: acquires(shard, ordered)
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let shards = guards.len();
        for u in 0..self.users as usize {
            // reap-lint: allow(panic:index) -- `u % shards` < guards.len(); striping puts `u / shards` in-bounds
            f(&mut guards[u % shards].users[u / shards]);
        }
    }
}

/// Incremental FNV-1a 64 — the same hash the bench fingerprints use;
/// tiny, dependency-free, and stable across platforms.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_units::Power as P;

    pub(crate) fn tiny_fleet(users: u32) -> Fleet {
        Fleet::builder(vec![
            reap_core::OperatingPoint::new(1, "DP1", 0.94, P::from_milliwatts(2.76)).unwrap(),
            reap_core::OperatingPoint::new(5, "DP5", 0.76, P::from_milliwatts(1.20)).unwrap(),
        ])
        .users(users)
        .days(1)
        .seed(7)
        .build()
        .unwrap()
    }

    #[test]
    fn builds_with_soa_matching_cohorts() {
        let fleet = tiny_fleet(10);
        let state = FleetState::new(&fleet, 4).unwrap();
        assert_eq!(state.users(), 10);
        // Distinct per-user alphas → every user its own cohort, exactly
        // what a fleet run reports.
        let report = fleet.run().unwrap();
        assert_eq!(state.cohorts(), report.cohorts());
    }

    #[test]
    fn observe_matches_the_engine_budget_stream() {
        // Streaming a user's exact simulated hours through the resident
        // state must grant the exact budgets the simulation granted —
        // cross-checked here via the user's own harvest trace.
        let fleet = tiny_fleet(4);
        let state = FleetState::new(&fleet, 2).unwrap();
        for user in 0..4u32 {
            let scenario = fleet.user_scenario(user).unwrap();
            let report = scenario.run(reap_sim::Policy::Reap).unwrap();
            for (i, hour) in report.hours().iter().enumerate() {
                let granted = state
                    .observe(user, i as u32, hour.harvested.joules(), None)
                    .unwrap();
                assert_eq!(
                    granted.to_bits(),
                    hour.budget.joules().to_bits(),
                    "user {user} hour {i}: resident {granted} != engine {}",
                    hour.budget.joules()
                );
            }
        }
    }

    #[test]
    fn decide_is_idempotent_and_on_frontier() {
        let fleet = tiny_fleet(3);
        let state = FleetState::new(&fleet, 1).unwrap();
        for h in 0..30u32 {
            let _ = state.observe(1, h, if h % 24 < 12 { 2.0 } else { 0.0 }, None);
        }
        let a = state.decide(1).unwrap();
        let b = state.decide(1).unwrap();
        assert_eq!(a.budget_j.to_bits(), b.budget_j.to_bits());
        assert_eq!(a.decision, b.decision);
        // The decision's aggregates come straight from the frontier.
        assert!(a.decision.eval.accuracy >= 0.0 && a.decision.eval.accuracy <= 1.0);
        let total: f64 =
            a.decision.shares().iter().map(|s| s.seconds).sum::<f64>() + a.decision.off_s;
        assert!((total - 3600.0).abs() < 1e-6, "shares + off = {total}");
        // Deciding did not mutate state: stats digest unchanged.
        let before = state.fleet_stats();
        let _ = state.decide(1).unwrap();
        assert_eq!(state.fleet_stats(), before);
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let fleet = tiny_fleet(2);
        let state = FleetState::new(&fleet, 1).unwrap();
        assert_eq!(
            state.observe(2, 0, 1.0, None).unwrap_err().code,
            ErrorCode::UnknownUser
        );
        assert_eq!(state.decide(9).unwrap_err().code, ErrorCode::UnknownUser);
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert_eq!(
                state.observe(0, 0, bad, None).unwrap_err().code,
                ErrorCode::BadRequest
            );
        }
        assert_eq!(
            state.observe(0, 0, 1.0, Some(f64::NAN)).unwrap_err().code,
            ErrorCode::BadRequest
        );
        // Nothing was absorbed by the rejected requests.
        assert_eq!(state.fleet_stats().observations, 0);
    }

    #[test]
    fn seq_observes_are_idempotent() {
        let fleet = tiny_fleet(2);
        let state = FleetState::new(&fleet, 1).unwrap();
        let a = state.observe_seq(0, 0, 1.5, Some(0.2), Some(1)).unwrap();
        let stats_after = state.fleet_stats();
        // Duplicate delivery: same grant, zero state change.
        for _ in 0..3 {
            let dup = state.observe_seq(0, 0, 1.5, Some(0.2), Some(1)).unwrap();
            assert_eq!(dup.to_bits(), a.to_bits());
            assert_eq!(state.fleet_stats(), stats_after);
        }
        // The next sequence number applies normally.
        let b = state.observe_seq(0, 1, 0.8, None, Some(2)).unwrap();
        assert_ne!(state.fleet_stats(), stats_after);
        let dup = state.observe_seq(0, 1, 0.8, None, Some(2)).unwrap();
        assert_eq!(dup.to_bits(), b.to_bits());
        // Stale and reserved sequence numbers are refused.
        assert_eq!(
            state
                .observe_seq(0, 2, 0.1, None, Some(1))
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            state
                .observe_seq(0, 2, 0.1, None, Some(0))
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        // Per-user isolation: user 1 has its own sequence space.
        state.observe_seq(1, 0, 0.4, None, Some(7)).unwrap();
        // Seq-less observes interleave freely (and never cache).
        let plain = state.observe(0, 2, 0.5, None).unwrap();
        assert!(plain.is_finite());
    }

    #[test]
    fn stats_are_shard_count_independent() {
        let fleet = tiny_fleet(9);
        let mk = |shards| {
            let state = FleetState::new(&fleet, shards).unwrap();
            for u in 0..9u32 {
                for h in 0..12u32 {
                    let _ = state.observe(u, h, f64::from(u + h), Some(0.25));
                }
            }
            state.fleet_stats()
        };
        let one = mk(1);
        for shards in [2usize, 3, 8, 64] {
            assert_eq!(mk(shards), one, "{shards} shards diverged");
        }
    }
}
