//! Lock-free request-path metrics: atomic counters plus fixed-bucket
//! latency histograms.
//!
//! Every handled request bumps a relaxed atomic; latencies land in a
//! power-of-two-bucket histogram (1 µs granularity at the bottom, ~134 s
//! at the top), so recording costs two atomic adds and quantiles are a
//! bucket walk — no locks, no allocation, no per-request timestamps kept.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::protocol::ServerStats;

/// Histogram buckets: bucket `k` holds samples in `[2^k, 2^(k+1))` µs
/// (bucket 0 also takes sub-microsecond samples).
const BUCKETS: usize = 28;

/// A fixed-bucket latency histogram over microseconds.
///
/// Quantile estimates interpolate linearly inside the winning bucket, so
/// resolution is ~a factor of two at worst — plenty to tell a 100 µs
/// request path from a 1 ms one, which is what the serve bench gates.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        // reap-lint: allow(panic:index) -- bucket is clamped to BUCKETS - 1 on the line above
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges another histogram's counts into this one (used by the
    /// bench's per-thread client histograms).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated quantile `q` in `[0, 1]`, in microseconds; `0` for an
    /// empty histogram. Linear interpolation within the winning bucket.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample (1-based), at least 1.
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = (1u64 << k) as f64;
                let hi = (1u64 << (k + 1)) as f64;
                let within = (rank - seen) as f64 / n as f64;
                return lo + (hi - lo) * within;
            }
            seen += n;
        }
        // Unreachable (total > 0 means some bucket crosses the rank),
        // but fall back to the top edge rather than panic.
        (1u64 << BUCKETS) as f64
    }
}

/// Request-path counters and latency histograms for one server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests handled (post-handshake).
    pub requests: AtomicU64,
    /// Error frames sent.
    pub errors: AtomicU64,
    /// `observe` requests handled.
    pub observes: AtomicU64,
    /// `decide` requests handled.
    pub decides: AtomicU64,
    /// `checkpoint` requests handled.
    pub checkpoints: AtomicU64,
    /// `restore` requests handled.
    pub restores: AtomicU64,
    /// Connections evicted for stalling mid-frame past the frame
    /// deadline.
    pub evicted: AtomicU64,
    /// `observe` requests shed under overload.
    pub shed: AtomicU64,
    /// Server-side observe handling latency.
    pub observe_latency: LatencyHistogram,
    /// Server-side decide handling latency.
    pub decide_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Snapshots the counters into the wire representation.
    #[must_use]
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            observes: self.observes.load(Ordering::Relaxed),
            decides: self.decides.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            observe_p50_us: self.observe_latency.quantile_us(0.50),
            observe_p99_us: self.observe_latency.quantile_us(0.99),
            decide_p50_us: self.decide_latency.quantile_us(0.50),
            decide_p99_us: self.decide_latency.quantile_us(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.5), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        // 99 fast samples at ~10 µs, one slow at ~10 ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(10));
        assert_eq!(h.len(), 100);
        let p50 = h.quantile_us(0.50);
        assert!((8.0..16.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 < 20.0, "p99 = {p99} should still be in the fast bucket");
        let p100 = h.quantile_us(1.0);
        assert!(
            (8192.0..=16384.0).contains(&p100),
            "max = {p100} should land in the 10 ms bucket"
        );
    }

    #[test]
    fn sub_microsecond_and_huge_samples_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.len(), 2);
        assert!(h.quantile_us(0.0) >= 1.0);
        assert!(h.quantile_us(1.0).is_finite());
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.quantile_us(1.0) > 256.0);
    }

    #[test]
    fn metrics_snapshot_copies_counters() {
        let m = ServerMetrics::new();
        m.connections.fetch_add(2, Ordering::Relaxed);
        m.requests.fetch_add(7, Ordering::Relaxed);
        m.decides.fetch_add(3, Ordering::Relaxed);
        m.decide_latency.record(Duration::from_micros(30));
        let s = m.server_stats();
        assert_eq!((s.connections, s.requests, s.decides), (2, 7, 3));
        assert!(s.decide_p99_us >= 16.0);
    }
}
