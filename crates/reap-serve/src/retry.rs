//! A self-healing client: reconnects, backoff, and bounded retries for
//! idempotent requests.
//!
//! [`RetryClient`] wraps [`Client`] with the full recovery loop a real
//! deployment needs against a flaky network or a restarting daemon:
//!
//! - **Per-request deadlines** — every logical request carries a wall
//!   clock budget ([`RetryConfig::request_deadline`]) covering all
//!   attempts *including* reconnects; socket reads and writes run under
//!   a matching I/O timeout so a dead peer can't block forever.
//! - **Reconnect with exponential backoff + decorrelated jitter** — the
//!   AWS-style schedule (`sleep = clamp(base, rand(base, prev * 3),
//!   max)`) that avoids thundering-herd lockstep when a fleet of clients
//!   chases one restarting server. Jitter is seeded and deterministic
//!   ([`RetryConfig::seed`]), so chaos tests replay exactly.
//! - **Retries only where idempotence holds** — `Decide` and `Stats`
//!   are read-only; `Observe` is made replay-safe by stamping each
//!   logical observe with a sequence number ([`RetryClient::observe`])
//!   that the server deduplicates, so an observe whose response was lost
//!   mid-frame can be resent without double-counting energy. Retried
//!   attempts reuse the *same* seq. Non-idempotent requests
//!   (`Checkpoint`, `Restore`, `Shutdown`) go through
//!   [`RetryClient::request_once`] with no retry.
//! - **Typed exhaustion errors** — callers can tell "the server said no"
//!   ([`RetryError::Server`]) from "I gave up retrying"
//!   ([`RetryError::Exhausted`] / [`RetryError::Deadline`]).
//!
//! Server-sent [`ErrorCode::Overloaded`] (shed observe) and
//! [`ErrorCode::Evicted`] frames are treated as retryable — back off and
//! try again — while every other typed error is terminal.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::fault::{splitmix64, IoLayer, NoFaults};
use crate::protocol::{ErrorCode, FleetStats, ProtocolError, Request, Response, ServerStats};

/// Tuning for a [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Maximum attempts per logical request (first try included);
    /// `0` is treated as 1.
    pub max_attempts: u32,
    /// Backoff floor (first retry waits at least this long).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget per logical request, spanning every attempt,
    /// backoff sleep, and reconnect. Also used as the socket I/O
    /// timeout.
    pub request_deadline: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            request_deadline: Duration::from_secs(30),
            seed: 0x5EED_CAFE,
        }
    }
}

/// Why a [`RetryClient`] request ultimately failed.
#[derive(Debug)]
pub enum RetryError {
    /// Every allowed attempt failed with a retryable error; `last` is
    /// the final failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last retryable failure, stringified.
        last: String,
    },
    /// The per-request deadline elapsed before any attempt succeeded.
    Deadline {
        /// Time spent before giving up.
        elapsed: Duration,
        /// The last retryable failure, stringified.
        last: String,
    },
    /// The server answered with a terminal (non-retryable) typed error.
    Server(ProtocolError),
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            RetryError::Deadline { elapsed, last } => {
                write!(
                    f,
                    "request deadline elapsed after {elapsed:?}; last error: {last}"
                )
            }
            RetryError::Server(e) => write!(f, "server error ({}): {}", e.code, e.message),
        }
    }
}

impl std::error::Error for RetryError {}

impl From<ProtocolError> for RetryError {
    fn from(e: ProtocolError) -> RetryError {
        RetryError::Server(e)
    }
}

/// A [`Client`] wrapper that heals itself across connection resets,
/// server restarts, evictions, and overload sheds. See the module docs
/// for the retry policy.
pub struct RetryClient<L: IoLayer = NoFaults> {
    addr: SocketAddr,
    layer: L,
    config: RetryConfig,
    client: Option<Client>,
    /// Decorrelated-jitter state: the previous sleep in milliseconds.
    prev_sleep_ms: u64,
    rng: u64,
    next_seq: u64,
    users: u32,
    ever_connected: bool,
    retries: u64,
    reconnects: u64,
}

impl RetryClient<NoFaults> {
    /// Connects (retrying within the deadline) and performs the
    /// handshake.
    ///
    /// # Errors
    ///
    /// [`RetryError::Deadline`] / [`RetryError::Exhausted`] if no
    /// connection could be established in time.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: RetryConfig,
    ) -> Result<RetryClient, RetryError> {
        RetryClient::connect_with_layer(addr, config, NoFaults)
    }
}

impl<L: IoLayer> RetryClient<L> {
    /// [`RetryClient::connect`] through an explicit [`IoLayer`] so chaos
    /// tests inject faults on the client side of the wire too.
    ///
    /// # Errors
    ///
    /// Address resolution failure (reported as exhaustion with zero
    /// attempts), or retry exhaustion / deadline while connecting.
    pub fn connect_with_layer(
        addr: impl ToSocketAddrs,
        config: RetryConfig,
        layer: L,
    ) -> Result<RetryClient<L>, RetryError> {
        let addr = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .ok_or_else(|| RetryError::Exhausted {
                attempts: 0,
                last: "address did not resolve".to_string(),
            })?;
        let mut rc = RetryClient {
            addr,
            layer,
            prev_sleep_ms: config.base_backoff.as_millis() as u64,
            rng: splitmix64(config.seed),
            config,
            client: None,
            next_seq: 1,
            users: 0,
            ever_connected: false,
            retries: 0,
            reconnects: 0,
        };
        let deadline = Instant::now() + rc.config.request_deadline;
        loop {
            match rc.ensure_connected() {
                Ok(_) => return Ok(rc),
                Err(e) => {
                    let last = format!("connect: {e}");
                    rc.backoff_or_deadline(deadline, &last)?;
                }
            }
        }
    }

    /// Resident users from the most recent welcome frame.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Attempts beyond the first, summed over all requests so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful re-handshakes after losing a connection.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Points the client at a new address (a restarted or failed-over
    /// server), dropping any live session. Sequence numbering continues
    /// across the move, so observe replay-safety spans server restarts.
    ///
    /// # Errors
    ///
    /// Address resolution failure.
    pub fn reconnect_to(&mut self, addr: impl ToSocketAddrs) -> Result<(), RetryError> {
        self.addr = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .ok_or_else(|| RetryError::Exhausted {
                attempts: 0,
                last: "address did not resolve".to_string(),
            })?;
        self.client = None;
        Ok(())
    }

    fn ensure_connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let client = Client::connect_with_layer(self.addr, &self.layer)?;
            client.set_io_timeout(Some(self.config.request_deadline))?;
            self.users = client.users();
            if self.ever_connected {
                // Re-establishing after a lost session; the first-ever
                // connect is not a reconnect.
                self.reconnects += 1;
            }
            self.ever_connected = true;
            self.client = Some(client);
        }
        match self.client.as_mut() {
            Some(session) => Ok(session),
            // Unreachable (the Option is Some on every path above), but
            // a typed error keeps the serving path panic-free.
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "session vanished during connect",
            )),
        }
    }

    /// Decorrelated jitter: `sleep = clamp(base, rand(base, prev * 3), max)`.
    fn next_backoff(&mut self) -> Duration {
        let base = self.config.base_backoff.as_millis() as u64;
        let max = self.config.max_backoff.as_millis() as u64;
        let hi = self.prev_sleep_ms.saturating_mul(3).max(base + 1);
        self.rng = splitmix64(self.rng);
        let ms = (base + self.rng % (hi - base)).min(max.max(base));
        self.prev_sleep_ms = ms;
        Duration::from_millis(ms)
    }

    /// Sleeps one backoff step, or fails if it would cross `deadline`.
    fn backoff_or_deadline(&mut self, deadline: Instant, last: &str) -> Result<(), RetryError> {
        let sleep = self.next_backoff();
        let now = Instant::now();
        if now + sleep >= deadline {
            return Err(RetryError::Deadline {
                elapsed: self.config.request_deadline,
                last: last.to_string(),
            });
        }
        std::thread::sleep(sleep);
        Ok(())
    }

    /// Sends an *idempotent* request, retrying across I/O failures,
    /// reconnects, overload sheds, and evictions until it gets a
    /// non-error (or terminal-error) response.
    ///
    /// The caller is responsible for idempotence: `Decide`/`Stats` are
    /// safe as-is; observes must carry a seq (use
    /// [`RetryClient::observe`], which stamps one).
    ///
    /// # Errors
    ///
    /// [`RetryError::Server`] for terminal typed errors,
    /// [`RetryError::Exhausted`] / [`RetryError::Deadline`] when retries
    /// run out.
    pub fn request_idempotent(&mut self, request: &Request) -> Result<Response, RetryError> {
        let deadline = Instant::now() + self.config.request_deadline;
        let max_attempts = self.config.max_attempts.max(1);
        let mut last = "never attempted".to_string();
        let mut attempts = 0u32;
        while attempts < max_attempts {
            attempts += 1;
            if attempts > 1 {
                self.retries += 1;
            }
            let outcome = match self.ensure_connected() {
                Ok(session) => session.request(request),
                Err(e) => {
                    last = format!("connect: {e}");
                    self.backoff_or_deadline(deadline, &last)?;
                    continue;
                }
            };
            match outcome {
                Ok(Response::Error { code, message })
                    if matches!(code, ErrorCode::Overloaded | ErrorCode::Evicted) =>
                {
                    // Retryable server push-back. Eviction also killed
                    // the connection server-side; drop ours to match.
                    if code == ErrorCode::Evicted {
                        self.client = None;
                    }
                    last = format!("server ({code}): {message}");
                    self.backoff_or_deadline(deadline, &last)?;
                }
                Ok(Response::Error { code, message }) => {
                    return Err(RetryError::Server(ProtocolError::new(code, message)));
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    // Any transport failure invalidates the session: the
                    // response for the in-flight frame may be lost, and
                    // only idempotent requests ride this path.
                    self.client = None;
                    last = format!("io: {e}");
                    self.backoff_or_deadline(deadline, &last)?;
                }
            }
        }
        Err(RetryError::Exhausted {
            attempts: max_attempts,
            last,
        })
    }

    /// One observe, stamped with a fresh sequence number and retried
    /// until the server has durably applied it exactly once. Returns the
    /// resulting budget in joules.
    ///
    /// # Errors
    ///
    /// Same as [`RetryClient::request_idempotent`].
    pub fn observe(
        &mut self,
        user: u32,
        hour: u32,
        harvest_j: f64,
        activity: Option<f64>,
    ) -> Result<f64, RetryError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = Request::Observe {
            user,
            hour,
            harvest_j,
            activity,
            seq: Some(seq),
        };
        match self.request_idempotent(&request)? {
            Response::Observed { budget_j, .. } => Ok(budget_j),
            other => Err(RetryError::Server(ProtocolError::new(
                ErrorCode::BadRequest,
                format!("expected observed frame, got {other:?}"),
            ))),
        }
    }

    /// One decision, retried; returns the full decision frame.
    ///
    /// # Errors
    ///
    /// Same as [`RetryClient::request_idempotent`].
    pub fn decide(&mut self, user: u32) -> Result<Response, RetryError> {
        self.request_idempotent(&Request::Decide { user })
    }

    /// Fleet + server stats, retried.
    ///
    /// # Errors
    ///
    /// Same as [`RetryClient::request_idempotent`].
    pub fn stats(&mut self) -> Result<(FleetStats, ServerStats), RetryError> {
        match self.request_idempotent(&Request::Stats)? {
            Response::Stats { fleet, server } => Ok((fleet, server)),
            other => Err(RetryError::Server(ProtocolError::new(
                ErrorCode::BadRequest,
                format!("expected stats frame, got {other:?}"),
            ))),
        }
    }

    /// Sends a request exactly once, with no retry — the path for
    /// non-idempotent requests (`Checkpoint`, `Restore`, `Shutdown`).
    /// Connects first if no session is live (connection establishment
    /// alone is safe to perform eagerly).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, stringified into
    /// [`RetryError::Exhausted`] with one attempt, or a terminal
    /// [`RetryError::Server`].
    pub fn request_once(&mut self, request: &Request) -> Result<Response, RetryError> {
        let outcome = match self.ensure_connected() {
            Ok(session) => session.request(request),
            Err(e) => {
                return Err(RetryError::Exhausted {
                    attempts: 1,
                    last: format!("connect: {e}"),
                });
            }
        };
        match outcome {
            Ok(Response::Error { code, message }) => {
                Err(RetryError::Server(ProtocolError::new(code, message)))
            }
            Ok(response) => Ok(response),
            Err(e) => {
                self.client = None;
                Err(RetryError::Exhausted {
                    attempts: 1,
                    last: format!("io: {e}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let cfg = RetryConfig {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            seed: 7,
            ..RetryConfig::default()
        };
        let mk = || RetryClient::<NoFaults> {
            addr: "127.0.0.1:1".parse().expect("literal addr"),
            layer: NoFaults,
            prev_sleep_ms: cfg.base_backoff.as_millis() as u64,
            rng: splitmix64(cfg.seed),
            config: cfg.clone(),
            client: None,
            next_seq: 1,
            users: 0,
            ever_connected: false,
            retries: 0,
            reconnects: 0,
        };
        let mut a = mk();
        let mut b = mk();
        let seq_a: Vec<Duration> = (0..16).map(|_| a.next_backoff()).collect();
        let seq_b: Vec<Duration> = (0..16).map(|_| b.next_backoff()).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same schedule");
        for d in &seq_a {
            assert!(*d >= Duration::from_millis(10), "below base: {d:?}");
            assert!(*d <= Duration::from_millis(100), "above max: {d:?}");
        }
        // Jitter: the schedule should not be constant.
        assert!(
            seq_a.windows(2).any(|w| w[0] != w[1]),
            "schedule is flat: {seq_a:?}"
        );
        // Different seed, different schedule.
        let mut c = mk();
        c.rng = splitmix64(cfg.seed + 1);
        let seq_c: Vec<Duration> = (0..16).map(|_| c.next_backoff()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn connecting_to_a_dead_port_exhausts_with_a_typed_error() {
        // Port 1 on loopback refuses instantly; keep the deadline tiny.
        let cfg = RetryConfig {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            request_deadline: Duration::from_millis(80),
            seed: 3,
        };
        let err = match RetryClient::connect("127.0.0.1:1", cfg) {
            Ok(_) => panic!("nothing listens on port 1"),
            Err(e) => e,
        };
        match err {
            RetryError::Deadline { last, .. } | RetryError::Exhausted { last, .. } => {
                assert!(!last.is_empty());
            }
            RetryError::Server(e) => panic!("unexpected server error: {e:?}"),
        }
    }
}
