//! Deterministic, seeded fault injection for the serve path.
//!
//! A [`FaultPlan`] is a pure function of `(seed, operation count)`: every
//! read and write through a [`ChaosStream`] draws the next operation
//! number from an atomic counter, hashes it with the seed (splitmix64 —
//! the same generator the harvest perturbations use), and either passes
//! the call through untouched or injects one of a small set of faults:
//!
//! - **Delay** — the operation sleeps first (a stalled, slow-loris peer);
//! - **Short read** — at most one byte is returned, splitting frames at
//!   arbitrary byte boundaries;
//! - **Partial write** — half the buffer goes out, then the stream is
//!   poisoned (a mid-frame connection cut);
//! - **Injected error** — `ConnectionAborted` without any bytes moving;
//! - **Reset** — `ConnectionReset`, poisoning the stream.
//!
//! Poisoned streams fail every subsequent operation, exactly like a dead
//! socket. The same plan also carries the snapshot writer's crash-point
//! schedule ([`CrashPoint`]), so one seed describes a whole chaos run.
//!
//! The production path pays nothing for any of this: servers are generic
//! over [`IoLayer`] with the zero-sized [`NoFaults`] default whose
//! `wrap` is the identity function, so the unarmed build monomorphizes
//! to the raw `TcpStream`/`File` calls.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the crash-safe snapshot writer can be killed mid-checkpoint.
///
/// Each point names the state the filesystem is left in when the writer
/// "dies" there; the crash-point test kills the writer at every one and
/// proves ring recovery never sees a torn snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The temp file exists but is empty.
    TempCreated,
    /// Half the snapshot bytes are in the temp file.
    TempHalfWritten,
    /// All bytes are in the temp file, not yet fsynced.
    TempWritten,
    /// The temp file is fsynced but not yet renamed into place.
    TempSynced,
    /// The rename happened; the parent directory is not yet fsynced.
    Renamed,
}

impl CrashPoint {
    /// Every crash point, in writer order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::TempCreated,
        CrashPoint::TempHalfWritten,
        CrashPoint::TempWritten,
        CrashPoint::TempSynced,
        CrashPoint::Renamed,
    ];

    /// Whether a crash at this point leaves the *new* snapshot durable
    /// under its final name (only after the rename).
    #[must_use]
    pub fn new_snapshot_visible(self) -> bool {
        matches!(self, CrashPoint::Renamed)
    }
}

/// Fault rates for a [`FaultPlan`]. Every `*_every` field is a mean
/// period in operations: `0` disables the fault, `n` fires it on roughly
/// one in `n` operations (deterministically, from the seed). All rates
/// default to off, so `FaultConfig::default()` is a no-op plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Delay roughly one in this many operations…
    pub delay_every: u64,
    /// …by this many milliseconds.
    pub delay_ms: u64,
    /// Truncate roughly one in this many reads to a single byte.
    pub short_read_every: u64,
    /// Cut roughly one in this many writes mid-buffer (half goes out,
    /// then the stream is poisoned).
    pub partial_write_every: u64,
    /// Fail roughly one in this many operations with `ConnectionAborted`.
    pub error_every: u64,
    /// Reset roughly one in this many operations (`ConnectionReset`,
    /// stream poisoned).
    pub reset_every: u64,
    /// Kill the snapshot writer at this point (once armed, every
    /// checkpoint "crashes" there).
    pub crash_at: Option<CrashPoint>,
}

/// A seeded, deterministic schedule of I/O faults keyed by operation
/// count. Cheap to share: wrap it in an [`Arc`] and hand clones to every
/// stream (the operation counters are process-wide per plan, so two runs
/// with the same seed and the same operation interleaving inject the
/// same faults).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
    reads: AtomicU64,
    writes: AtomicU64,
    injected: AtomicU64,
}

/// What a single operation should do, as decided by the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Delay(u64),
    Short,
    Error,
    Reset,
}

/// splitmix64: the same tiny deterministic mixer the harvest-trace
/// perturbations use (also feeds the retry client's backoff jitter).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fires(h: u64, salt: u64, every: u64) -> bool {
    every != 0 && splitmix64(h ^ salt).is_multiple_of(every)
}

impl FaultPlan {
    /// Builds a plan from a seed and fault rates.
    #[must_use]
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            seed,
            cfg,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The seed the schedule derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Faults injected so far (all kinds).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the snapshot writer should die at `point`.
    #[must_use]
    pub fn crashes_at(&self, point: CrashPoint) -> bool {
        self.cfg.crash_at == Some(point)
    }

    fn pick(&self, tag: u64, n: u64, short_every: u64) -> Fault {
        let h = splitmix64(self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n);
        let c = &self.cfg;
        let fault = if fires(h, 0x01, c.reset_every) {
            Fault::Reset
        } else if fires(h, 0x02, c.error_every) {
            Fault::Error
        } else if fires(h, 0x03, short_every) {
            Fault::Short
        } else if fires(h, 0x04, c.delay_every) {
            Fault::Delay(c.delay_ms)
        } else {
            Fault::None
        };
        if fault != Fault::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    fn next_read_fault(&self) -> Fault {
        let n = self.reads.fetch_add(1, Ordering::Relaxed);
        self.pick(1, n, self.cfg.short_read_every)
    }

    fn next_write_fault(&self) -> Fault {
        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        self.pick(2, n, self.cfg.partial_write_every)
    }
}

/// The seam the server (and the chaos client) thread their I/O through.
///
/// [`NoFaults`] is the zero-sized production implementation: `wrap` is
/// the identity and `crash_at` is a constant `false`, so a
/// `Server<NoFaults>` monomorphizes to direct `TcpStream` calls. An
/// `Arc<FaultPlan>` implements the same trait by wrapping streams in
/// [`ChaosStream`].
pub trait IoLayer: Clone + Send + Sync + 'static {
    /// The stream type connections run over.
    type Stream: Read + Write + Send + 'static;

    /// Wraps one half of a connection.
    fn wrap(&self, stream: TcpStream) -> Self::Stream;

    /// Whether the snapshot writer should die at `point` (always `false`
    /// in production).
    fn crash_at(&self, point: CrashPoint) -> bool {
        let _ = point;
        false
    }
}

/// The production layer: no faults, no wrapper, no cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl IoLayer for NoFaults {
    type Stream = TcpStream;

    #[inline(always)]
    fn wrap(&self, stream: TcpStream) -> TcpStream {
        stream
    }
}

impl IoLayer for Arc<FaultPlan> {
    type Stream = ChaosStream<TcpStream>;

    fn wrap(&self, stream: TcpStream) -> ChaosStream<TcpStream> {
        ChaosStream::new(stream, Arc::clone(self))
    }

    fn crash_at(&self, point: CrashPoint) -> bool {
        self.crashes_at(point)
    }
}

/// A `Read + Write` wrapper that consults a [`FaultPlan`] before every
/// operation. Once a reset/abort/partial-write fault lands, the stream
/// is poisoned and every further operation fails `ConnectionReset`,
/// exactly like a dead socket.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    poisoned: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `plan`'s schedule.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> ChaosStream<S> {
        ChaosStream {
            inner,
            plan,
            poisoned: false,
        }
    }

    fn dead() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: stream poisoned")
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.poisoned {
            return Err(Self::dead());
        }
        match self.plan.next_read_fault() {
            Fault::None => self.inner.read(buf),
            Fault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.read(buf)
            }
            Fault::Short => {
                let n = buf.len().min(1);
                // reap-lint: allow(panic:index) -- n = len.min(1) <= len
                self.inner.read(&mut buf[..n])
            }
            Fault::Error => {
                self.poisoned = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "chaos: injected read error",
                ))
            }
            Fault::Reset => {
                self.poisoned = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected read reset",
                ))
            }
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.poisoned {
            return Err(Self::dead());
        }
        match self.plan.next_write_fault() {
            Fault::None => self.inner.write(buf),
            Fault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write(buf)
            }
            Fault::Short => {
                // Mid-frame cut: half the buffer escapes, then the
                // stream dies. The peer sees a torn frame and an EOF/RST.
                let n = (buf.len() / 2).max(1).min(buf.len());
                // reap-lint: allow(panic:index) -- n is clamped to buf.len() on the line above
                let written = self.inner.write(&buf[..n]);
                let _ = self.inner.flush();
                self.poisoned = true;
                written
            }
            Fault::Error => {
                self.poisoned = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "chaos: injected write error",
                ))
            }
            Fault::Reset => {
                self.poisoned = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected write reset",
                ))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(Self::dead());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory transport: reads pull from `input`, writes append to
    /// `output`.
    struct Mem {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Mem {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Mem {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn mem(input: &[u8]) -> Mem {
        Mem {
            input: std::io::Cursor::new(input.to_vec()),
            output: Vec::new(),
        }
    }

    #[test]
    fn unarmed_plan_is_passthrough() {
        let plan = Arc::new(FaultPlan::new(7, FaultConfig::default()));
        let mut s = ChaosStream::new(mem(b"hello"), Arc::clone(&plan));
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        s.write_all(b"world").unwrap();
        assert_eq!(s.inner.output, b"world");
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            short_read_every: 3,
            reset_every: 7,
            error_every: 5,
            delay_every: 0,
            ..FaultConfig::default()
        };
        let trace = |seed: u64| -> Vec<Fault> {
            let plan = FaultPlan::new(seed, cfg);
            (0..64).map(|_| plan.next_read_fault()).collect()
        };
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43), "different seeds, same schedule");
        // The armed plan actually injects something in 64 draws.
        assert!(trace(42).iter().any(|f| *f != Fault::None));
    }

    #[test]
    fn reset_poisons_the_stream() {
        // reset_every = 1: the very first operation resets.
        let plan = Arc::new(FaultPlan::new(
            1,
            FaultConfig {
                reset_every: 1,
                ..FaultConfig::default()
            },
        ));
        let mut s = ChaosStream::new(mem(b"data"), plan);
        let mut buf = [0u8; 4];
        let e = s.read(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        // Every later operation fails too, like a dead socket.
        assert!(s.read(&mut buf).is_err());
        assert!(s.write(b"x").is_err());
        assert!(s.flush().is_err());
    }

    #[test]
    fn partial_write_cuts_mid_buffer_then_dies() {
        let plan = Arc::new(FaultPlan::new(
            3,
            FaultConfig {
                partial_write_every: 1,
                ..FaultConfig::default()
            },
        ));
        let mut s = ChaosStream::new(mem(b""), plan);
        let n = s.write(b"0123456789").unwrap();
        assert_eq!(n, 5, "half the buffer escapes");
        assert_eq!(s.inner.output, b"01234");
        assert!(s.write(b"rest").is_err(), "stream is dead after the cut");
    }

    #[test]
    fn short_reads_return_at_most_one_byte() {
        let plan = Arc::new(FaultPlan::new(
            9,
            FaultConfig {
                short_read_every: 1,
                ..FaultConfig::default()
            },
        ));
        let mut s = ChaosStream::new(mem(b"abc"), plan);
        let mut buf = [0u8; 16];
        // Every read is shortened, but the bytes still all arrive.
        let mut got = Vec::new();
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert_eq!(n, 1);
                    got.extend_from_slice(&buf[..n]);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, b"abc");
    }

    #[test]
    fn crash_points_enumerate_in_writer_order() {
        assert_eq!(CrashPoint::ALL.len(), 5);
        let armed = FaultPlan::new(
            0,
            FaultConfig {
                crash_at: Some(CrashPoint::TempSynced),
                ..FaultConfig::default()
            },
        );
        assert!(armed.crashes_at(CrashPoint::TempSynced));
        assert!(!armed.crashes_at(CrashPoint::Renamed));
        assert!(!CrashPoint::TempSynced.new_snapshot_visible());
        assert!(CrashPoint::Renamed.new_snapshot_visible());
        let unarmed = FaultPlan::new(0, FaultConfig::default());
        for p in CrashPoint::ALL {
            assert!(!unarmed.crashes_at(p));
        }
    }
}
