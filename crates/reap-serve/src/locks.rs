//! Rank-ordered locking: the runtime half of the `reap-lint` lock
//! discipline.
//!
//! Every lock in this crate is an [`OrderedLock`] carrying a *rank*
//! from the table below. The static side (`reap-lint` rule L) checks
//! that the declared acquisition graph is cycle-free and rank-monotone;
//! the dynamic side lives here: in debug builds each thread keeps a
//! stack of currently-held ranks and every acquisition asserts it
//! climbs strictly. Any nesting the annotations missed trips the assert
//! under `cargo test` — including the chaos end-to-end, which thereby
//! doubles as a dynamic lock-order drill. Release builds compile the
//! bookkeeping out entirely; the lock is a plain `Mutex` then.
//!
//! ## Lock-rank table (reap-serve)
//!
//! | rank | name | lock |
//! |------|-----------|------|
//! | 10 | `admission` | the connection-gate count (`Mutex + Condvar`) |
//! | 20 | `shard` | each [`crate::state::FleetState`] shard (sub-rank = shard index, taken ascending in fleet-wide walks) |
//!
//! Ranks are sparse so future locks slot in without renumbering. A full
//! rank is `(class << 32) | sub`: the shard stripe shares class 20 and
//! uses the shard index as sub-rank, so the all-shards walk (ascending
//! index) still climbs strictly while any two-shard inversion asserts.
//!
//! Poisoning: guards recover via [`PoisonError::into_inner`] —
//! the linter bans panics in this crate, so a poisoned mutex implies a
//! panic already escaped the discipline; serving degraded state beats
//! deadlocking the daemon on top of it.

// reap-lint: allow(locks:raw-lock) -- the wrapper the discipline is built on
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Rank classes for this crate's locks (the `class` half of a full
/// rank). Keep in sync with the table above and the `lock-rank`
/// declarations the linter reads (the two pragmas below ARE that
/// declaration — `reap-lint` builds its rank table from them).
// reap-lint: lock-rank(admission, 10)
// reap-lint: lock-rank(shard, 20)
pub mod rank {
    /// The server's connection-admission gate.
    pub const ADMISSION: u32 = 10;
    /// Fleet-state shard mutexes (sub-rank = shard index).
    pub const SHARD: u32 = 20;
}

/// Composes a full rank from a class and a sub-rank.
#[must_use]
pub fn full_rank(class: u32, sub: u32) -> u64 {
    (u64::from(class) << 32) | u64::from(sub)
}

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks (and names, for the assert message) this thread holds,
    /// in acquisition order.
    static HELD: std::cell::RefCell<Vec<(u64, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A mutex with a declared place in the crate-wide lock order.
#[derive(Debug)]
pub struct OrderedLock<T> {
    name: &'static str,
    rank: u64,
    // reap-lint: allow(locks:raw-lock) -- the wrapper the discipline is built on
    inner: Mutex<T>,
}

impl<T> OrderedLock<T> {
    /// Wraps `value` as a lock named `name` at `(class, sub)` rank.
    #[must_use]
    pub fn new(name: &'static str, class: u32, sub: u32, value: T) -> OrderedLock<T> {
        OrderedLock {
            name,
            rank: full_rank(class, sub),
            // reap-lint: allow(locks:raw-lock) -- the wrapper the discipline is built on
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, asserting (debug builds) that every rank this
    /// thread already holds is strictly below this one.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                debug_assert!(
                    top_rank < self.rank,
                    "lock-rank inversion: acquiring `{}` (rank {:#x}) while holding `{}` \
                     (rank {:#x}); see the table in reap_serve::locks",
                    self.name,
                    self.rank,
                    top_name,
                    top_rank,
                );
            }
            held.push((self.rank, self.name));
        });
        // reap-lint: allow(locks:unlabeled-acquisition) -- the wrapper's own acquisition; ranks asserted just above
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedGuard {
            guard: Some(guard),
            lock: self,
        }
    }

    /// Condvar wait: releases the guard into `cv`, reacquiring when
    /// `cond` turns false. The rank stays on the held stack — the wait
    /// returns with the lock held again, and `Condvar` itself never
    /// takes a second lock.
    pub fn wait_while<'a>(
        &'a self,
        mut guard: OrderedGuard<'a, T>,
        cv: &Condvar,
        cond: impl FnMut(&mut T) -> bool,
    ) -> OrderedGuard<'a, T> {
        debug_assert!(std::ptr::eq(guard.lock, self), "guard from another lock");
        // The Option is Some until drop; if that invariant ever broke,
        // returning the guard untouched degrades to a spurious wakeup
        // rather than a panic.
        if let Some(inner) = guard.guard.take() {
            let inner = cv
                .wait_while(inner, cond)
                .unwrap_or_else(PoisonError::into_inner);
            guard.guard = Some(inner);
        }
        guard
    }

    /// The lock's declared name (assert messages, diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's full `(class << 32) | sub` rank.
    #[must_use]
    pub fn rank(&self) -> u64 {
        self.rank
    }
}

/// Guard for an [`OrderedLock`]; pops the rank stack on drop.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    /// Invariant: `Some` from construction until drop (briefly taken
    /// inside `wait_while`, restored before it returns).
    guard: Option<MutexGuard<'a, T>>,
    lock: &'a OrderedLock<T>,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            // reap-lint: allow(panic:panic-macro) -- guard invariant: Some outside wait_while internals
            None => unreachable!("guard invariant"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            // reap-lint: allow(panic:panic-macro) -- guard invariant: Some outside wait_while internals
            None => unreachable!("guard invariant"),
        }
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards usually drop LIFO, but Rust allows out-of-order
            // drops (mem::drop, struct fields): remove by identity, not
            // by popping.
            if let Some(at) = held.iter().rposition(|&(r, _)| r == self.lock.rank) {
                held.remove(at);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_serialize_access() {
        let lock = OrderedLock::new("t", 50, 0, 0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *lock.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.lock(), 4000);
    }

    #[test]
    fn upward_nesting_is_fine() {
        let low = OrderedLock::new("low", 1, 0, ());
        let high = OrderedLock::new("high", 2, 0, ());
        let a = low.lock();
        let b = high.lock();
        drop(a); // out-of-order drop is legal
        drop(b);
        // And again, cleanly.
        let _a = low.lock();
        let _b = high.lock();
    }

    #[test]
    fn sub_ranks_order_a_stripe() {
        let stripe: Vec<OrderedLock<u32>> = (0..8)
            .map(|i| OrderedLock::new("stripe", 30, i, i))
            .collect();
        assert!(stripe.windows(2).all(|w| w[0].rank() < w[1].rank()));
        let guards: Vec<_> = stripe.iter().map(OrderedLock::lock).collect();
        assert_eq!(guards.iter().map(|g| **g).sum::<u32>(), 28);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-rank inversion")]
    fn downward_nesting_asserts() {
        let low = OrderedLock::new("low", 1, 0, ());
        let high = OrderedLock::new("high", 2, 0, ());
        let _b = high.lock();
        let _a = low.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-rank inversion")]
    fn descending_stripe_asserts() {
        let a = OrderedLock::new("stripe", 30, 1, ());
        let b = OrderedLock::new("stripe", 30, 0, ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn wait_while_returns_with_lock_held() {
        let lock = std::sync::Arc::new(OrderedLock::new("gate", 5, 0, 0usize));
        let cv = std::sync::Arc::new(Condvar::new());
        let (l2, cv2) = (lock.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let guard = l2.lock();
            let guard = l2.wait_while(guard, &cv2, |v| *v < 3);
            *guard
        });
        for _ in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            *lock.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(t.join().unwrap(), 3);
    }
}
