//! Property tests for the wire protocol: encode/decode round-trips over
//! arbitrary requests and responses (exact f64 bits preserved), malformed
//! input always answered with a structured error rather than a panic, and
//! the framing invariants (single line, bounded size) the server relies
//! on.

use proptest::prelude::*;
use reap_serve::{
    ErrorCode, FleetStats, Request, Response, ServerStats, WireShare, MAX_LINE_BYTES,
};

fn arb_f64() -> impl Strategy<Value = f64> {
    // Mixed magnitudes, exact decimals and awkward irrationals alike;
    // shortest-round-trip Display must bring all of them back bit-exact.
    prop_oneof![
        Just(0.0f64),
        Just(0.18),
        Just(1.0 / 3.0),
        Just(f64::MIN_POSITIVE),
        Just(1e300),
        -1e9f64..1e9,
        0.0f64..1.0,
    ]
}

fn arb_path() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("/tmp/plain.snap".to_string()),
        Just("with \"quotes\" and \\ slashes".to_string()),
        Just("newline\nand\ttab".to_string()),
        Just("unicode é🙂\u{0001}".to_string()),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (0u32..10).prop_map(|version| Request::Hello { version }),
        (
            0u32..5000,
            0u32..48,
            arb_f64(),
            prop_oneof![Just(None), arb_f64().prop_map(Some)],
            prop_oneof![Just(None), (1u64..1 << 50).prop_map(Some)]
        )
            .prop_map(|(user, hour, harvest_j, activity, seq)| Request::Observe {
                user,
                hour,
                harvest_j: harvest_j.abs(),
                activity,
                seq,
            }),
        (0u32..5000).prop_map(|user| Request::Decide { user }),
        Just(Request::Stats),
        arb_path().prop_map(|path| Request::Checkpoint { path }),
        arb_path().prop_map(|path| Request::Restore { path }),
        Just(Request::Shutdown),
    ]
}

fn arb_shares() -> impl Strategy<Value = Vec<WireShare>> {
    proptest::collection::vec(
        (0u32..=255, 0.0f64..3600.0).prop_map(|(id, seconds)| WireShare {
            id: id as u8,
            seconds,
        }),
        0..3,
    )
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    proptest::sample::select(vec![
        ErrorCode::Version,
        ErrorCode::Handshake,
        ErrorCode::Malformed,
        ErrorCode::Oversized,
        ErrorCode::BadRequest,
        ErrorCode::UnknownUser,
        ErrorCode::Snapshot,
        ErrorCode::Internal,
        ErrorCode::Overloaded,
        ErrorCode::Evicted,
    ])
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u32..9, 0u32..100_000).prop_map(|(version, users)| Response::Welcome { version, users }),
        (0u32..5000, 0u32..24, arb_f64()).prop_map(|(user, hour, budget_j)| {
            Response::Observed {
                user,
                hour,
                budget_j,
            }
        }),
        (
            0u32..5000,
            arb_f64(),
            arb_f64(),
            arb_f64(),
            arb_f64(),
            arb_f64(),
            arb_shares()
        )
            .prop_map(
                |(user, budget_j, accuracy, active_s, energy_j, off_s, shares)| {
                    Response::Decision {
                        user,
                        budget_j,
                        accuracy,
                        active_s,
                        energy_j,
                        off_s,
                        shares,
                    }
                }
            ),
        (
            (0u32..1000, 0u32..1000, 0u64..1 << 50, arb_f64()),
            (arb_f64(), arb_f64(), arb_f64()),
            (0u64..u64::MAX, 0u64..1 << 50, 0u64..1000),
            (0u64..1 << 40, 0u64..1 << 40, 0u64..100, 0u64..100),
            (arb_f64(), arb_f64(), arb_f64(), arb_f64()),
        )
            .prop_map(|(a, b, c, d, e)| Response::Stats {
                fleet: FleetStats {
                    users: a.0,
                    cohorts: a.1,
                    observations: a.2,
                    harvested_j: a.3,
                    budget_j: b.0,
                    battery_j: b.1,
                    activity: b.2,
                    state_digest: c.0,
                },
                server: ServerStats {
                    connections: c.2,
                    requests: c.1,
                    errors: d.2,
                    observes: d.0,
                    decides: d.1,
                    checkpoints: d.3,
                    restores: d.2,
                    evicted: d.3,
                    shed: d.2,
                    observe_p50_us: e.0,
                    observe_p99_us: e.1,
                    decide_p50_us: e.2,
                    decide_p99_us: e.3,
                },
            }),
        (arb_path(), 0u64..1 << 50)
            .prop_map(|(path, bytes)| Response::CheckpointDone { path, bytes }),
        (arb_path(), 0u32..100_000).prop_map(|(path, users)| Response::RestoreDone { path, users }),
        Just(Response::ShuttingDown),
        (arb_error_code(), arb_path())
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

/// Arbitrary junk lines: random bytes, truncated JSON, close-but-wrong
/// frames.
fn arb_junk() -> impl Strategy<Value = String> {
    prop_oneof![
        // Printable noise.
        proptest::collection::vec(32u8..127, 0..80)
            .prop_map(|b| String::from_utf8(b).expect("printable ASCII")),
        // Valid JSON, wrong shape.
        Just("[1,2,3]".to_string()),
        Just("42".to_string()),
        Just("\"observe\"".to_string()),
        Just("{\"type\":42}".to_string()),
        Just("{\"type\":\"observe\"}".to_string()),
        // Truncations of a valid frame.
        (0usize..30).prop_map(|n| {
            let full = "{\"type\":\"decide\",\"user\":3}";
            full[..n.min(full.len())].to_string()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_bit_exactly(req in arb_request()) {
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "frame spans lines: {line}");
        prop_assert!(line.len() < MAX_LINE_BYTES, "frame oversized: {}", line.len());
        let back = Request::decode(&line);
        // PartialEq on Request compares f64 by value; bit-exactness needs
        // a second encode (identical bits <=> identical shortest repr).
        let back = match back {
            Ok(b) => b,
            Err(e) => panic!("decode failed on {line}: {e}"),
        };
        prop_assert_eq!(&back, &req, "value mismatch on {}", line);
        prop_assert_eq!(back.encode(), line);
    }

    #[test]
    fn responses_round_trip_bit_exactly(resp in arb_response()) {
        let line = resp.encode();
        prop_assert!(!line.contains('\n'), "frame spans lines: {line}");
        let back = match Response::decode(&line) {
            Ok(b) => b,
            Err(e) => panic!("decode failed on {line}: {e}"),
        };
        prop_assert_eq!(&back, &resp, "value mismatch on {}", line);
        prop_assert_eq!(back.encode(), line);
    }

    #[test]
    fn junk_never_panics_and_reports_malformed(line in arb_junk()) {
        // Whatever arrives, the decoder must return a structured error
        // (or, rarely, a valid frame if the junk happens to be one) —
        // never panic.
        if let Err(e) = Request::decode(&line) {
            prop_assert_eq!(e.code, ErrorCode::Malformed);
            prop_assert!(!e.message.is_empty());
        }
        if let Err(e) = Response::decode(&line) {
            prop_assert_eq!(e.code, ErrorCode::Malformed);
        }
    }

    #[test]
    fn error_frames_round_trip_their_code(code in arb_error_code(), msg in arb_path()) {
        let frame = Response::Error { code, message: msg.clone() };
        let line = frame.encode();
        match Response::decode(&line) {
            Ok(Response::Error { code: c, message: m }) => {
                prop_assert_eq!(c, code);
                prop_assert_eq!(m, msg);
            }
            other => panic!("error frame decoded to {other:?}"),
        }
    }
}
