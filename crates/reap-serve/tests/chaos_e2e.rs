//! Chaos end-to-end: the serving stack under seeded fault injection and
//! a real SIGKILL/restart cycle.
//!
//! Part 1 runs the loopback workload against an in-process server whose
//! every connection is wrapped in a seeded [`FaultPlan`] — delayed and
//! short reads, partial writes, injected I/O errors, and mid-frame
//! connection resets — and requires the [`RetryClient`] to complete 100%
//! of its idempotent workload with zero observable errors and zero
//! double-counted observes (seq dedup makes retried observes exact).
//!
//! Part 2 runs the real `reap-serve` binary with a periodic snapshot
//! ring, SIGKILLs it mid-workload, recovers the newest digest-valid
//! snapshot locally to compute the expected durable state, restarts the
//! binary with `--resume`, pins the restored fleet stats bit-identical
//! to that durable checkpoint, and has the *same* retrying client (seq
//! numbering intact across the restart) finish its workload with zero
//! observable errors.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated, default `11`); CI
//! runs a small fixed matrix.

use std::sync::Arc;

use reap_serve::{
    FaultConfig, FaultPlan, FleetState, Request, Response, RetryClient, RetryConfig, Server,
    ServerConfig,
};
use reap_sim::Fleet;

fn seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .unwrap_or_else(|_| "11".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

fn state(users: u32, seed: u64) -> FleetState {
    let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(users)
        .days(1)
        .seed(seed)
        .build()
        .expect("valid fleet");
    FleetState::new(&fleet, 4).expect("state builds")
}

#[test]
fn retry_client_completes_workload_under_server_side_faults() {
    let users = 12u32;
    let hours = 8u32;
    for seed in seeds() {
        let cfg = FaultConfig {
            delay_every: 37,
            delay_ms: 1,
            short_read_every: 97,
            partial_write_every: 131,
            error_every: 151,
            reset_every: 173,
            ..FaultConfig::default()
        };
        let plan = Arc::new(FaultPlan::new(seed, cfg));
        let server = Server::bind_with_layer(
            "127.0.0.1:0",
            state(users, seed),
            ServerConfig::default(),
            Arc::clone(&plan),
        )
        .expect("bind port 0");
        let addr = server.local_addr();
        let handle = server.handle();
        let serving = std::thread::spawn(move || server.serve());

        let mut client = RetryClient::connect(
            addr,
            RetryConfig {
                seed,
                ..RetryConfig::default()
            },
        )
        .expect("connect through chaos");
        assert_eq!(client.users(), users);

        // 100% of the idempotent workload must complete: every observe
        // acked exactly once, every decide answered.
        for hour in 0..hours {
            for user in 0..users {
                let harvest = f64::from((user * 7 + hour) % 6) * 0.45;
                let budget = client
                    .observe(user, hour, harvest, Some(0.125))
                    .unwrap_or_else(|e| panic!("seed {seed}: observe({user},{hour}): {e}"));
                assert!(budget.is_finite() && budget >= 0.0);
            }
        }
        for user in 0..users {
            match client
                .decide(user)
                .unwrap_or_else(|e| panic!("seed {seed}: decide({user}): {e}"))
            {
                Response::Decision { user: u, .. } => assert_eq!(u, user),
                other => panic!("seed {seed}: unexpected decide reply: {other:?}"),
            }
        }

        let (fleet, _server_stats) = client.stats().expect("stats through chaos");
        assert_eq!(
            fleet.observations,
            u64::from(users) * u64::from(hours),
            "seed {seed}: retried observes must deduplicate exactly \
             ({} retries, {} reconnects)",
            client.retries(),
            client.reconnects()
        );
        assert!(
            plan.injected() > 0,
            "seed {seed}: the fault plan never fired — chaos test is vacuous"
        );

        handle.shutdown();
        serving.join().expect("server thread").expect("clean exit");
    }
}

mod subprocess {
    use std::io::{BufRead, BufReader};
    use std::net::SocketAddr;
    use std::path::{Path, PathBuf};
    use std::process::{Child, ChildStdout, Command, Stdio};

    use super::*;
    use reap_serve::SnapshotRing;

    const USERS: u32 = 16;
    const FLEET_SEED: u64 = 9;
    const RING_KEEP: usize = 4;

    fn spawn_server(ring: &Path, resume: bool) -> (Child, SocketAddr, BufReader<ChildStdout>) {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_reap-serve"));
        cmd.args([
            "--addr",
            "127.0.0.1:0",
            "--users",
            &USERS.to_string(),
            "--seed",
            &FLEET_SEED.to_string(),
            "--shards",
            "4",
            "--source",
            "outdoor-solar",
            "--checkpoint-ring",
        ])
        .arg(ring)
        .args([
            "--ring-keep",
            &RING_KEEP.to_string(),
            "--checkpoint-every-ms",
            "25",
        ]);
        if resume {
            cmd.arg("--resume");
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn reap-serve binary");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read server stdout");
            assert_ne!(n, 0, "server exited before announcing its address");
            if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
                break rest.parse().expect("parseable listen address");
            }
            if resume {
                assert!(
                    !line.contains("starting fresh"),
                    "--resume found no usable snapshot: {line}"
                );
            }
        };
        (child, addr, stdout)
    }

    /// The fleet the binary builds for these flags, rebuilt in-process so
    /// the test can recover the ring locally and know the expected stats.
    fn local_state() -> FleetState {
        let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
            .users(USERS)
            .seed(FLEET_SEED)
            .sources(vec![reap_harvest::SourceKind::OutdoorSolar])
            .build()
            .expect("valid fleet");
        FleetState::new(&fleet, 4).expect("state builds")
    }

    fn temp_ring() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reap_chaos_ring_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn sigkill_and_ring_resume_restore_the_last_durable_checkpoint() {
        let ring_dir = temp_ring();
        let (mut child, addr, _stdout) = spawn_server(&ring_dir, false);

        let mut client = RetryClient::connect(addr, RetryConfig::default()).expect("connect");
        assert_eq!(client.users(), USERS);

        // Phase 1 of the workload, then let the 25 ms checkpoint cadence
        // cut several durable snapshots of the quiesced state.
        for hour in 0..6u32 {
            for user in 0..USERS {
                let harvest = f64::from((user * 5 + hour) % 7) * 0.4;
                client
                    .observe(user, hour, harvest, Some(0.1))
                    .expect("phase-1 observe");
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(150));

        // SIGKILL: no drain, no exit checkpoint, workload incomplete.
        child.kill().expect("SIGKILL server");
        child.wait().expect("reap killed server");

        // Recover the ring locally: the newest digest-valid snapshot is
        // the expected durable state. The post-quiesce checkpoints cover
        // all of phase 1.
        let expected_state = local_state();
        let recovery = SnapshotRing::create(&ring_dir, RING_KEEP)
            .expect("open ring")
            .recover(&expected_state)
            .expect("scan ring")
            .expect("at least one durable snapshot");
        assert_eq!(recovery.users, USERS);
        let expected = expected_state.fleet_stats();
        assert_eq!(
            expected.observations,
            u64::from(USERS) * 6,
            "durable checkpoint should cover the whole quiesced phase 1"
        );

        // Restart from the ring; the same client follows the server to
        // its new port with its seq numbering intact.
        let (mut child, addr, _stdout) = spawn_server(&ring_dir, true);
        client.reconnect_to(addr).expect("retarget client");

        // Restored stats are bit-identical to the last durable
        // checkpoint: every f64, the digest, and the wire encoding.
        let (restored, _server_stats) = client.stats().expect("stats after resume");
        assert_eq!(restored, expected);
        assert_eq!(restored.encode(), expected.encode());

        // Phase 2 completes on the restored state: zero observable
        // errors, every observe applied exactly once.
        for hour in 6..12u32 {
            for user in 0..USERS {
                let harvest = f64::from((user * 5 + hour) % 7) * 0.4;
                client
                    .observe(user, hour, harvest, Some(0.1))
                    .expect("phase-2 observe");
            }
        }
        let (fin, _server_stats) = client.stats().expect("final stats");
        assert_eq!(
            fin.observations,
            expected.observations + u64::from(USERS) * 6
        );

        match client.request_once(&Request::Shutdown).expect("shutdown") {
            Response::ShuttingDown => {}
            other => panic!("unexpected shutdown reply: {other:?}"),
        }
        let status = child.wait().expect("server exits");
        assert!(status.success(), "graceful exit after resume: {status}");

        std::fs::remove_dir_all(&ring_dir).ok();
    }
}
