//! Framing robustness under hostile byte streams: valid frames split at
//! every byte boundary across multiple TCP writes, and arbitrary byte
//! junk. The server must never panic or hang — every input gets a typed
//! error frame or a clean drop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use proptest::prelude::*;
use reap_serve::{FleetState, Request, Response, Server, ServerConfig, ServerHandle};
use reap_sim::Fleet;

fn start(
    users: u32,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(users)
        .days(1)
        .seed(5)
        .build()
        .expect("valid fleet");
    let state = FleetState::new(&fleet, 4).expect("state builds");
    let server = Server::bind("127.0.0.1:0", state, ServerConfig::default()).expect("bind port 0");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve());
    (addr, handle, thread)
}

fn handshake(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    stream
        .write_all(b"{\"type\":\"hello\",\"version\":2}\n")
        .expect("hello");
    let mut line = String::new();
    reader.read_line(&mut line).expect("welcome line");
    assert!(matches!(
        Response::decode(line.trim_end()).expect("welcome decodes"),
        Response::Welcome { .. }
    ));
}

#[test]
fn frames_split_at_every_byte_boundary_still_parse() {
    let (addr, handle, thread) = start(4);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    handshake(&mut stream, &mut reader);

    let mut frame = Request::Observe {
        user: 1,
        hour: 3,
        harvest_j: 1.25,
        activity: Some(0.5),
        seq: None,
    }
    .encode()
    .into_bytes();
    frame.push(b'\n');

    // Every split point, including before the trailing newline: two
    // writes with a scheduling gap, so the server's reader sees the
    // frame arrive in two TCP segments.
    for split in 1..frame.len() {
        stream.write_all(&frame[..split]).expect("first half");
        stream.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(1));
        stream.write_all(&frame[split..]).expect("second half");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        match Response::decode(line.trim_end()).expect("response decodes") {
            Response::Observed {
                user: 1, hour: 3, ..
            } => {}
            other => panic!("split at {split}: unexpected reply {other:?}"),
        }
    }

    handle.shutdown();
    thread.join().expect("server thread").expect("clean exit");
}

/// One long-lived chaos-target server shared by every junk case (a
/// per-case server would dominate the runtime); it is deliberately
/// leaked — the process exit reaps it.
fn shared_addr() -> std::net::SocketAddr {
    static ADDR: std::sync::OnceLock<std::net::SocketAddr> = std::sync::OnceLock::new();
    *ADDR.get_or_init(|| {
        let (addr, _handle, _thread) = start(4);
        addr
    })
}

fn arb_junk() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Raw bytes of any value except the frame delimiters.
        proptest::collection::vec(0u8..=255, 0..200).prop_map(|mut b| {
            b.retain(|&x| x != b'\n' && x != b'\r');
            b
        }),
        // Printable noise.
        proptest::collection::vec(32u8..127, 0..120),
        // Truncations of a valid frame.
        (0usize..52).prop_map(|n| {
            let full: &[u8] = b"{\"type\":\"observe\",\"user\":1,\"hour\":0,\"harvest_j\":1.0}";
            full[..n.min(full.len())].to_vec()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_junk_lines_get_a_typed_error_or_a_clean_drop(junk in arb_junk()) {
        let addr = shared_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        handshake(&mut stream, &mut reader);

        stream.write_all(&junk).expect("junk bytes");
        stream.write_all(b"\n").expect("junk newline");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("server must answer or close");
        if n > 0 {
            // Whatever came back must be a well-formed frame — usually a
            // typed error; junk that happens to be a valid request gets
            // its normal response.
            Response::decode(line.trim_end()).expect("well-formed response frame");

            // The session either survived (error frame) or is closing; a
            // follow-up valid frame must never wedge the connection.
            stream.write_all(b"{\"type\":\"stats\"}\n").expect("probe");
            line.clear();
            let n = reader.read_line(&mut line).expect("probe answered or EOF");
            if n > 0 {
                Response::decode(line.trim_end()).expect("well-formed probe response");
            }
        }

        // The server survives every case: a fresh client still greets.
        let client = reap_serve::Client::connect(addr).expect("healthy connect");
        prop_assert_eq!(client.users(), 4);
    }
}
