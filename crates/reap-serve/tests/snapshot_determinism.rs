//! Cross-process snapshot determinism: two *separate processes* that
//! feed the same per-user observation streams must produce byte-for-byte
//! identical snapshots, even when they interleave users differently.
//!
//! Running in fresh processes is the point — per-process state that a
//! single-process test can't see (SipHash keys of a stray `HashMap`,
//! ASLR-dependent pointer hashing, lazily-seeded ambient RNG) would all
//! surface here as differing bytes. This is the regression test behind
//! the `reap-lint` determinism rule: the lint bans the sources
//! statically, this pins the property dynamically.

use std::path::PathBuf;
use std::process::Command;

use reap_serve::{snapshot, FleetState};
use reap_sim::Fleet;

const OUT_ENV: &str = "REAP_SNAPCHILD_OUT";
const ORDER_ENV: &str = "REAP_SNAPCHILD_ORDER";

const USERS: u32 = 48;
const HOURS: u32 = 36;

fn fleet() -> Fleet {
    Fleet::builder(reap_device::paper_table2_operating_points())
        .users(USERS)
        .days(2)
        .seed(2019)
        .build()
        .expect("valid fleet")
}

/// A deterministic, per-(user, hour) harvest/activity stream.
fn harvest_j(user: u32, hour: u32) -> f64 {
    let phase = f64::from((user + hour) % 24) / 24.0;
    2.5 * (1.0 + (2.0 * std::f64::consts::PI * phase).sin()).max(0.0)
}

/// Child mode: build the fleet state, absorb the stream in the order
/// named by `ORDER_ENV`, write the snapshot bytes to `OUT_ENV`.
fn run_child(out: PathBuf) {
    let state = FleetState::new(&fleet(), 5).expect("state builds");
    let order = std::env::var(ORDER_ENV).unwrap_or_default();
    let feed = |u: u32, h: u32| {
        state
            .observe_seq(u, h, harvest_j(u, h), Some(0.125), Some(u64::from(h) + 1))
            .expect("observe accepted");
    };
    if order == "hours-outer" {
        for h in 0..HOURS {
            for u in 0..USERS {
                feed(u, h);
            }
        }
    } else {
        for u in 0..USERS {
            for h in 0..HOURS {
                feed(u, h);
            }
        }
    }
    std::fs::write(&out, snapshot::snapshot(&state)).expect("snapshot written");
}

/// Re-runs this test binary filtered to this test, in child mode.
fn spawn_child(test_name: &str, out: &PathBuf, order: &str) {
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .args([test_name, "--exact", "--test-threads", "1"])
        .env(OUT_ENV, out)
        .env(ORDER_ENV, order)
        .status()
        .expect("child spawns");
    assert!(status.success(), "child ({order}) failed: {status}");
    assert!(out.is_file(), "child ({order}) wrote no snapshot");
}

#[test]
fn snapshot_bytes_identical_across_processes() {
    if let Ok(out) = std::env::var(OUT_ENV) {
        run_child(PathBuf::from(out));
        return;
    }
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let a = dir.join("snap_proc_a.bin");
    let b = dir.join("snap_proc_b.bin");
    let c = dir.join("snap_proc_c.bin");
    for p in [&a, &b, &c] {
        let _ = std::fs::remove_file(p);
    }

    // Two fresh processes, same feed order.
    spawn_child(
        "snapshot_bytes_identical_across_processes",
        &a,
        "users-outer",
    );
    spawn_child(
        "snapshot_bytes_identical_across_processes",
        &b,
        "users-outer",
    );
    // A third with the cross-user interleaving transposed: per-user
    // streams are unchanged, so the snapshot must still be identical.
    spawn_child(
        "snapshot_bytes_identical_across_processes",
        &c,
        "hours-outer",
    );

    let bytes_a = std::fs::read(&a).expect("read a");
    let bytes_b = std::fs::read(&b).expect("read b");
    let bytes_c = std::fs::read(&c).expect("read c");
    assert!(
        bytes_a.len() > 32,
        "snapshot suspiciously small: {} bytes",
        bytes_a.len()
    );
    assert_eq!(
        bytes_a, bytes_b,
        "same-order runs diverged across processes"
    );
    assert_eq!(
        bytes_a, bytes_c,
        "interleaving order leaked into the snapshot"
    );

    // And the snapshot restores into a third in-process state whose
    // re-snapshot is the same bytes again (restore is exact).
    let state = FleetState::new(&fleet(), 3).expect("state builds");
    snapshot::restore(&state, &bytes_a).expect("restore accepted");
    assert_eq!(
        snapshot::snapshot(&state),
        bytes_a,
        "restore → snapshot is not byte-stable"
    );
}
