//! End-to-end daemon tests over real loopback TCP. Every server binds
//! port 0 and the kernel-assigned address comes from
//! [`Server::local_addr`] — no hardcoded ports anywhere.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread::JoinHandle;

use reap_serve::{
    Client, ErrorCode, FleetState, FleetStats, Request, Response, Server, ServerConfig,
    MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use reap_sim::Fleet;

fn fleet(users: u32, seed: u64) -> Fleet {
    Fleet::builder(reap_device::paper_table2_operating_points())
        .users(users)
        .days(1)
        .seed(seed)
        .build()
        .expect("valid fleet")
}

struct Running {
    addr: std::net::SocketAddr,
    handle: reap_serve::ServerHandle,
    thread: JoinHandle<std::io::Result<()>>,
}

fn start(users: u32, seed: u64, config: ServerConfig) -> Running {
    let state = FleetState::new(&fleet(users, seed), 4).expect("state builds");
    let server = Server::bind("127.0.0.1:0", state, config).expect("bind port 0");
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "local_addr must report the assigned port");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve());
    Running {
        addr,
        handle,
        thread,
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("reap_serve_e2e_{}_{name}", std::process::id()))
}

/// Streams `hours` observations per user (deterministic synthetic
/// harvests) through `client`, returning the sum of granted budgets.
fn stream(client: &mut Client, users: u32, hours: std::ops::Range<u32>) -> f64 {
    let mut total = 0.0;
    for h in hours {
        for u in 0..users {
            let harvest = f64::from((u * 7 + h) % 6) * 0.45;
            match client
                .request(&Request::Observe {
                    user: u,
                    hour: h,
                    harvest_j: harvest,
                    activity: Some(0.125),
                    seq: None,
                })
                .expect("observe")
            {
                Response::Observed { budget_j, .. } => total += budget_j,
                other => panic!("unexpected reply: {other:?}"),
            }
        }
    }
    total
}

fn fleet_stats(client: &mut Client) -> FleetStats {
    match client.request(&Request::Stats).expect("stats") {
        Response::Stats { fleet, .. } => fleet,
        other => panic!("unexpected reply: {other:?}"),
    }
}

#[test]
fn full_session_over_loopback() {
    let srv = start(12, 3, ServerConfig::default());
    let mut client = Client::connect(srv.addr).expect("connect + handshake");
    assert_eq!(client.users(), 12);

    stream(&mut client, 12, 0..24);
    let stats = fleet_stats(&mut client);
    assert_eq!(stats.users, 12);
    assert_eq!(stats.observations, 12 * 24);
    assert!(stats.harvested_j > 0.0 && stats.budget_j > 0.0);
    assert!((stats.activity - 12.0 * 24.0 * 0.125).abs() < 1e-9);

    match client
        .request(&Request::Decide { user: 5 })
        .expect("decide")
    {
        Response::Decision {
            user,
            budget_j,
            accuracy,
            active_s,
            off_s,
            shares,
            ..
        } => {
            assert_eq!(user, 5);
            assert!(budget_j >= 0.18 - 1e-12, "floor violated: {budget_j}");
            assert!((0.0..=1.0).contains(&accuracy));
            let share_s: f64 = shares.iter().map(|s| s.seconds).sum();
            assert!(
                (share_s + off_s - 3600.0).abs() < 1e-6,
                "shares {share_s} + off {off_s} != period"
            );
            assert!((active_s - share_s).abs() < 1e-6);
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    // Unknown user → typed error frame, session keeps working.
    match client
        .request(&Request::Decide { user: 99 })
        .expect("reply")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownUser),
        other => panic!("unexpected reply: {other:?}"),
    }
    assert_eq!(fleet_stats(&mut client).observations, 12 * 24);

    // In-band graceful shutdown.
    match client.request(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected reply: {other:?}"),
    }
    srv.thread
        .join()
        .expect("server thread")
        .expect("clean exit");
}

#[test]
fn handshake_refuses_version_mismatch_and_non_hello() {
    let srv = start(2, 1, ServerConfig::default());

    // Wrong version: error frame with code "version", then close.
    let mut s = TcpStream::connect(srv.addr).expect("connect");
    s.write_all(b"{\"type\":\"hello\",\"version\":999}\n")
        .unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim_end()).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Version);
            assert!(message.contains(&PROTOCOL_VERSION.to_string()));
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    // The server closed the connection after refusing.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    // First frame not a hello: handshake error, then close.
    let mut s = TcpStream::connect(srv.addr).expect("connect");
    s.write_all(b"{\"type\":\"stats\"}\n").unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim_end()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Handshake),
        other => panic!("unexpected reply: {other:?}"),
    }

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn malformed_lines_get_error_frames_and_session_survives() {
    let srv = start(2, 1, ServerConfig::default());
    let mut client = Client::connect(srv.addr).expect("connect");

    for junk in [
        "not json at all",
        "{\"type\":\"nope\"}",
        "{\"type\":\"observe\"}",
    ] {
        match client.request_raw(junk).expect("error frame") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("unexpected reply to {junk:?}: {other:?}"),
        }
    }
    // The session still works after three malformed frames.
    match client
        .request(&Request::Observe {
            user: 0,
            hour: 0,
            harvest_j: 1.0,
            activity: None,
            seq: None,
        })
        .expect("observe")
    {
        Response::Observed { .. } => {}
        other => panic!("unexpected reply: {other:?}"),
    }

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn oversized_lines_are_rejected_and_connection_closes() {
    let srv = start(2, 1, ServerConfig::default());
    let mut s = TcpStream::connect(srv.addr).expect("connect");
    s.write_all(b"{\"type\":\"hello\",\"version\":2}\n")
        .unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim_end()).unwrap(),
        Response::Welcome { .. }
    ));

    // A newline-free blob past the cap.
    let blob = vec![b'x'; MAX_LINE_BYTES + 1024];
    s.write_all(&blob).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim_end()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("unexpected reply: {other:?}"),
    }
    // Connection is closed afterwards: reads drain to EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server kept talking after oversized frame");

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_observe_disjoint_users() {
    let users = 24u32;
    let srv = start(users, 9, ServerConfig::default());
    let threads: Vec<_> = (0..6u32)
        .map(|t| {
            let addr = srv.addr;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for h in 0..20u32 {
                    for u in (t * 4)..(t * 4 + 4) {
                        match client
                            .request(&Request::Observe {
                                user: u,
                                hour: h,
                                harvest_j: 0.5,
                                activity: None,
                                seq: None,
                            })
                            .expect("observe")
                        {
                            Response::Observed { .. } => {}
                            other => panic!("unexpected reply: {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let mut client = Client::connect(srv.addr).expect("connect");
    let stats = fleet_stats(&mut client);
    assert_eq!(stats.observations, u64::from(users) * 20);

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn killed_and_restored_server_reports_bit_identical_stats() {
    let users = 10u32;
    let seed = 21u64;
    let ckpt = temp_path("kill_restore.snap");

    // Server A lives through the first half of the stream, then is shut
    // down with --checkpoint-on-exit semantics (exit snapshot).
    let a = start(
        users,
        seed,
        ServerConfig {
            checkpoint_on_exit: Some(ckpt.clone()),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(a.addr).expect("connect A");
    stream(&mut client, users, 0..13);
    a.handle.shutdown();
    a.thread.join().unwrap().expect("A exits cleanly");
    assert!(ckpt.exists(), "exit checkpoint missing");

    // Server B restores the snapshot and lives through the second half.
    let b = start(users, seed, ServerConfig::default());
    let mut client = Client::connect(b.addr).expect("connect B");
    match client
        .request(&Request::Restore {
            path: ckpt.display().to_string(),
        })
        .expect("restore")
    {
        Response::RestoreDone { users: n, .. } => assert_eq!(n, users),
        other => panic!("unexpected reply: {other:?}"),
    }
    stream(&mut client, users, 13..24);
    let interrupted = fleet_stats(&mut client);
    b.handle.shutdown();
    b.thread.join().unwrap().unwrap();

    // Server C replays the whole stream uninterrupted.
    let c = start(users, seed, ServerConfig::default());
    let mut client = Client::connect(c.addr).expect("connect C");
    stream(&mut client, users, 0..24);
    let uninterrupted = fleet_stats(&mut client);
    c.handle.shutdown();
    c.thread.join().unwrap().unwrap();

    // Bit-identical: every f64 and the state digest agree exactly, and
    // so does the deterministic wire encoding.
    assert_eq!(interrupted, uninterrupted);
    assert_eq!(interrupted.encode(), uninterrupted.encode());

    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn checkpoint_request_round_trips_through_a_fresh_server() {
    let users = 6u32;
    let seed = 5u64;
    let ckpt = temp_path("inband.snap");

    let a = start(users, seed, ServerConfig::default());
    let mut client = Client::connect(a.addr).expect("connect");
    stream(&mut client, users, 0..9);
    let before = fleet_stats(&mut client);
    match client
        .request(&Request::Checkpoint {
            path: ckpt.display().to_string(),
        })
        .expect("checkpoint")
    {
        Response::CheckpointDone { bytes, .. } => {
            assert_eq!(bytes, std::fs::metadata(&ckpt).unwrap().len());
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    // Restore into a fresh server of the same fleet: stats match bit
    // for bit. A mismatched fleet refuses the snapshot.
    let b = start(users, seed, ServerConfig::default());
    let mut client_b = Client::connect(b.addr).expect("connect B");
    match client_b
        .request(&Request::Restore {
            path: ckpt.display().to_string(),
        })
        .expect("restore")
    {
        Response::RestoreDone { .. } => {}
        other => panic!("unexpected reply: {other:?}"),
    }
    assert_eq!(fleet_stats(&mut client_b), before);

    let other_fleet = start(users, seed + 1, ServerConfig::default());
    let mut client_o = Client::connect(other_fleet.addr).expect("connect");
    match client_o
        .request(&Request::Restore {
            path: ckpt.display().to_string(),
        })
        .expect("reply")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Snapshot),
        other => panic!("foreign restore must fail, got {other:?}"),
    }

    for srv in [a, b, other_fleet] {
        srv.handle.shutdown();
        srv.thread.join().unwrap().unwrap();
    }
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn oversized_complete_line_is_rejected_with_a_typed_frame() {
    // Unlike the newline-free blob above, this frame is *complete* — the
    // newline arrives in the same write — so it exercises the cap check
    // on split-off lines, not the accumulation cap.
    let srv = start(2, 1, ServerConfig::default());
    let mut s = TcpStream::connect(srv.addr).expect("connect");
    s.write_all(b"{\"type\":\"hello\",\"version\":2}\n")
        .unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim_end()).unwrap(),
        Response::Welcome { .. }
    ));

    let mut blob = vec![b'x'; MAX_LINE_BYTES + 1024];
    blob.push(b'\n');
    s.write_all(&blob).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim_end()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("unexpected reply: {other:?}"),
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server kept talking after oversized frame");

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn slow_loris_client_is_evicted_mid_frame_but_idle_clients_are_not() {
    let srv = start(
        2,
        1,
        ServerConfig {
            frame_deadline: Some(std::time::Duration::from_millis(300)),
            ..ServerConfig::default()
        },
    );

    // An idle (between-frames) client comfortably outlives the deadline.
    let mut idle = Client::connect(srv.addr).expect("connect idle");
    std::thread::sleep(std::time::Duration::from_millis(700));

    // The slow-loris client starts a frame and stalls mid-line.
    let mut loris = TcpStream::connect(srv.addr).expect("connect loris");
    loris
        .write_all(b"{\"type\":\"hello\",\"version\":2}\n")
        .unwrap();
    let mut reader = BufReader::new(loris.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim_end()).unwrap(),
        Response::Welcome { .. }
    ));
    loris.write_all(b"{\"type\":\"sta").unwrap(); // ...and never finishes
    line.clear();
    reader.read_line(&mut line).expect("eviction frame");
    match Response::decode(line.trim_end()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Evicted),
        other => panic!("unexpected reply: {other:?}"),
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server kept talking after eviction");

    // The idle client still works, and the eviction is counted.
    match idle.request(&Request::Stats).expect("stats") {
        Response::Stats { server, .. } => assert_eq!(server.evicted, 1),
        other => panic!("unexpected reply: {other:?}"),
    }

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn overload_sheds_observes_but_keeps_decide_and_stats_live() {
    let srv = start(
        4,
        1,
        ServerConfig {
            overload_shed_at: 1,
            ..ServerConfig::default()
        },
    );
    // Two live connections > threshold of 1: overload mode.
    let _ballast = Client::connect(srv.addr).expect("connect ballast");
    let mut client = Client::connect(srv.addr).expect("connect");

    match client
        .request(&Request::Observe {
            user: 0,
            hour: 0,
            harvest_j: 1.0,
            activity: None,
            seq: None,
        })
        .expect("reply")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("observe should be shed, got {other:?}"),
    }
    match client.request(&Request::Decide { user: 0 }).expect("reply") {
        Response::Decision { .. } => {}
        other => panic!("decide must stay live under overload, got {other:?}"),
    }
    match client.request(&Request::Stats).expect("stats") {
        Response::Stats { fleet, server } => {
            assert_eq!(server.shed, 1);
            assert_eq!(fleet.observations, 0, "shed observe must not mutate state");
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    // Back under the threshold, observes flow again.
    drop(_ballast);
    // The server notices the closed connection at its next read poll.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match client
            .request(&Request::Observe {
                user: 0,
                hour: 0,
                harvest_j: 1.0,
                activity: None,
                seq: None,
            })
            .expect("reply")
        {
            Response::Observed { .. } => break,
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            } => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "still overloaded after ballast disconnect"
                );
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}

#[test]
fn seq_stamped_observes_deduplicate_over_the_wire() {
    let srv = start(2, 1, ServerConfig::default());
    let mut client = Client::connect(srv.addr).expect("connect");

    let observe = |client: &mut Client, seq: u64| match client
        .request(&Request::Observe {
            user: 1,
            hour: 0,
            harvest_j: 2.0,
            activity: Some(0.25),
            seq: Some(seq),
        })
        .expect("reply")
    {
        Response::Observed { budget_j, .. } => Ok(budget_j),
        Response::Error { code, message } => Err((code, message)),
        other => panic!("unexpected reply: {other:?}"),
    };

    let first = observe(&mut client, 1).expect("fresh seq applies");
    let replay = observe(&mut client, 1).expect("duplicate seq replays");
    assert_eq!(first.to_bits(), replay.to_bits(), "replay must be cached");
    let stale = observe(&mut client, 0);
    assert!(
        matches!(stale, Err((ErrorCode::BadRequest, _))),
        "{stale:?}"
    );
    let stats = fleet_stats(&mut client);
    assert_eq!(stats.observations, 1, "duplicate must not double-count");

    srv.handle.shutdown();
    srv.thread.join().unwrap().unwrap();
}
