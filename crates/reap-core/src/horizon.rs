//! Multi-period lookahead planning.
//!
//! REAP plans one activity period at a time against a budget that an
//! energy-allocation layer derived from harvest expectations (the paper
//! cites Kansal et al. and Bhat et al. for that layer). This module closes
//! the loop *optimally*: given a harvest **forecast** over `H` periods and
//! a battery, it solves one joint LP that chooses every period's
//! allocations and the battery trajectory at once — the upper bound any
//! per-period allocation policy can hope to reach, used as an ablation
//! baseline by the benchmark harness.
//!
//! Model (per period `h`, with battery level `b_h`, spill `s_h`):
//!
//! ```text
//! maximize   sum_h sum_i w_i t_{h,i}
//! s.t.       sum_i t_{h,i} + t_off,h = TP
//!            b_h = b_{h-1} + E_h - c_h - s_h     (b_{-1} = initial level)
//!            b_h <= capacity
//!            c_h = sum_i P_i t_{h,i} + P_off t_off,h
//!            all variables >= 0
//! ```
//!
//! Charge/discharge efficiencies are assumed ideal inside the planner (the
//! simulator still applies them at execution time); this keeps the program
//! linear and errs on the optimistic side, which is the right bias for an
//! upper-bound baseline.

// Index-based loops below mirror the textbook linear-algebra notation;
// iterator rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use reap_lp::{LpProblem, LpStatus, Relation};
use reap_units::{Energy, TimeSpan};

use crate::schedule::Allocation;
use crate::{ReapError, ReapProblem, Schedule};

/// The output of [`plan_horizon`]: one schedule per forecast period plus
/// the planned battery trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonPlan {
    /// One schedule per period, in forecast order.
    pub schedules: Vec<Schedule>,
    /// Planned battery level at the *end* of each period.
    pub battery_trajectory: Vec<Energy>,
    /// Planned spill (energy lost to a full battery) per period.
    pub spills: Vec<Energy>,
}

impl HorizonPlan {
    /// Total objective over the horizon (sum of per-period `J(t)`).
    #[must_use]
    pub fn total_objective(&self, alpha: f64) -> f64 {
        self.schedules
            .iter()
            .map(|s| s.objective(alpha))
            .sum::<f64>()
    }

    /// Total active time over the horizon.
    #[must_use]
    pub fn total_active_time(&self) -> TimeSpan {
        self.schedules.iter().map(Schedule::active_time).sum()
    }
}

/// Jointly plans `forecast.len()` periods with full knowledge of the
/// forecast and the battery.
///
/// # Errors
///
/// * [`ReapError::InvalidParameter`] for an empty forecast, negative
///   forecast energies, or a battery state outside `[0, capacity]`.
/// * [`ReapError::InfeasibleHorizon`] when the battery plus the forecast
///   cannot pay every period's off-state floor `P_off * TP` (a starved
///   window).
/// * [`ReapError::Lp`] / [`ReapError::SolverInconsistency`] if the solver
///   fails numerically (pathological inputs only).
pub fn plan_horizon(
    problem: &ReapProblem,
    forecast: &[Energy],
    battery_level: Energy,
    battery_capacity: Energy,
) -> Result<HorizonPlan, ReapError> {
    if forecast.is_empty() {
        return Err(ReapError::InvalidParameter("empty forecast".into()));
    }
    if forecast.iter().any(|e| !e.is_finite() || e.is_negative()) {
        return Err(ReapError::InvalidParameter(
            "forecast energies must be finite and non-negative".into(),
        ));
    }
    if !battery_capacity.is_finite()
        || battery_capacity.joules() <= 0.0
        || battery_level.is_negative()
        || battery_level > battery_capacity
    {
        return Err(ReapError::InvalidParameter(format!(
            "battery state {battery_level} / {battery_capacity} is invalid"
        )));
    }

    let horizon = forecast.len();
    let n = problem.points().len();
    let tp = problem.period().seconds();
    let alpha = problem.alpha();

    // Variable layout per period h (stride = n + 3):
    //   [t_{h,1} .. t_{h,N}, t_off_h, b_h, s_h]
    let stride = n + 3;
    let t_off_at = |h: usize| h * stride + n;
    let b_at = |h: usize| h * stride + n + 1;
    let s_at = |h: usize| h * stride + n + 2;
    let total_vars = horizon * stride;

    // Objective: normalized weights on the t variables.
    let weights: Vec<f64> = problem.points().iter().map(|p| p.weight(alpha)).collect();
    let w_max = weights.iter().cloned().fold(0.0f64, f64::max);
    let scale = if w_max > 0.0 { 1.0 / (w_max * tp) } else { 1.0 };
    let mut objective = vec![0.0; total_vars];
    for h in 0..horizon {
        for (i, w) in weights.iter().enumerate() {
            objective[h * stride + i] = w * scale;
        }
    }
    let mut lp = LpProblem::try_new_maximize(&objective)?;

    let powers: Vec<f64> = problem.points().iter().map(|p| p.power().watts()).collect();
    let p_off = problem.off_power().watts();

    for h in 0..horizon {
        // Time budget of the period.
        let mut time_row = vec![0.0; total_vars];
        for i in 0..n {
            time_row[h * stride + i] = 1.0;
        }
        time_row[t_off_at(h)] = 1.0;
        lp.subject_to(&time_row, Relation::Eq, tp)?;

        // Battery dynamics: b_h - b_{h-1} + c_h + s_h = E_h.
        let mut dyn_row = vec![0.0; total_vars];
        for i in 0..n {
            dyn_row[h * stride + i] = powers[i];
        }
        dyn_row[t_off_at(h)] = p_off;
        dyn_row[b_at(h)] = 1.0;
        dyn_row[s_at(h)] = 1.0;
        let mut rhs = forecast[h].joules();
        if h == 0 {
            rhs += battery_level.joules();
        } else {
            dyn_row[b_at(h - 1)] = -1.0;
        }
        lp.subject_to(&dyn_row, Relation::Eq, rhs)?;

        // Battery cap.
        let mut cap_row = vec![0.0; total_vars];
        cap_row[b_at(h)] = 1.0;
        lp.subject_to(&cap_row, Relation::Le, battery_capacity.joules())?;
    }

    let solution = lp.solve()?;
    match solution.status() {
        LpStatus::Optimal => {}
        // Every period owes the off-state floor `P_off * TP`, so a dark
        // window with a dead battery is genuinely infeasible (a starved
        // device, not a solver bug) — report it as such.
        LpStatus::Infeasible => return Err(ReapError::InfeasibleHorizon),
        status => {
            // The objective is bounded by full-time top-point operation,
            // so any other status means numerical trouble.
            return Err(ReapError::SolverInconsistency(format!(
                "horizon lp reported {status}"
            )));
        }
    }
    let values = solution.values();

    let mut schedules = Vec::with_capacity(horizon);
    let mut battery_trajectory = Vec::with_capacity(horizon);
    let mut spills = Vec::with_capacity(horizon);
    for h in 0..horizon {
        let allocations = problem
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| Allocation {
                point: p.clone(),
                duration: TimeSpan::from_seconds(values[h * stride + i]),
            })
            .collect();
        schedules.push(Schedule::new(
            allocations,
            TimeSpan::from_seconds(values[t_off_at(h)]),
            problem.period(),
            problem.off_power(),
        ));
        battery_trajectory.push(Energy::from_joules(values[b_at(h)].max(0.0)));
        spills.push(Energy::from_joules(values[s_at(h)].max(0.0)));
    }
    Ok(HorizonPlan {
        schedules,
        battery_trajectory,
        spills,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn paper_problem(alpha: f64) -> ReapProblem {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        ReapProblem::builder()
            .alpha(alpha)
            .points(
                specs
                    .iter()
                    .map(|&(id, a, mw)| {
                        OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw))
                            .unwrap()
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    fn joules(j: f64) -> Energy {
        Energy::from_joules(j)
    }

    #[test]
    fn validates_inputs() {
        let p = paper_problem(1.0);
        assert!(plan_horizon(&p, &[], joules(0.0), joules(60.0)).is_err());
        assert!(plan_horizon(&p, &[joules(-1.0)], joules(0.0), joules(60.0)).is_err());
        assert!(plan_horizon(&p, &[joules(1.0)], joules(70.0), joules(60.0)).is_err());
        assert!(plan_horizon(&p, &[joules(1.0)], joules(0.0), joules(0.0)).is_err());
    }

    #[test]
    fn single_period_matches_per_period_solver() {
        // With one period and no banking benefit, the horizon plan equals
        // the per-period REAP solve at budget = battery + harvest.
        let p = paper_problem(1.0);
        let plan = plan_horizon(&p, &[joules(5.0)], joules(0.0), joules(60.0)).unwrap();
        let single = p.solve(joules(5.0)).unwrap();
        assert!(
            (plan.total_objective(1.0) - single.objective(1.0)).abs() < 1e-9,
            "horizon {} vs single {}",
            plan.total_objective(1.0),
            single.objective(1.0)
        );
    }

    #[test]
    fn lookahead_beats_spend_as_harvested_on_daynight() {
        // A day/night forecast: 12 bright hours, 12 dark ones. Myopic
        // spend-as-harvested wastes the surplus; lookahead banks it.
        let p = paper_problem(1.0);
        let mut forecast = vec![joules(8.0); 12];
        forecast.extend(vec![joules(0.0); 12]);
        let plan = plan_horizon(&p, &forecast, joules(0.0), joules(60.0)).unwrap();

        let mut myopic_total = 0.0;
        for &e in &forecast {
            let budget = e.max(p.min_budget());
            // Myopic policy: spend only what the hour harvests.
            if e >= p.min_budget() {
                myopic_total += p.solve(budget).unwrap().objective(1.0);
            }
        }
        assert!(
            plan.total_objective(1.0) > myopic_total + 0.5,
            "lookahead {} vs myopic {}",
            plan.total_objective(1.0),
            myopic_total
        );
        // Night periods actually run (banked energy).
        let night_active: f64 = plan.schedules[12..]
            .iter()
            .map(|s| s.active_time().seconds())
            .sum();
        assert!(night_active > 3600.0, "night active = {night_active}");
    }

    #[test]
    fn battery_cap_forces_spill() {
        // A huge harvest with a tiny battery cannot all be banked.
        let p = paper_problem(1.0);
        let forecast = vec![joules(50.0), joules(0.0)];
        let plan = plan_horizon(&p, &forecast, joules(0.0), joules(5.0)).unwrap();
        let spilled: f64 = plan.spills.iter().map(|s| s.joules()).sum();
        assert!(spilled > 20.0, "spilled only {spilled} J");
        for (b, s) in plan.battery_trajectory.iter().zip(&plan.schedules) {
            assert!(b.joules() <= 5.0 + 1e-6);
            assert!(s.is_feasible(joules(100.0), 1e-6)); // time accounting holds
        }
    }

    #[test]
    fn energy_is_conserved_along_the_trajectory() {
        let p = paper_problem(1.0);
        let forecast = vec![joules(3.0), joules(6.0), joules(1.0), joules(0.5)];
        let b0 = joules(10.0);
        let cap = joules(30.0);
        let plan = plan_horizon(&p, &forecast, b0, cap).unwrap();
        let mut level = b0.joules();
        for h in 0..forecast.len() {
            let consumed = plan.schedules[h].energy().joules();
            let spilled = plan.spills[h].joules();
            level = level + forecast[h].joules() - consumed - spilled;
            assert!(
                (level - plan.battery_trajectory[h].joules()).abs() < 1e-6,
                "hour {h}: recomputed {level} vs planned {}",
                plan.battery_trajectory[h].joules()
            );
            assert!(level >= -1e-6);
        }
    }

    #[test]
    fn lookahead_never_loses_to_uniform_allocation() {
        // Splitting the total harvest uniformly is a feasible horizon
        // policy (given enough battery), so the optimal plan must match
        // or beat it.
        let p = paper_problem(2.0);
        let forecast = vec![joules(2.0), joules(7.0), joules(4.0), joules(0.0)];
        let total: f64 = forecast.iter().map(|e| e.joules()).sum();
        let plan = plan_horizon(&p, &forecast, joules(0.0), joules(1000.0)).unwrap();
        let per_hour = total / forecast.len() as f64;
        let uniform_total: f64 = (0..forecast.len())
            .map(|_| {
                p.solve(joules(per_hour.max(p.min_budget().joules())))
                    .unwrap()
                    .objective(2.0)
            })
            .sum();
        // Uniform ignores causality (it may spend before harvesting), so
        // only assert near-domination.
        assert!(
            plan.total_objective(2.0) >= uniform_total - 1e-6,
            "lookahead {} vs uniform {}",
            plan.total_objective(2.0),
            uniform_total
        );
    }
}
