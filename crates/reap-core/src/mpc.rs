//! The receding-horizon (MPC) runtime controller.
//!
//! [`plan_horizon`] solves the joint multi-period LP — the offline upper
//! bound. This module promotes it into a **runtime policy**: each period
//! the controller receives a harvest *forecast* window and the current
//! battery state, solves the joint LP over the window, executes only the
//! first period's schedule, and re-plans next period with the window slid
//! forward (receding horizon / model-predictive control).
//!
//! Two practicalities separate this from naively calling [`plan_horizon`]
//! in a loop:
//!
//! * **Warm starting.** After each solve the controller keeps the
//!   not-yet-executed tail of the plan together with the forecast it was
//!   solved against and the predicted battery trajectory. When the next
//!   call brings *no new information* — the window shrank by exactly the
//!   executed period (the shrinking-horizon endgame near the end of a
//!   trace), the remaining forecast is unchanged, and the battery landed
//!   where the plan predicted — the cached tail is provably still
//!   optimal and is executed without re-solving. Any deviation (new
//!   forecast entries, forecast revisions, brownouts) triggers a fresh
//!   solve.
//! * **Starvation fallback.** The joint LP forces every period to pay the
//!   off-state floor `P_off * TP`; a dark window with a dead battery
//!   makes it infeasible. A real device cannot throw an error at
//!   midnight, so the controller falls back to the all-off schedule (the
//!   engine's brownout accounting then records the shortfall honestly).

use std::collections::VecDeque;

use reap_units::Energy;

use crate::horizon::plan_horizon;
use crate::schedule::Schedule;
use crate::{ReapError, ReapProblem};

/// Absolute tolerance (J) for "the world evolved exactly as planned"
/// checks guarding tail reuse. Anything coarser risks executing a stale
/// plan; anything finer defeats reuse through harmless float noise.
const REUSE_TOLERANCE_J: f64 = 1e-9;

/// The cached remainder of the last solve: schedules not yet executed,
/// the forecast entries they were solved against, and the battery level
/// each of them expects to start from.
#[derive(Debug, Clone, PartialEq)]
struct PendingPlan {
    schedules: VecDeque<Schedule>,
    forecast_tail: Vec<Energy>,
    start_levels: VecDeque<Energy>,
}

/// Receding-horizon runtime controller (see module docs).
///
/// # Examples
///
/// ```
/// use reap_core::{OperatingPoint, ReapProblem, RecedingHorizonController};
/// use reap_units::{Energy, Power};
///
/// # fn main() -> Result<(), reap_core::ReapError> {
/// let problem = ReapProblem::builder()
///     .point(OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76))?)
///     .build()?;
/// let mut mpc = RecedingHorizonController::new(problem, 4)?;
/// // Bright now, dark later: the controller banks for the dark hours.
/// let forecast = [8.0, 0.0, 0.0, 0.0].map(Energy::from_joules);
/// let schedule = mpc.plan(&forecast, Energy::ZERO, Energy::from_joules(60.0))?;
/// assert!(schedule.energy().joules() < 8.0, "must bank for the night");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RecedingHorizonController {
    problem: ReapProblem,
    lookahead: usize,
    pending: Option<PendingPlan>,
    solves: u64,
    reuses: u64,
    fallbacks: u64,
}

impl RecedingHorizonController {
    /// Creates a controller that plans at most `lookahead` periods ahead.
    ///
    /// # Errors
    ///
    /// [`ReapError::InvalidParameter`] when `lookahead` is zero.
    pub fn new(
        problem: ReapProblem,
        lookahead: usize,
    ) -> Result<RecedingHorizonController, ReapError> {
        if lookahead == 0 {
            return Err(ReapError::InvalidParameter(
                "lookahead must be at least one period".into(),
            ));
        }
        Ok(RecedingHorizonController {
            problem,
            lookahead,
            pending: None,
            solves: 0,
            reuses: 0,
            fallbacks: 0,
        })
    }

    /// The underlying problem definition.
    #[must_use]
    pub fn problem(&self) -> &ReapProblem {
        &self.problem
    }

    /// The configured lookahead window length, in periods.
    #[must_use]
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// How many joint LPs have been solved so far.
    #[must_use]
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// How many periods were served from a cached plan tail without
    /// re-solving.
    #[must_use]
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many periods fell back to the all-off schedule because the
    /// window was infeasible (dark forecast, dead battery).
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Plans the next period against `forecast` (hour-by-hour expected
    /// harvests, starting with the period about to run; truncated to the
    /// configured lookahead) and the physical battery state.
    ///
    /// # Errors
    ///
    /// * [`ReapError::InvalidParameter`] for an empty forecast, negative
    ///   or non-finite forecast energies, or a battery state outside
    ///   `[0, capacity]`.
    /// * [`ReapError::Lp`] / [`ReapError::SolverInconsistency`] only on
    ///   numerical failure; infeasible (starved) windows are handled by
    ///   the all-off fallback, not an error.
    pub fn plan(
        &mut self,
        forecast: &[Energy],
        battery_level: Energy,
        battery_capacity: Energy,
    ) -> Result<Schedule, ReapError> {
        if forecast.is_empty() {
            return Err(ReapError::InvalidParameter("empty forecast".into()));
        }
        let window = &forecast[..forecast.len().min(self.lookahead)];

        if let Some(schedule) = self.try_reuse(window, battery_level) {
            self.reuses += 1;
            return Ok(schedule);
        }

        match plan_horizon(&self.problem, window, battery_level, battery_capacity) {
            Ok(plan) => {
                self.solves += 1;
                let mut schedules: VecDeque<Schedule> = plan.schedules.into();
                let first = schedules.pop_front().expect("window is non-empty");
                // The tail starts from the trajectory's planned levels:
                // entry h of the trajectory is the level *after* period h,
                // i.e. the level the (h+1)-th schedule expects to inherit.
                let mut start_levels: VecDeque<Energy> = plan.battery_trajectory.into();
                start_levels.pop_back();
                self.pending = Some(PendingPlan {
                    schedules,
                    forecast_tail: window[1..].to_vec(),
                    start_levels,
                });
                Ok(first)
            }
            Err(ReapError::InfeasibleHorizon) => {
                // Starved window: the device cannot even pay the
                // off-state floor everywhere. Go dark this period and
                // re-plan next period with whatever has been harvested.
                self.fallbacks += 1;
                self.pending = None;
                self.problem.solve(self.problem.min_budget())
            }
            // Invalid inputs are caller bugs and anything else is
            // genuine numerical trouble; both must surface, not be
            // papered over with a dark device.
            Err(e) => Err(e),
        }
    }

    /// Pops the cached tail if — and only if — the new window carries no
    /// information the cached plan did not already account for.
    fn try_reuse(&mut self, window: &[Energy], battery_level: Energy) -> Option<Schedule> {
        let pending = self.pending.as_mut()?;
        let matches = !pending.schedules.is_empty()
            && window.len() == pending.forecast_tail.len()
            && window
                .iter()
                .zip(&pending.forecast_tail)
                .all(|(a, b)| (a.joules() - b.joules()).abs() <= REUSE_TOLERANCE_J)
            && pending.start_levels.front().is_some_and(|&expected| {
                (expected.joules() - battery_level.joules()).abs() <= REUSE_TOLERANCE_J
            });
        if !matches {
            self.pending = None;
            return None;
        }
        pending.forecast_tail.remove(0);
        pending.start_levels.pop_front();
        pending.schedules.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horizon::HorizonPlan;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn paper_problem() -> ReapProblem {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        ReapProblem::builder()
            .points(
                specs
                    .iter()
                    .map(|&(id, a, mw)| {
                        OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw))
                            .unwrap()
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    fn joules(j: f64) -> Energy {
        Energy::from_joules(j)
    }

    #[test]
    fn rejects_degenerate_configuration_and_inputs() {
        assert!(RecedingHorizonController::new(paper_problem(), 0).is_err());
        let mut c = RecedingHorizonController::new(paper_problem(), 4).unwrap();
        assert!(c.plan(&[], joules(0.0), joules(60.0)).is_err());
        assert!(c.plan(&[joules(-1.0)], joules(0.0), joules(60.0)).is_err());
        assert!(c.plan(&[joules(1.0)], joules(99.0), joules(60.0)).is_err());
        assert_eq!(c.lookahead(), 4);
    }

    #[test]
    fn first_period_matches_the_joint_plan() {
        let mut c = RecedingHorizonController::new(paper_problem(), 24).unwrap();
        let forecast: Vec<Energy> = (0..24)
            .map(|h| joules(if (8..16).contains(&h) { 4.0 } else { 0.0 }))
            .collect();
        let joint = plan_horizon(&paper_problem(), &forecast, joules(10.0), joules(60.0)).unwrap();
        let first = c.plan(&forecast, joules(10.0), joules(60.0)).unwrap();
        assert_eq!(first, joint.schedules[0]);
        assert_eq!(c.solves(), 1);
    }

    #[test]
    fn forecast_is_truncated_to_the_lookahead() {
        let mut short = RecedingHorizonController::new(paper_problem(), 2).unwrap();
        let forecast = vec![joules(2.0), joules(2.0), joules(50.0), joules(50.0)];
        let a = short.plan(&forecast, joules(0.0), joules(60.0)).unwrap();
        let joint2 =
            plan_horizon(&paper_problem(), &forecast[..2], joules(0.0), joules(60.0)).unwrap();
        assert_eq!(a, joint2.schedules[0], "hours beyond lookahead ignored");
    }

    #[test]
    fn shrinking_window_reuses_the_tail_without_resolving() {
        // End-of-trace endgame: the window shrinks by one period per call
        // and the battery follows the plan exactly, so after the first
        // solve every period pops from the cached tail.
        let mut c = RecedingHorizonController::new(paper_problem(), 8).unwrap();
        let forecast: Vec<Energy> = vec![3.0, 1.0, 0.5, 0.0].into_iter().map(joules).collect();
        let cap = joules(60.0);
        let joint: HorizonPlan =
            plan_horizon(&paper_problem(), &forecast, joules(5.0), cap).unwrap();
        let mut level = joules(5.0);
        for h in 0..forecast.len() {
            let s = c.plan(&forecast[h..], level, cap).unwrap();
            assert_eq!(s, joint.schedules[h], "period {h} diverged from joint");
            // Ideal execution: level follows the planned trajectory.
            level = joint.battery_trajectory[h];
        }
        assert_eq!(c.solves(), 1, "only the first period should solve");
        assert_eq!(c.reuses(), 3, "the remaining periods pop the tail");
    }

    #[test]
    fn deviation_from_the_plan_forces_a_resolve() {
        let mut c = RecedingHorizonController::new(paper_problem(), 8).unwrap();
        let forecast: Vec<Energy> = vec![3.0, 1.0, 0.5].into_iter().map(joules).collect();
        let cap = joules(60.0);
        let _ = c.plan(&forecast, joules(5.0), cap).unwrap();
        // The battery did NOT land where the plan predicted (brownout,
        // efficiency losses, surprise clouds...): the tail is stale.
        let _ = c.plan(&forecast[1..], joules(0.3), cap).unwrap();
        assert_eq!(c.solves(), 2);
        assert_eq!(c.reuses(), 0);
    }

    #[test]
    fn sliding_window_always_resolves() {
        // A fixed-length window slid forward brings one new forecast hour
        // per period — new information, so no reuse is allowed.
        let mut c = RecedingHorizonController::new(paper_problem(), 3).unwrap();
        let forecast: Vec<Energy> = vec![2.0, 2.0, 2.0, 2.0, 2.0, 2.0]
            .into_iter()
            .map(joules)
            .collect();
        let cap = joules(60.0);
        let mut level = joules(10.0);
        for h in 0..3 {
            let s = c.plan(&forecast[h..h + 3], level, cap).unwrap();
            // Ideal execution.
            level = (level + forecast[h] - s.energy()).min(cap);
        }
        assert_eq!(c.solves(), 3);
        assert_eq!(c.reuses(), 0);
    }

    #[test]
    fn starved_window_falls_back_to_all_off() {
        let mut c = RecedingHorizonController::new(paper_problem(), 4).unwrap();
        // Pitch dark, dead battery: the joint LP is infeasible (the
        // off-state floor cannot be paid), but the controller must still
        // answer.
        let s = c
            .plan(&[Energy::ZERO; 4], Energy::ZERO, joules(60.0))
            .unwrap();
        assert!(s.allocations().iter().all(|a| a.duration.seconds() == 0.0));
        assert!((s.off_time().seconds() - 3600.0).abs() < 1e-6);
        assert_eq!(c.fallbacks(), 1);
        assert_eq!(c.solves(), 0);
        // Recovery: once energy returns, planning resumes normally.
        let s = c
            .plan(&[joules(5.0); 4], joules(1.0), joules(60.0))
            .unwrap();
        assert!(s.active_time().seconds() > 0.0);
        assert_eq!(c.solves(), 1);
    }

    #[test]
    fn banks_bright_hours_for_dark_ones() {
        let mut c = RecedingHorizonController::new(paper_problem(), 12).unwrap();
        let mut forecast = vec![joules(6.0); 4];
        forecast.extend(vec![Energy::ZERO; 8]);
        let s = c.plan(&forecast, joules(0.0), joules(60.0)).unwrap();
        // Myopically the first hour could spend all 6 J; lookahead must
        // leave most of it banked for the 8 dark hours.
        assert!(
            s.energy().joules() < 4.0,
            "first hour spent {} of the 6 J",
            s.energy()
        );
    }
}
