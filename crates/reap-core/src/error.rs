//! Error type for the REAP optimizer.

use std::error::Error;
use std::fmt;

use reap_lp::LpError;
use reap_units::Energy;

/// Errors produced while building or solving a REAP problem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReapError {
    /// The problem has no operating points.
    NoPoints,
    /// A parameter was out of its valid range (message explains which).
    InvalidParameter(String),
    /// The budget cannot even keep the harvesting/monitoring circuitry
    /// powered for the whole period (`Eb < P_off * TP`).
    BudgetTooSmall {
        /// The offending budget.
        budget: Energy,
        /// The minimum feasible budget `P_off * TP`.
        minimum: Energy,
    },
    /// The underlying LP solver failed (iteration limit or malformed
    /// problem — both indicate a bug or pathological input).
    Lp(LpError),
    /// The LP reported an unexpected status (e.g. unbounded), which
    /// cannot happen for a well-formed REAP instance; reported rather
    /// than panicking.
    SolverInconsistency(String),
    /// A multi-period horizon plan is infeasible: the battery plus the
    /// forecast harvest cannot pay the off-state floor `P_off * TP` of
    /// every period (a starved window). Recoverable — the receding-
    /// horizon controller answers it with the all-off schedule.
    InfeasibleHorizon,
    /// An operating-point id was not found in the problem.
    UnknownPoint {
        /// The id that was requested.
        id: u8,
    },
}

impl fmt::Display for ReapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReapError::NoPoints => write!(f, "problem has no operating points"),
            ReapError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ReapError::BudgetTooSmall { budget, minimum } => {
                write!(f, "budget {budget} is below the off-state floor {minimum}")
            }
            ReapError::Lp(e) => write!(f, "lp solver failed: {e}"),
            ReapError::SolverInconsistency(msg) => {
                write!(f, "solver produced an inconsistent result: {msg}")
            }
            ReapError::InfeasibleHorizon => write!(
                f,
                "horizon plan is infeasible: the window cannot pay the off-state floor"
            ),
            ReapError::UnknownPoint { id } => write!(f, "no operating point with id {id}"),
        }
    }
}

impl Error for ReapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReapError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LpError> for ReapError {
    fn from(e: LpError) -> Self {
        ReapError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ReapError::NoPoints.to_string().contains("no operating"));
        let e = ReapError::BudgetTooSmall {
            budget: Energy::from_joules(0.1),
            minimum: Energy::from_joules(0.18),
        };
        assert!(e.to_string().contains("0.18"));
        assert!(ReapError::UnknownPoint { id: 9 }.to_string().contains('9'));
        let lp = ReapError::from(LpError::EmptyObjective);
        assert!(Error::source(&lp).is_some());
    }
}
