//! The REAP runtime energy-accuracy optimizer.
//!
//! This crate implements the primary contribution of *REAP: Runtime
//! Energy-Accuracy Optimization for Energy Harvesting IoT Devices* (Bhat et
//! al., DAC 2019): given `N` design points with accuracies `a_i` and power
//! draws `P_i`, an off-state power `P_off`, an activity period `TP`, and an
//! energy budget `Eb`, find the time allocations `t_i` (and off time
//! `t_off`) that maximize the generalized objective
//!
//! ```text
//! J(t) = (1/TP) * sum_i a_i^alpha * t_i
//! s.t.  t_off + sum_i t_i = TP                (Eq. 2)
//!       P_off*t_off + sum_i P_i*t_i <= Eb     (Eq. 3)
//!       t_i >= 0                              (Eq. 4)
//! ```
//!
//! `alpha = 1` maximizes *expected accuracy*; `alpha = 0` maximizes *active
//! time*; larger `alpha` increasingly favours high-accuracy design points.
//!
//! Two solvers are provided and cross-checked against each other:
//!
//! * [`ReapProblem::solve`] — the paper's Algorithm 1, a tableau simplex
//!   (via the `reap-lp` crate);
//! * [`ReapProblem::solve_closed_form`] — an exact `O(N^2)` vertex search
//!   exploiting the fact that with two constraints an optimal basic
//!   solution mixes at most **two** design points.
//!
//! # Examples
//!
//! ```
//! use reap_core::{OperatingPoint, ReapProblem};
//! use reap_units::{Energy, Power, TimeSpan};
//!
//! # fn main() -> Result<(), reap_core::ReapError> {
//! // Table 2 of the paper: (accuracy, power) of the five Pareto DPs.
//! let table2 = [(0.94, 2.76), (0.93, 2.30), (0.92, 1.82), (0.90, 1.64), (0.76, 1.20)];
//! let points: Vec<OperatingPoint> = table2
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &(a, mw))| {
//!         OperatingPoint::new(i as u8 + 1, format!("DP{}", i + 1), a,
//!                             Power::from_milliwatts(mw))
//!     })
//!     .collect::<Result<_, _>>()?;
//!
//! let problem = ReapProblem::builder()
//!     .period(TimeSpan::from_hours(1.0))
//!     .off_power(Power::from_microwatts(50.0))
//!     .alpha(1.0)
//!     .points(points)
//!     .build()?;
//!
//! // At a 5 J budget the optimizer splits the hour between DP4 and DP5,
//! // exactly as reported in Sec. 5.2 of the paper (42% / 58%).
//! let schedule = problem.solve(Energy::from_joules(5.0))?;
//! assert!((schedule.fraction_for(4) - 0.42).abs() < 0.02);
//! assert!((schedule.fraction_for(5) - 0.58).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod explain;
mod frontier;
mod horizon;
mod mpc;
mod operating_point;
mod problem;
mod regions;
mod schedule;
mod solver;
mod static_policy;
mod sweep;

pub use controller::{ReapController, SolverKind};
pub use error::ReapError;
pub use explain::{explain, BindingConstraint, Explanation};
pub use frontier::{Decision, FrontierTable, PlanEval, PlanFrontier, PlanShare};
pub use horizon::{plan_horizon, HorizonPlan};
pub use mpc::RecedingHorizonController;
pub use operating_point::OperatingPoint;
pub use problem::{ReapProblem, ReapProblemBuilder};
pub use regions::{detect_regions, Region, RegionMap};
pub use schedule::{Allocation, Schedule};
pub use static_policy::static_schedule;
pub use sweep::{
    alpha_sweep, energy_shadow_price, energy_sweep, linspace, AlphaSweepPoint, SweepPoint,
};
