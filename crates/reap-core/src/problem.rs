//! The REAP optimization problem.

use std::sync::Arc;

use reap_units::{Energy, Power, TimeSpan};

use crate::frontier::PlanFrontier;
use crate::solver;
use crate::{OperatingPoint, ReapError, Schedule};

/// A fully specified instance of the REAP optimization problem
/// (Sec. 3.2 of the paper): operating points, activity period `TP`,
/// off-state power `P_off`, and trade-off exponent `alpha`.
///
/// The *energy budget* `Eb` is deliberately **not** part of the problem: it
/// changes every period as harvesting conditions change, and is passed to
/// [`ReapProblem::solve`] at runtime — exactly the paper's usage model.
///
/// Points are stored behind [`Arc`] so that schedules (which reference the
/// point they allocate time to) and problem clones (`with_alpha`, the sim
/// engine) share them instead of deep-copying labels on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct ReapProblem {
    points: Vec<Arc<OperatingPoint>>,
    period: TimeSpan,
    off_power: Power,
    alpha: f64,
}

/// Builder for [`ReapProblem`]. Defaults: one-hour period, 50 µW off-state
/// power, `alpha = 1` (expected accuracy).
#[derive(Debug, Clone)]
pub struct ReapProblemBuilder {
    points: Vec<OperatingPoint>,
    period: TimeSpan,
    off_power: Power,
    alpha: f64,
}

impl Default for ReapProblemBuilder {
    fn default() -> Self {
        ReapProblemBuilder {
            points: Vec::new(),
            period: TimeSpan::from_hours(1.0),
            off_power: Power::from_microwatts(50.0),
            alpha: 1.0,
        }
    }
}

impl ReapProblemBuilder {
    /// Sets the activity period `TP` (default: one hour).
    #[must_use]
    pub fn period(mut self, period: TimeSpan) -> Self {
        self.period = period;
        self
    }

    /// Sets the off-state power `P_off` (default: 50 µW, the paper's
    /// 0.18 J per hour).
    #[must_use]
    pub fn off_power(mut self, off_power: Power) -> Self {
        self.off_power = off_power;
        self
    }

    /// Sets the accuracy/active-time trade-off exponent `alpha`
    /// (default: 1).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Replaces the operating-point set.
    #[must_use]
    pub fn points(mut self, points: Vec<OperatingPoint>) -> Self {
        self.points = points;
        self
    }

    /// Adds one operating point.
    #[must_use]
    pub fn point(mut self, point: OperatingPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// * [`ReapError::NoPoints`] without at least one operating point.
    /// * [`ReapError::InvalidParameter`] for a non-positive period, a
    ///   negative or non-finite off power, a negative or non-finite
    ///   `alpha`, duplicate point ids, or a point whose power does not
    ///   exceed `P_off` (such a point would make "off" pointless and
    ///   signals a modelling error).
    pub fn build(self) -> Result<ReapProblem, ReapError> {
        if self.points.is_empty() {
            return Err(ReapError::NoPoints);
        }
        if !self.period.is_finite() || self.period.seconds() <= 0.0 {
            return Err(ReapError::InvalidParameter(format!(
                "period {} must be positive",
                self.period
            )));
        }
        if !self.off_power.is_finite() || self.off_power.is_negative() {
            return Err(ReapError::InvalidParameter(format!(
                "off power {} must be non-negative",
                self.off_power
            )));
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(ReapError::InvalidParameter(format!(
                "alpha {} must be finite and non-negative",
                self.alpha
            )));
        }
        for (i, a) in self.points.iter().enumerate() {
            for b in &self.points[i + 1..] {
                if a.id() == b.id() {
                    return Err(ReapError::InvalidParameter(format!(
                        "duplicate operating point id {}",
                        a.id()
                    )));
                }
            }
            if a.power() <= self.off_power {
                return Err(ReapError::InvalidParameter(format!(
                    "operating point {} draws {} which does not exceed the off power {}",
                    a.id(),
                    a.power(),
                    self.off_power
                )));
            }
        }
        Ok(ReapProblem {
            points: self.points.into_iter().map(Arc::new).collect(),
            period: self.period,
            off_power: self.off_power,
            alpha: self.alpha,
        })
    }
}

impl ReapProblem {
    /// Starts building a problem.
    #[must_use]
    pub fn builder() -> ReapProblemBuilder {
        ReapProblemBuilder::default()
    }

    /// The operating points (shared handles; deref to [`OperatingPoint`]).
    #[must_use]
    pub fn points(&self) -> &[Arc<OperatingPoint>] {
        &self.points
    }

    /// Looks up a point by id.
    ///
    /// # Errors
    ///
    /// [`ReapError::UnknownPoint`] when no point has this id.
    pub fn point(&self, id: u8) -> Result<&Arc<OperatingPoint>, ReapError> {
        self.points
            .iter()
            .find(|p| p.id() == id)
            .ok_or(ReapError::UnknownPoint { id })
    }

    /// The activity period `TP`.
    #[must_use]
    pub fn period(&self) -> TimeSpan {
        self.period
    }

    /// The off-state power `P_off`.
    #[must_use]
    pub fn off_power(&self) -> Power {
        self.off_power
    }

    /// The trade-off exponent `alpha`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Returns a copy of the problem with a different `alpha` (the paper
    /// notes user preferences may change `alpha` at runtime).
    #[must_use]
    pub fn with_alpha(&self, alpha: f64) -> ReapProblem {
        ReapProblem {
            alpha,
            ..self.clone()
        }
    }

    /// The minimum budget that keeps the device alive for the whole
    /// period: `P_off * TP` (0.18 J in the paper's setup).
    #[must_use]
    pub fn min_budget(&self) -> Energy {
        self.off_power * self.period
    }

    /// The budget beyond which the highest-power point can run all period
    /// long (9.9 J in the paper's setup); larger budgets change nothing.
    #[must_use]
    pub fn saturation_budget(&self) -> Energy {
        let p_max = self
            .points
            .iter()
            .map(|p| p.power())
            .fold(Power::ZERO, Power::max);
        p_max * self.period
    }

    /// Solves the problem for a given budget with the paper's Algorithm 1
    /// (tableau simplex).
    ///
    /// # Errors
    ///
    /// * [`ReapError::BudgetTooSmall`] when `budget < P_off * TP`.
    /// * [`ReapError::Lp`] / [`ReapError::SolverInconsistency`] on solver
    ///   failure (pathological inputs only).
    pub fn solve(&self, budget: Energy) -> Result<Schedule, ReapError> {
        solver::solve_simplex(self, budget)
    }

    /// Solves the problem exactly with the closed-form two-point vertex
    /// search (see crate docs). Used to cross-check the simplex and as a
    /// fast path for small `N`.
    ///
    /// # Errors
    ///
    /// [`ReapError::BudgetTooSmall`] when `budget < P_off * TP`.
    pub fn solve_closed_form(&self, budget: Energy) -> Result<Schedule, ReapError> {
        solver::solve_closed_form(self, budget)
    }

    /// Precomputes the full budget→schedule frontier for this problem's
    /// `(points, alpha)`, after which every solve is an `O(log K)` lookup
    /// (see [`PlanFrontier`]).
    #[must_use]
    pub fn frontier(&self) -> PlanFrontier {
        PlanFrontier::new(self)
    }

    /// Solves the problem at each budget via a single precomputed
    /// [`PlanFrontier`] — the batch API the sweeps, region detection, and
    /// figure binaries use instead of `budgets.len()` independent LP
    /// solves.
    ///
    /// # Errors
    ///
    /// [`ReapError::BudgetTooSmall`] for any budget below `P_off * TP`;
    /// [`ReapError::InvalidParameter`] for non-finite budgets.
    pub fn solve_many(&self, budgets: &[Energy]) -> Result<Vec<Schedule>, ReapError> {
        let frontier = self.frontier();
        budgets.iter().map(|&b| frontier.solve(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(id: u8, acc: f64, mw: f64) -> OperatingPoint {
        OperatingPoint::new(id, format!("DP{id}"), acc, Power::from_milliwatts(mw)).unwrap()
    }

    fn paper_problem() -> ReapProblem {
        ReapProblem::builder()
            .points(vec![
                point(1, 0.94, 2.76),
                point(2, 0.93, 2.30),
                point(3, 0.92, 1.82),
                point(4, 0.90, 1.64),
                point(5, 0.76, 1.20),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_match_paper() {
        let p = paper_problem();
        assert_eq!(p.period().seconds(), 3600.0);
        assert!((p.off_power().microwatts() - 50.0).abs() < 1e-9);
        assert_eq!(p.alpha(), 1.0);
        assert!((p.min_budget().joules() - 0.18).abs() < 1e-12);
        assert!((p.saturation_budget().joules() - 9.936).abs() < 1e-9);
    }

    #[test]
    fn builder_validation() {
        assert_eq!(
            ReapProblem::builder().build().unwrap_err(),
            ReapError::NoPoints
        );
        let dup = ReapProblem::builder()
            .point(point(1, 0.9, 1.0))
            .point(point(1, 0.8, 2.0))
            .build();
        assert!(matches!(dup, Err(ReapError::InvalidParameter(_))));
        let weak = ReapProblem::builder()
            .off_power(Power::from_milliwatts(5.0))
            .point(point(1, 0.9, 1.0))
            .build();
        assert!(matches!(weak, Err(ReapError::InvalidParameter(_))));
        let bad_alpha = ReapProblem::builder()
            .alpha(-1.0)
            .point(point(1, 0.9, 1.0))
            .build();
        assert!(matches!(bad_alpha, Err(ReapError::InvalidParameter(_))));
        let bad_period = ReapProblem::builder()
            .period(TimeSpan::ZERO)
            .point(point(1, 0.9, 1.0))
            .build();
        assert!(matches!(bad_period, Err(ReapError::InvalidParameter(_))));
    }

    #[test]
    fn point_lookup() {
        let p = paper_problem();
        assert_eq!(p.point(4).unwrap().id(), 4);
        assert_eq!(p.point(9).unwrap_err(), ReapError::UnknownPoint { id: 9 });
    }

    #[test]
    fn with_alpha_changes_only_alpha() {
        let p = paper_problem();
        let q = p.with_alpha(2.0);
        assert_eq!(q.alpha(), 2.0);
        assert_eq!(q.points(), p.points());
        assert_eq!(q.period(), p.period());
    }
}
