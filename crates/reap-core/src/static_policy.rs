//! Static single-design-point baselines.
//!
//! The paper compares REAP against "static design points": the device runs
//! one fixed DP, duty-cycling between that DP and the off state so the
//! period's energy budget is respected. This module computes that optimal
//! duty cycle, which is the strongest possible version of the baseline.

use reap_units::{Energy, TimeSpan};

use crate::schedule::Allocation;
use crate::{ReapError, ReapProblem, Schedule};

/// The schedule a *static* policy produces: run the point with `point_id`
/// for as long as the budget allows (up to the whole period), then turn
/// off.
///
/// The on-time solves `P_i*t + P_off*(TP - t) = Eb`, i.e.
/// `t = (Eb - P_off*TP) / (P_i - P_off)`, clamped to `[0, TP]`.
///
/// # Errors
///
/// * [`ReapError::UnknownPoint`] if `point_id` is not in the problem.
/// * [`ReapError::BudgetTooSmall`] when `budget < P_off * TP`.
pub fn static_schedule(
    problem: &ReapProblem,
    point_id: u8,
    budget: Energy,
) -> Result<Schedule, ReapError> {
    let point = problem.point(point_id)?.clone();
    if !budget.is_finite() {
        return Err(ReapError::InvalidParameter(format!(
            "budget {budget} is not finite"
        )));
    }
    let minimum = problem.min_budget();
    if budget.joules() < minimum.joules() * (1.0 - 1e-12) {
        return Err(ReapError::BudgetTooSmall { budget, minimum });
    }
    let tp = problem.period().seconds();
    let marginal = point.power().watts() - problem.off_power().watts();
    debug_assert!(marginal > 0.0, "validated at problem build time");
    let t_on = ((budget.joules() - minimum.joules()) / marginal).clamp(0.0, tp);
    Ok(Schedule::new(
        vec![Allocation {
            point,
            duration: TimeSpan::from_seconds(t_on),
        }],
        TimeSpan::from_seconds(tp - t_on),
        problem.period(),
        problem.off_power(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn paper_problem() -> ReapProblem {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        ReapProblem::builder()
            .points(
                specs
                    .iter()
                    .map(|&(id, a, mw)| {
                        OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw))
                            .unwrap()
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn duty_cycle_matches_hand_calculation() {
        let p = paper_problem();
        // DP1 at 3 J: t = (3 - 0.18) / (2.76e-3 - 50e-6) = 1040.6 s.
        let s = static_schedule(&p, 1, Energy::from_joules(3.0)).unwrap();
        assert!((s.active_time().seconds() - 1040.6).abs() < 1.0);
        assert!(s.is_feasible(Energy::from_joules(3.0), 1e-6));
        // Uses the full budget (the baseline is not wasteful).
        assert!((s.energy().joules() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn saturates_at_full_period() {
        let p = paper_problem();
        let s = static_schedule(&p, 5, Energy::from_joules(8.0)).unwrap();
        assert!((s.active_fraction() - 1.0).abs() < 1e-12);
        // DP5 all hour = 4.32 J, below the 8 J budget.
        assert!(s.energy().joules() < 8.0);
    }

    #[test]
    fn dp5_knee_is_at_4_32_joules() {
        // Fig. 5a: DP5 saturates when the budget reaches P5 * TP = 4.32 J.
        let p = paper_problem();
        let just_below = static_schedule(&p, 5, Energy::from_joules(4.25)).unwrap();
        let at_knee = static_schedule(&p, 5, Energy::from_joules(4.32)).unwrap();
        assert!(just_below.active_fraction() < 1.0);
        assert!((at_knee.active_fraction() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn errors_on_unknown_point_and_small_budget() {
        let p = paper_problem();
        assert!(matches!(
            static_schedule(&p, 42, Energy::from_joules(3.0)),
            Err(ReapError::UnknownPoint { id: 42 })
        ));
        assert!(matches!(
            static_schedule(&p, 1, Energy::from_joules(0.05)),
            Err(ReapError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn reap_never_loses_to_any_static_point() {
        let p = paper_problem();
        for b in [
            0.2, 0.5, 1.0, 2.0, 3.5, 4.32, 5.0, 6.0, 7.5, 9.0, 9.936, 11.0,
        ] {
            let budget = Energy::from_joules(b);
            let reap = p.solve(budget).unwrap();
            for point in p.points() {
                let stat = static_schedule(&p, point.id(), budget).unwrap();
                assert!(
                    reap.objective(1.0) >= stat.objective(1.0) - 1e-9,
                    "REAP lost to DP{} at {b} J: {} < {}",
                    point.id(),
                    reap.objective(1.0),
                    stat.objective(1.0)
                );
            }
        }
    }
}
