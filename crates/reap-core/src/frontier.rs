//! The precomputed budget→schedule frontier.
//!
//! The REAP LP has only two constraints, so its optimal value is a
//! *concave piecewise-linear* function of the energy budget, and the
//! optimal basis changes only at a handful of budget breakpoints (the
//! region boundaries of the paper's Fig. 5). This module precomputes that
//! structure once per `(points, alpha)` and answers every subsequent solve
//! with a binary search plus linear interpolation — `O(log K)` per call
//! with zero LP work.
//!
//! # Derivation
//!
//! Eliminate `t_off = TP - sum t_i` and divide by `TP`. Writing
//! `f_i = t_i / TP` for the fraction of the period spent at point `i`
//! (with `f_off` the off fraction), the problem becomes: choose a convex
//! combination of the "points" `(m_i, w_i)` — marginal power
//! `m_i = P_i - P_off` against objective weight `w_i = a_i^alpha` — plus
//! the off state `(0, 0)`, maximizing the combined weight subject to the
//! combined marginal power not exceeding `x = (Eb - P_off*TP) / TP`.
//!
//! The achievable set is the convex hull of `{(0,0)} ∪ {(m_i, w_i)}`, so
//! the optimum is the **upper concave hull** of those points evaluated at
//! `x`. Hull vertices are exactly the closed-form solver's vertex
//! schedules: "run one point for the whole period" (or stay off), and
//! every budget between two adjacent breakpoints mixes the two bracketing
//! vertices — which is why the LP optimum never activates more than two
//! points. Beyond the last vertex (the best-weight point) extra energy
//! buys nothing and the objective saturates.

use std::sync::Arc;

use reap_units::{Energy, Power, TimeSpan};

use crate::schedule::Allocation;
use crate::{OperatingPoint, ReapError, ReapProblem, Schedule};

/// One vertex of the concave frontier: a breakpoint budget together with
/// the full-period schedule that is optimal exactly there.
#[derive(Debug, Clone, PartialEq)]
struct FrontierVertex {
    /// Budget at which this vertex is the exact optimum (joules).
    budget_j: f64,
    /// Objective `J` at this vertex (`w_i`, or 0 for the off vertex).
    objective: f64,
    /// The point running the whole period here; `None` is the all-off
    /// vertex at the budget floor.
    point: Option<Arc<OperatingPoint>>,
}

/// Precomputed concave budget→schedule frontier for one `(points, alpha)`.
///
/// Construction is `O(N log N)` (sort + monotone hull scan); each
/// [`PlanFrontier::solve`] afterwards is `O(log K)` over the `K <= N + 1`
/// retained vertices and allocates nothing beyond the returned schedule's
/// one or two [`Allocation`]s. Equivalence with the tableau simplex is
/// enforced by unit and property tests (`|Δ objective| < 1e-9`).
///
/// The frontier is valid for the exact `(points, alpha, period, P_off)` it
/// was built from; [`ReapController`](crate::ReapController) caches one
/// and invalidates it when `set_alpha` changes the weights.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFrontier {
    vertices: Vec<FrontierVertex>,
    period: TimeSpan,
    off_power: Power,
    alpha: f64,
    min_budget_j: f64,
}

impl PlanFrontier {
    /// Builds the frontier for `problem` (infallible: the problem was
    /// validated at construction).
    #[must_use]
    pub fn new(problem: &ReapProblem) -> PlanFrontier {
        let tp = problem.period().seconds();
        let p_off = problem.off_power().watts();
        let alpha = problem.alpha();
        let min_budget_j = problem.min_budget().joules();

        // Candidates in (marginal power, weight) space, plus the off state
        // at the origin. Marginal powers are positive by construction
        // (problem validation rejects P_i <= P_off).
        let mut candidates: Vec<(f64, f64, Option<&Arc<OperatingPoint>>)> = problem
            .points()
            .iter()
            .map(|p| (p.power().watts() - p_off, p.weight(alpha), Some(p)))
            .collect();
        candidates.push((0.0, 0.0, None));
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite powers")
                .then(b.1.partial_cmp(&a.1).expect("finite weights"))
        });

        // Upper concave hull, monotone-scan style. Dominated points (no
        // weight gain for the extra power) never enter; interior points of
        // a segment are popped when the incoming slope stops decreasing.
        let mut hull: Vec<(f64, f64, Option<&Arc<OperatingPoint>>)> = Vec::new();
        for cand in candidates {
            if let Some(last) = hull.last() {
                // Strictly more power for no strictly better weight.
                if cand.1 <= last.1 {
                    continue;
                }
            }
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Keep b only if the slope a→b strictly exceeds b→cand.
                let keep = (b.1 - a.1) * (cand.0 - b.0) > (cand.1 - b.1) * (b.0 - a.0);
                if keep {
                    break;
                }
                hull.pop();
            }
            hull.push(cand);
        }

        let vertices = hull
            .into_iter()
            .map(|(m, w, p)| FrontierVertex {
                budget_j: min_budget_j + m * tp,
                objective: w,
                point: p.cloned(),
            })
            .collect();
        PlanFrontier {
            vertices,
            period: problem.period(),
            off_power: problem.off_power(),
            alpha,
            min_budget_j,
        }
    }

    /// The `alpha` the frontier was built for.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The breakpoint budgets, ascending. The first is the budget floor
    /// `P_off * TP`; the last is the saturation budget beyond which the
    /// objective is constant. Between two adjacent breakpoints the optimal
    /// basis is fixed and the schedule interpolates linearly.
    #[must_use]
    pub fn breakpoints(&self) -> Vec<Energy> {
        self.vertices
            .iter()
            .map(|v| Energy::from_joules(v.budget_j))
            .collect()
    }

    /// Number of frontier segments (breakpoints minus one).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Validates the budget and maps it to `(segment index, lambda)`:
    /// the optimum mixes `vertices[k]` (fraction `1 - lambda`) and
    /// `vertices[k + 1]` (fraction `lambda`). Saturated budgets clamp to
    /// the last vertex.
    fn locate(&self, budget: Energy) -> Result<(usize, f64), ReapError> {
        if !budget.is_finite() {
            return Err(ReapError::InvalidParameter(format!(
                "budget {budget} is not finite"
            )));
        }
        // Same float-dust tolerance as the other solvers: the paper
        // sweeps from exactly the 0.18 J floor.
        if budget.joules() < self.min_budget_j * (1.0 - 1e-12) {
            return Err(ReapError::BudgetTooSmall {
                budget,
                minimum: Energy::from_joules(self.min_budget_j),
            });
        }
        let b = budget.joules();
        let last = self.vertices.len() - 1;
        if last == 0 {
            // Degenerate frontier (every weight is zero): all-off is
            // optimal at every feasible budget.
            return Ok((0, 0.0));
        }
        if b >= self.vertices[last].budget_j {
            // Saturated: the last vertex runs the whole period.
            return Ok((last - 1, 1.0));
        }
        // First vertex with budget_j > b ends the bracketing segment.
        let hi_idx = self.vertices.partition_point(|v| v.budget_j <= b).max(1);
        let lo = &self.vertices[hi_idx - 1];
        let hi = &self.vertices[hi_idx];
        let lambda = ((b - lo.budget_j) / (hi.budget_j - lo.budget_j)).clamp(0.0, 1.0);
        Ok((hi_idx - 1, lambda))
    }

    /// Exact optimal objective `J` at `budget`, without materializing a
    /// schedule — the fast path for shadow-price probes and sweeps that
    /// only need the value function.
    ///
    /// # Errors
    ///
    /// Same as [`PlanFrontier::solve`].
    pub fn objective_at(&self, budget: Energy) -> Result<f64, ReapError> {
        let (k, lambda) = self.locate(budget)?;
        let lo = &self.vertices[k];
        let hi = &self.vertices[(k + 1).min(self.vertices.len() - 1)];
        Ok(lo.objective + lambda * (hi.objective - lo.objective))
    }

    /// Exact optimal schedule at `budget`: binary search for the segment,
    /// then linear interpolation between its two cached vertex schedules.
    ///
    /// # Errors
    ///
    /// * [`ReapError::BudgetTooSmall`] below the `P_off * TP` floor.
    /// * [`ReapError::InvalidParameter`] for a non-finite budget.
    pub fn solve(&self, budget: Energy) -> Result<Schedule, ReapError> {
        let (k, lambda) = self.locate(budget)?;
        let tp = self.period.seconds();
        let lo = &self.vertices[k];
        let hi = &self.vertices[(k + 1).min(self.vertices.len() - 1)];

        let mut allocations = Vec::with_capacity(2);
        let mut active = 0.0;
        if let Some(point) = &lo.point {
            let t = (1.0 - lambda) * tp;
            active += t;
            allocations.push(Allocation {
                point: Arc::clone(point),
                duration: TimeSpan::from_seconds(t),
            });
        }
        if lambda > 0.0 {
            if let Some(point) = &hi.point {
                let t = lambda * tp;
                active += t;
                allocations.push(Allocation {
                    point: Arc::clone(point),
                    duration: TimeSpan::from_seconds(t),
                });
            }
        }
        Ok(Schedule::new(
            allocations,
            TimeSpan::from_seconds((tp - active).max(0.0)),
            self.period,
            self.off_power,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(id: u8, acc: f64, mw: f64) -> OperatingPoint {
        OperatingPoint::new(id, format!("DP{id}"), acc, Power::from_milliwatts(mw)).unwrap()
    }

    fn paper_problem(alpha: f64) -> ReapProblem {
        ReapProblem::builder()
            .alpha(alpha)
            .points(vec![
                point(1, 0.94, 2.76),
                point(2, 0.93, 2.30),
                point(3, 0.92, 1.82),
                point(4, 0.90, 1.64),
                point(5, 0.76, 1.20),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn breakpoints_span_floor_to_saturation() {
        let p = paper_problem(1.0);
        let f = p.frontier();
        let bp = f.breakpoints();
        assert!(bp.len() >= 2);
        assert!((bp[0].joules() - p.min_budget().joules()).abs() < 1e-12);
        // The last breakpoint is where the best-weight point (DP1 at
        // alpha = 1) fills the period: exactly the saturation budget.
        assert!((bp.last().unwrap().joules() - p.saturation_budget().joules()).abs() < 1e-9);
        for w in bp.windows(2) {
            assert!(w[0] < w[1], "breakpoints not ascending: {bp:?}");
        }
        assert_eq!(f.segments(), bp.len() - 1);
    }

    #[test]
    fn matches_simplex_everywhere_including_breakpoints() {
        for alpha in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let p = paper_problem(alpha);
            let f = p.frontier();
            let mut budgets: Vec<f64> = vec![0.18, 0.5, 1.0, 3.0, 4.3, 5.0, 6.5, 9.936, 12.0];
            // Exactly at and just around every breakpoint.
            for b in f.breakpoints() {
                budgets.push(b.joules());
                budgets.push(b.joules() + 1e-6);
                budgets.push((b.joules() - 1e-6).max(p.min_budget().joules()));
            }
            for b in budgets {
                let budget = Energy::from_joules(b);
                let simplex = p.solve(budget).unwrap();
                let fast = f.solve(budget).unwrap();
                assert!(
                    (simplex.objective(alpha) - fast.objective(alpha)).abs() < 1e-9,
                    "alpha {alpha} budget {b}: simplex {} vs frontier {}",
                    simplex.objective(alpha),
                    fast.objective(alpha)
                );
                assert!(fast.is_feasible(budget, 1e-6), "infeasible at {b} J");
                assert!(
                    (f.objective_at(budget).unwrap() - fast.objective(alpha)).abs() < 1e-12,
                    "objective_at disagrees with solve at {b} J"
                );
            }
        }
    }

    #[test]
    fn mixes_at_most_two_points_and_respects_regions() {
        let p = paper_problem(1.0);
        let f = p.frontier();
        // Region 1: DP5 alone, duty-cycled.
        let s3 = f.solve(Energy::from_joules(3.0)).unwrap();
        assert_eq!(s3.allocations().len(), 1);
        assert_eq!(s3.allocations()[0].point.id(), 5);
        assert!(s3.off_time().seconds() > 0.0);
        // Region 2: the paper's 5 J checkpoint mixes DP4/DP5 42%/58%.
        let s5 = f.solve(Energy::from_joules(5.0)).unwrap();
        assert_eq!(s5.allocations().len(), 2);
        assert!((s5.fraction_for(4) - 0.42).abs() < 0.02);
        assert!((s5.fraction_for(5) - 0.58).abs() < 0.02);
        // Saturation: DP1 all period, and more budget changes nothing.
        let sat = f.solve(Energy::from_joules(11.0)).unwrap();
        assert!((sat.fraction_for(1) - 1.0).abs() < 1e-9);
        assert_eq!(sat, f.solve(Energy::from_joules(500.0)).unwrap());
    }

    #[test]
    fn rejects_bad_budgets() {
        let f = paper_problem(1.0).frontier();
        assert!(matches!(
            f.solve(Energy::from_joules(0.1)),
            Err(ReapError::BudgetTooSmall { .. })
        ));
        assert!(matches!(
            f.solve(Energy::from_joules(f64::NAN)),
            Err(ReapError::InvalidParameter(_))
        ));
        assert!(f.objective_at(Energy::from_joules(0.1)).is_err());
    }

    #[test]
    fn solve_many_equals_individual_solves() {
        let p = paper_problem(2.0);
        let budgets: Vec<Energy> = [0.18, 1.0, 4.0, 7.0, 12.0]
            .iter()
            .map(|&j| Energy::from_joules(j))
            .collect();
        let batch = p.solve_many(&budgets).unwrap();
        for (b, s) in budgets.iter().zip(&batch) {
            assert_eq!(s, &p.frontier().solve(*b).unwrap());
            assert!((s.objective(2.0) - p.solve(*b).unwrap().objective(2.0)).abs() < 1e-9);
        }
        // One bad budget fails the whole batch.
        assert!(p.solve_many(&[Energy::from_joules(0.01)]).is_err());
    }

    #[test]
    fn zero_weight_frontier_degenerates_to_off() {
        // accuracy 0 with alpha > 0 gives every point zero weight; the
        // frontier collapses to the off vertex and stays optimal (the
        // objective is 0 no matter what runs).
        let p = ReapProblem::builder()
            .alpha(2.0)
            .point(OperatingPoint::new(1, "Z", 0.0, Power::from_milliwatts(1.0)).unwrap())
            .build()
            .unwrap();
        let f = p.frontier();
        let s = f.solve(Energy::from_joules(5.0)).unwrap();
        assert!(s.allocations().is_empty());
        assert_eq!(f.objective_at(Energy::from_joules(5.0)).unwrap(), 0.0);
        assert_eq!(
            s.objective(2.0),
            p.solve(Energy::from_joules(5.0)).unwrap().objective(2.0)
        );
    }

    #[test]
    fn dominated_and_duplicate_points_are_pruned() {
        // DP "bad" costs more power for less weight; "twin" duplicates
        // DP "good"'s power with lower accuracy. Neither may appear.
        let p = ReapProblem::builder()
            .points(vec![
                point(1, 0.90, 1.5),
                OperatingPoint::new(2, "bad", 0.5, Power::from_milliwatts(2.5)).unwrap(),
                OperatingPoint::new(3, "twin", 0.7, Power::from_milliwatts(1.5)).unwrap(),
            ])
            .build()
            .unwrap();
        let f = p.frontier();
        for b in [0.5, 2.0, 4.0, 6.0] {
            let s = f.solve(Energy::from_joules(b)).unwrap();
            for a in s.allocations() {
                assert_eq!(a.point.id(), 1, "dominated point ran at {b} J");
            }
            let simplex = p.solve(Energy::from_joules(b)).unwrap();
            assert!((s.objective(1.0) - simplex.objective(1.0)).abs() < 1e-9);
        }
    }
}
