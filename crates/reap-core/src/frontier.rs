//! The precomputed budget→schedule frontier.
//!
//! The REAP LP has only two constraints, so its optimal value is a
//! *concave piecewise-linear* function of the energy budget, and the
//! optimal basis changes only at a handful of budget breakpoints (the
//! region boundaries of the paper's Fig. 5). This module precomputes that
//! structure once per `(points, alpha)` and answers every subsequent solve
//! with a binary search plus linear interpolation — `O(log K)` per call
//! with zero LP work.
//!
//! # Derivation
//!
//! Eliminate `t_off = TP - sum t_i` and divide by `TP`. Writing
//! `f_i = t_i / TP` for the fraction of the period spent at point `i`
//! (with `f_off` the off fraction), the problem becomes: choose a convex
//! combination of the "points" `(m_i, w_i)` — marginal power
//! `m_i = P_i - P_off` against objective weight `w_i = a_i^alpha` — plus
//! the off state `(0, 0)`, maximizing the combined weight subject to the
//! combined marginal power not exceeding `x = (Eb - P_off*TP) / TP`.
//!
//! The achievable set is the convex hull of `{(0,0)} ∪ {(m_i, w_i)}`, so
//! the optimum is the **upper concave hull** of those points evaluated at
//! `x`. Hull vertices are exactly the closed-form solver's vertex
//! schedules: "run one point for the whole period" (or stay off), and
//! every budget between two adjacent breakpoints mixes the two bracketing
//! vertices — which is why the LP optimum never activates more than two
//! points. Beyond the last vertex (the best-weight point) extra energy
//! buys nothing and the objective saturates.

use std::sync::Arc;

use reap_units::{Energy, Power, TimeSpan};

use crate::schedule::Allocation;
use crate::{OperatingPoint, ReapError, ReapProblem, Schedule};

/// One vertex of the concave frontier: a breakpoint budget together with
/// the full-period schedule that is optimal exactly there.
#[derive(Debug, Clone, PartialEq)]
struct FrontierVertex {
    /// Budget at which this vertex is the exact optimum (joules).
    budget_j: f64,
    /// Objective `J` at this vertex (`w_i`, or 0 for the off vertex).
    objective: f64,
    /// The point running the whole period here; `None` is the all-off
    /// vertex at the budget floor.
    point: Option<Arc<OperatingPoint>>,
}

/// Precomputed concave budget→schedule frontier for one `(points, alpha)`.
///
/// Construction is `O(N log N)` (sort + monotone hull scan); each
/// [`PlanFrontier::solve`] afterwards is `O(log K)` over the `K <= N + 1`
/// retained vertices and allocates nothing beyond the returned schedule's
/// one or two [`Allocation`]s. Equivalence with the tableau simplex is
/// enforced by unit and property tests (`|Δ objective| < 1e-9`).
///
/// The frontier is valid for the exact `(points, alpha, period, P_off)` it
/// was built from; [`ReapController`](crate::ReapController) caches one
/// and invalidates it when `set_alpha` changes the weights.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFrontier {
    vertices: Vec<FrontierVertex>,
    period: TimeSpan,
    off_power: Power,
    alpha: f64,
    min_budget_j: f64,
}

impl PlanFrontier {
    /// Builds the frontier for `problem` (infallible: the problem was
    /// validated at construction).
    #[must_use]
    pub fn new(problem: &ReapProblem) -> PlanFrontier {
        let tp = problem.period().seconds();
        let p_off = problem.off_power().watts();
        let alpha = problem.alpha();
        let min_budget_j = problem.min_budget().joules();

        // Candidates in (marginal power, weight) space, plus the off state
        // at the origin. Marginal powers are positive by construction
        // (problem validation rejects P_i <= P_off).
        let mut candidates: Vec<(f64, f64, Option<&Arc<OperatingPoint>>)> = problem
            .points()
            .iter()
            .map(|p| (p.power().watts() - p_off, p.weight(alpha), Some(p)))
            .collect();
        candidates.push((0.0, 0.0, None));
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite powers")
                .then(b.1.partial_cmp(&a.1).expect("finite weights"))
        });

        // Upper concave hull, monotone-scan style. Dominated points (no
        // weight gain for the extra power) never enter; interior points of
        // a segment are popped when the incoming slope stops decreasing.
        let mut hull: Vec<(f64, f64, Option<&Arc<OperatingPoint>>)> = Vec::new();
        for cand in candidates {
            if let Some(last) = hull.last() {
                // Strictly more power for no strictly better weight.
                if cand.1 <= last.1 {
                    continue;
                }
            }
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Keep b only if the slope a→b strictly exceeds b→cand.
                let keep = (b.1 - a.1) * (cand.0 - b.0) > (cand.1 - b.1) * (b.0 - a.0);
                if keep {
                    break;
                }
                hull.pop();
            }
            hull.push(cand);
        }

        let vertices = hull
            .into_iter()
            .map(|(m, w, p)| FrontierVertex {
                budget_j: min_budget_j + m * tp,
                objective: w,
                point: p.cloned(),
            })
            .collect();
        PlanFrontier {
            vertices,
            period: problem.period(),
            off_power: problem.off_power(),
            alpha,
            min_budget_j,
        }
    }

    /// The `alpha` the frontier was built for.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The breakpoint budgets, ascending. The first is the budget floor
    /// `P_off * TP`; the last is the saturation budget beyond which the
    /// objective is constant. Between two adjacent breakpoints the optimal
    /// basis is fixed and the schedule interpolates linearly.
    #[must_use]
    pub fn breakpoints(&self) -> Vec<Energy> {
        self.vertices
            .iter()
            .map(|v| Energy::from_joules(v.budget_j))
            .collect()
    }

    /// Number of frontier segments (breakpoints minus one).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Validates the budget and maps it to `(segment index, lambda)`:
    /// the optimum mixes `vertices[k]` (fraction `1 - lambda`) and
    /// `vertices[k + 1]` (fraction `lambda`). Saturated budgets clamp to
    /// the last vertex.
    fn locate(&self, budget: Energy) -> Result<(usize, f64), ReapError> {
        if !budget.is_finite() {
            return Err(ReapError::InvalidParameter(format!(
                "budget {budget} is not finite"
            )));
        }
        // Same float-dust tolerance as the other solvers: the paper
        // sweeps from exactly the 0.18 J floor.
        if budget.joules() < self.min_budget_j * (1.0 - 1e-12) {
            return Err(ReapError::BudgetTooSmall {
                budget,
                minimum: Energy::from_joules(self.min_budget_j),
            });
        }
        let b = budget.joules();
        let last = self.vertices.len() - 1;
        if last == 0 {
            // Degenerate frontier (every weight is zero): all-off is
            // optimal at every feasible budget.
            return Ok((0, 0.0));
        }
        if b >= self.vertices[last].budget_j {
            // Saturated: the last vertex runs the whole period.
            return Ok((last - 1, 1.0));
        }
        // First vertex with budget_j > b ends the bracketing segment.
        let hi_idx = self.vertices.partition_point(|v| v.budget_j <= b).max(1);
        let lo = &self.vertices[hi_idx - 1];
        let hi = &self.vertices[hi_idx];
        let lambda = ((b - lo.budget_j) / (hi.budget_j - lo.budget_j)).clamp(0.0, 1.0);
        Ok((hi_idx - 1, lambda))
    }

    /// Exact optimal objective `J` at `budget`, without materializing a
    /// schedule — the fast path for shadow-price probes and sweeps that
    /// only need the value function.
    ///
    /// # Errors
    ///
    /// Same as [`PlanFrontier::solve`].
    pub fn objective_at(&self, budget: Energy) -> Result<f64, ReapError> {
        let (k, lambda) = self.locate(budget)?;
        let lo = &self.vertices[k];
        let hi = &self.vertices[(k + 1).min(self.vertices.len() - 1)];
        Ok(lo.objective + lambda * (hi.objective - lo.objective))
    }

    /// Exact optimal schedule at `budget`: binary search for the segment,
    /// then linear interpolation between its two cached vertex schedules.
    ///
    /// # Errors
    ///
    /// * [`ReapError::BudgetTooSmall`] below the `P_off * TP` floor.
    /// * [`ReapError::InvalidParameter`] for a non-finite budget.
    pub fn solve(&self, budget: Energy) -> Result<Schedule, ReapError> {
        let (k, lambda) = self.locate(budget)?;
        let tp = self.period.seconds();
        let lo = &self.vertices[k];
        let hi = &self.vertices[(k + 1).min(self.vertices.len() - 1)];

        let mut allocations = Vec::with_capacity(2);
        let mut active = 0.0;
        if let Some(point) = &lo.point {
            let t = (1.0 - lambda) * tp;
            active += t;
            allocations.push(Allocation {
                point: Arc::clone(point),
                duration: TimeSpan::from_seconds(t),
            });
        }
        if lambda > 0.0 {
            if let Some(point) = &hi.point {
                let t = lambda * tp;
                active += t;
                allocations.push(Allocation {
                    point: Arc::clone(point),
                    duration: TimeSpan::from_seconds(t),
                });
            }
        }
        Ok(Schedule::new(
            allocations,
            TimeSpan::from_seconds((tp - active).max(0.0)),
            self.period,
            self.off_power,
        ))
    }
}

/// Scalar outcome of one frontier evaluation: exactly the aggregates the
/// corresponding [`Schedule`] would report, without materializing the
/// schedule (no allocations, no `Arc` clones).
///
/// Produced by [`FrontierTable::eval`]; the field arithmetic replicates
/// [`Schedule::expected_accuracy`], [`Schedule::active_time`], and
/// [`Schedule::energy`] term for term (including the sub-microsecond
/// allocation drop rule), so fleet engines that only need per-hour scalars
/// can skip schedule construction entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanEval {
    /// Expected accuracy of the optimal schedule over the period.
    pub accuracy: f64,
    /// Active time of the optimal schedule, in seconds.
    pub active_s: f64,
    /// Total energy the optimal schedule consumes (active + off-state),
    /// in joules.
    pub energy_j: f64,
}

/// One operating point's share of a decided plan: run point `id` for
/// `seconds` of the period.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanShare {
    /// The operating point's id.
    pub id: u8,
    /// Seconds of the period spent at this point.
    pub seconds: f64,
}

/// A complete single-user allocation decision from a cached frontier:
/// the plan aggregates plus the blend of (at most two) operating points
/// realizing them. Produced by [`FrontierTable::decide`]; `Copy` and
/// heap-free so serving it costs one table walk and nothing else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The plan aggregates, bit-identical to [`FrontierTable::eval`].
    pub eval: PlanEval,
    /// Seconds of the period spent in the off state.
    pub off_s: f64,
    shares: [PlanShare; 2],
    n_shares: u8,
}

impl Decision {
    /// The point shares of the blend (ascending point id, length 0–2).
    #[must_use]
    pub fn shares(&self) -> &[PlanShare] {
        &self.shares[..usize::from(self.n_shares)]
    }
}

/// Flat, pointer-free image of a [`PlanFrontier`] for batched scalar
/// evaluation: per-vertex `f64` columns instead of `Arc<OperatingPoint>`
/// references, so a hot loop evaluating thousands of cached frontiers
/// touches only contiguous memory.
///
/// Built once per `(points, alpha)` cohort with [`PlanFrontier::table`];
/// each [`FrontierTable::eval`] afterwards is a short linear scan over the
/// `K <= N + 1` breakpoints (frontiers are tiny — a handful of vertices —
/// so the scan beats binary search) followed by the same interpolation
/// [`PlanFrontier::solve`] performs.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierTable {
    /// Breakpoint budgets, ascending (`budgets[0]` is the floor).
    budgets: Vec<f64>,
    /// Vertex point accuracy (0 for the all-off vertex).
    acc: Vec<f64>,
    /// Vertex point power draw in watts (0 for the all-off vertex).
    power_w: Vec<f64>,
    /// Vertex point id (0 for the all-off vertex).
    id: Vec<u8>,
    /// Whether the vertex runs a point (`false` = the all-off vertex).
    has_point: Vec<bool>,
    tp_s: f64,
    off_w: f64,
    min_budget_j: f64,
}

impl PlanFrontier {
    /// Flattens the frontier into a [`FrontierTable`] for batched
    /// pointer-free evaluation.
    #[must_use]
    pub fn table(&self) -> FrontierTable {
        let n = self.vertices.len();
        let mut t = FrontierTable {
            budgets: Vec::with_capacity(n),
            acc: Vec::with_capacity(n),
            power_w: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
            has_point: Vec::with_capacity(n),
            tp_s: self.period.seconds(),
            off_w: self.off_power.watts(),
            min_budget_j: self.min_budget_j,
        };
        for v in &self.vertices {
            t.budgets.push(v.budget_j);
            match &v.point {
                Some(p) => {
                    t.acc.push(p.accuracy());
                    t.power_w.push(p.power().watts());
                    t.id.push(p.id());
                    t.has_point.push(true);
                }
                None => {
                    t.acc.push(0.0);
                    t.power_w.push(0.0);
                    t.id.push(0);
                    t.has_point.push(false);
                }
            }
        }
        t
    }
}

impl FrontierTable {
    /// The budget floor `P_off * TP` in joules (the first breakpoint).
    #[must_use]
    pub fn min_budget_j(&self) -> f64 {
        self.min_budget_j
    }

    /// The saturation budget (the last breakpoint) in joules: every
    /// budget at or above it buys the same plan, so callers may cache
    /// `eval(max_budget_j())` and reuse it for any richer budget.
    ///
    /// # Panics
    ///
    /// Panics on an empty table (never produced by [`PlanFrontier::table`],
    /// which always retains the off vertex).
    #[must_use]
    pub fn max_budget_j(&self) -> f64 {
        *self.budgets.last().expect("tables retain the off vertex")
    }

    /// Number of frontier breakpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// The `k`-th breakpoint as
    /// `(budget_j, accuracy, power_w, id, has_point)` — the raw columns,
    /// exported so batched callers can re-pack many cohorts' tables into
    /// one contiguous arena.
    ///
    /// # Panics
    ///
    /// Panics when `k >= len()`.
    #[must_use]
    pub fn vertex(&self, k: usize) -> (f64, f64, f64, u8, bool) {
        (
            self.budgets[k],
            self.acc[k],
            self.power_w[k],
            self.id[k],
            self.has_point[k],
        )
    }

    /// `true` when the table has no breakpoints (never happens for tables
    /// built from a valid frontier, which always retains the off vertex).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Evaluates the optimal plan at `budget_j`, returning the schedule
    /// aggregates bit-for-bit equal to running
    /// [`ReapController::plan`](crate::ReapController::plan) and reading
    /// them off the returned [`Schedule`].
    ///
    /// Sub-floor (and non-finite) budgets clamp up to the floor, exactly
    /// like the controller's `budget.max(min_budget())` entry clamp —
    /// which is why this is infallible where [`PlanFrontier::solve`] is
    /// not: the controller never lets an out-of-domain budget reach the
    /// frontier.
    #[must_use]
    pub fn eval(&self, budget_j: f64) -> PlanEval {
        self.decide(budget_j).eval
    }

    /// Single-user decide: the plan aggregates **plus** the (at most two)
    /// per-point time shares of the optimal blend, without allocating —
    /// the serving hot path, where a resident daemon answers
    /// `Decide {user}` from a cached cohort frontier and needs the full
    /// allocation (which points, for how long) rather than only the
    /// aggregates.
    ///
    /// The aggregate arithmetic is shared with [`FrontierTable::eval`]
    /// (which delegates here), so `decide(b).eval == eval(b)` bit for
    /// bit, and the shares are exactly the allocations
    /// [`PlanFrontier::solve`] would return after its sub-microsecond
    /// drop rule, in ascending point-id order.
    #[must_use]
    pub fn decide(&self, budget_j: f64) -> Decision {
        // `f64::max` maps NaN to the floor too, matching `Energy::max`.
        let b = budget_j.max(self.min_budget_j);
        let last = self.budgets.len() - 1;
        let (k, lambda) = if last == 0 {
            (0, 0.0)
        } else if b >= self.budgets[last] {
            (last - 1, 1.0)
        } else {
            // First vertex with budget > b; the scan mirrors `locate`'s
            // `partition_point(..).max(1)`.
            let mut hi = 1;
            while hi < last && self.budgets[hi] <= b {
                hi += 1;
            }
            let lo_b = self.budgets[hi - 1];
            (
                hi - 1,
                ((b - lo_b) / (self.budgets[hi] - lo_b)).clamp(0.0, 1.0),
            )
        };
        let hi_idx = (k + 1).min(last);
        let tp = self.tp_s;

        // Durations exactly as `PlanFrontier::solve` pushes them; the off
        // time complements the *raw* active time (drops below come after).
        let mut n = 0usize;
        let mut dur = [0.0f64; 2];
        let mut acc = [0.0f64; 2];
        let mut pow = [0.0f64; 2];
        let mut ids = [0u8; 2];
        let mut active_raw = 0.0;
        if self.has_point[k] {
            let t = (1.0 - lambda) * tp;
            active_raw += t;
            dur[n] = t;
            acc[n] = self.acc[k];
            pow[n] = self.power_w[k];
            ids[n] = self.id[k];
            n = 1;
        }
        if lambda > 0.0 && self.has_point[hi_idx] {
            let t = lambda * tp;
            active_raw += t;
            dur[n] = t;
            acc[n] = self.acc[hi_idx];
            pow[n] = self.power_w[hi_idx];
            ids[n] = self.id[hi_idx];
            n += 1;
        }
        let off_s = (tp - active_raw).max(0.0);

        // `Schedule::new` sorts by point id and drops sub-microsecond
        // allocations; the sums below run in the same (id) order.
        if n == 2 && ids[1] < ids[0] {
            dur.swap(0, 1);
            acc.swap(0, 1);
            pow.swap(0, 1);
            ids.swap(0, 1);
        }
        let mut accuracy = 0.0;
        let mut active_s = 0.0;
        let mut active_e = 0.0;
        let mut shares = [PlanShare {
            id: 0,
            seconds: 0.0,
        }; 2];
        let mut m = 0usize;
        for j in 0..n {
            if dur[j] > 1e-6 {
                accuracy += acc[j] * (dur[j] / tp);
                active_s += dur[j];
                active_e += pow[j] * dur[j];
                shares[m] = PlanShare {
                    id: ids[j],
                    seconds: dur[j],
                };
                m += 1;
            }
        }
        Decision {
            eval: PlanEval {
                accuracy,
                active_s,
                energy_j: active_e + self.off_w * off_s,
            },
            off_s,
            shares,
            n_shares: m as u8,
        }
    }

    /// Batched [`FrontierTable::eval`]: evaluates every budget in
    /// `budgets_j` against the one cached frontier — the vectorized
    /// `solve_many`-style entry point for cohort-deduplicated fleets.
    #[must_use]
    pub fn eval_many(&self, budgets_j: &[f64]) -> Vec<PlanEval> {
        budgets_j.iter().map(|&b| self.eval(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(id: u8, acc: f64, mw: f64) -> OperatingPoint {
        OperatingPoint::new(id, format!("DP{id}"), acc, Power::from_milliwatts(mw)).unwrap()
    }

    fn paper_problem(alpha: f64) -> ReapProblem {
        ReapProblem::builder()
            .alpha(alpha)
            .points(vec![
                point(1, 0.94, 2.76),
                point(2, 0.93, 2.30),
                point(3, 0.92, 1.82),
                point(4, 0.90, 1.64),
                point(5, 0.76, 1.20),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn breakpoints_span_floor_to_saturation() {
        let p = paper_problem(1.0);
        let f = p.frontier();
        let bp = f.breakpoints();
        assert!(bp.len() >= 2);
        assert!((bp[0].joules() - p.min_budget().joules()).abs() < 1e-12);
        // The last breakpoint is where the best-weight point (DP1 at
        // alpha = 1) fills the period: exactly the saturation budget.
        assert!((bp.last().unwrap().joules() - p.saturation_budget().joules()).abs() < 1e-9);
        for w in bp.windows(2) {
            assert!(w[0] < w[1], "breakpoints not ascending: {bp:?}");
        }
        assert_eq!(f.segments(), bp.len() - 1);
    }

    #[test]
    fn matches_simplex_everywhere_including_breakpoints() {
        for alpha in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let p = paper_problem(alpha);
            let f = p.frontier();
            let mut budgets: Vec<f64> = vec![0.18, 0.5, 1.0, 3.0, 4.3, 5.0, 6.5, 9.936, 12.0];
            // Exactly at and just around every breakpoint.
            for b in f.breakpoints() {
                budgets.push(b.joules());
                budgets.push(b.joules() + 1e-6);
                budgets.push((b.joules() - 1e-6).max(p.min_budget().joules()));
            }
            for b in budgets {
                let budget = Energy::from_joules(b);
                let simplex = p.solve(budget).unwrap();
                let fast = f.solve(budget).unwrap();
                assert!(
                    (simplex.objective(alpha) - fast.objective(alpha)).abs() < 1e-9,
                    "alpha {alpha} budget {b}: simplex {} vs frontier {}",
                    simplex.objective(alpha),
                    fast.objective(alpha)
                );
                assert!(fast.is_feasible(budget, 1e-6), "infeasible at {b} J");
                assert!(
                    (f.objective_at(budget).unwrap() - fast.objective(alpha)).abs() < 1e-12,
                    "objective_at disagrees with solve at {b} J"
                );
            }
        }
    }

    #[test]
    fn mixes_at_most_two_points_and_respects_regions() {
        let p = paper_problem(1.0);
        let f = p.frontier();
        // Region 1: DP5 alone, duty-cycled.
        let s3 = f.solve(Energy::from_joules(3.0)).unwrap();
        assert_eq!(s3.allocations().len(), 1);
        assert_eq!(s3.allocations()[0].point.id(), 5);
        assert!(s3.off_time().seconds() > 0.0);
        // Region 2: the paper's 5 J checkpoint mixes DP4/DP5 42%/58%.
        let s5 = f.solve(Energy::from_joules(5.0)).unwrap();
        assert_eq!(s5.allocations().len(), 2);
        assert!((s5.fraction_for(4) - 0.42).abs() < 0.02);
        assert!((s5.fraction_for(5) - 0.58).abs() < 0.02);
        // Saturation: DP1 all period, and more budget changes nothing.
        let sat = f.solve(Energy::from_joules(11.0)).unwrap();
        assert!((sat.fraction_for(1) - 1.0).abs() < 1e-9);
        assert_eq!(sat, f.solve(Energy::from_joules(500.0)).unwrap());
    }

    #[test]
    fn rejects_bad_budgets() {
        let f = paper_problem(1.0).frontier();
        assert!(matches!(
            f.solve(Energy::from_joules(0.1)),
            Err(ReapError::BudgetTooSmall { .. })
        ));
        assert!(matches!(
            f.solve(Energy::from_joules(f64::NAN)),
            Err(ReapError::InvalidParameter(_))
        ));
        assert!(f.objective_at(Energy::from_joules(0.1)).is_err());
    }

    #[test]
    fn solve_many_equals_individual_solves() {
        let p = paper_problem(2.0);
        let budgets: Vec<Energy> = [0.18, 1.0, 4.0, 7.0, 12.0]
            .iter()
            .map(|&j| Energy::from_joules(j))
            .collect();
        let batch = p.solve_many(&budgets).unwrap();
        for (b, s) in budgets.iter().zip(&batch) {
            assert_eq!(s, &p.frontier().solve(*b).unwrap());
            assert!((s.objective(2.0) - p.solve(*b).unwrap().objective(2.0)).abs() < 1e-9);
        }
        // One bad budget fails the whole batch.
        assert!(p.solve_many(&[Energy::from_joules(0.01)]).is_err());
    }

    #[test]
    fn zero_weight_frontier_degenerates_to_off() {
        // accuracy 0 with alpha > 0 gives every point zero weight; the
        // frontier collapses to the off vertex and stays optimal (the
        // objective is 0 no matter what runs).
        let p = ReapProblem::builder()
            .alpha(2.0)
            .point(OperatingPoint::new(1, "Z", 0.0, Power::from_milliwatts(1.0)).unwrap())
            .build()
            .unwrap();
        let f = p.frontier();
        let s = f.solve(Energy::from_joules(5.0)).unwrap();
        assert!(s.allocations().is_empty());
        assert_eq!(f.objective_at(Energy::from_joules(5.0)).unwrap(), 0.0);
        assert_eq!(
            s.objective(2.0),
            p.solve(Energy::from_joules(5.0)).unwrap().objective(2.0)
        );
    }

    #[test]
    fn table_eval_matches_solve_bit_for_bit() {
        // The table is the fleet hot path: its scalars must equal reading
        // the aggregates off the controller's schedule exactly — same
        // ops, same order — across alphas, budgets, breakpoints, the
        // saturated tail, and the sub-floor clamp.
        for alpha in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let p = paper_problem(alpha);
            let f = p.frontier();
            let t = f.table();
            assert_eq!(t.len(), f.breakpoints().len());
            assert!(!t.is_empty());
            assert_eq!(t.min_budget_j(), p.min_budget().joules());
            let mut budgets: Vec<f64> = vec![0.18, 0.19, 1.0, 3.7, 5.0, 9.936, 20.0];
            for b in f.breakpoints() {
                for d in [-1e-9, 0.0, 1e-9] {
                    budgets.push(b.joules() + d);
                }
            }
            // Sub-floor budgets clamp like the controller's entry clamp.
            budgets.push(0.0);
            budgets.push(0.05);
            for b in budgets {
                let mut controller =
                    crate::ReapController::with_solver(p.clone(), crate::SolverKind::Frontier);
                let s = controller.plan(Energy::from_joules(b)).unwrap();
                let e = t.eval(b);
                assert_eq!(e.accuracy, s.expected_accuracy(), "accuracy at {b} J");
                assert_eq!(e.active_s, s.active_time().seconds(), "active at {b} J");
                assert_eq!(e.energy_j, s.energy().joules(), "energy at {b} J");
            }
        }
    }

    #[test]
    fn table_decide_shares_match_solve_allocations() {
        // The decide path must serve exactly the schedule `solve` would
        // build: same point ids, same durations (post drop rule,
        // ascending id), same off time — and its aggregates are the
        // `eval` scalars by construction (eval delegates to decide).
        for alpha in [0.5, 1.0, 2.0] {
            let p = paper_problem(alpha);
            let f = p.frontier();
            let t = f.table();
            let mut budgets: Vec<f64> = vec![0.18, 1.0, 3.0, 5.0, 9.936, 20.0];
            for b in f.breakpoints() {
                budgets.push(b.joules());
                budgets.push(b.joules() + 1e-7);
            }
            for b in budgets {
                let d = t.decide(b);
                assert_eq!(d.eval, t.eval(b), "aggregates diverged at {b} J");
                let s = f
                    .solve(Energy::from_joules(b.max(t.min_budget_j())))
                    .unwrap();
                let allocs = s.allocations();
                assert_eq!(d.shares().len(), allocs.len(), "share count at {b} J");
                for (share, alloc) in d.shares().iter().zip(allocs) {
                    assert_eq!(share.id, alloc.point.id(), "point id at {b} J");
                    assert_eq!(share.seconds, alloc.duration.seconds(), "duration at {b} J");
                }
                assert_eq!(d.off_s, s.off_time().seconds(), "off time at {b} J");
            }
        }
    }

    #[test]
    fn table_eval_many_matches_eval() {
        let t = paper_problem(1.0).frontier().table();
        let budgets = [0.18, 2.5, 5.0, 12.0];
        let batch = t.eval_many(&budgets);
        assert_eq!(batch.len(), budgets.len());
        for (&b, e) in budgets.iter().zip(&batch) {
            assert_eq!(*e, t.eval(b));
        }
    }

    #[test]
    fn table_eval_handles_degenerate_frontiers() {
        // Zero-weight frontier: single off vertex, every budget yields
        // the all-off plan (off-state energy only).
        let p = ReapProblem::builder()
            .alpha(2.0)
            .point(OperatingPoint::new(1, "Z", 0.0, Power::from_milliwatts(1.0)).unwrap())
            .build()
            .unwrap();
        let t = p.frontier().table();
        let e = t.eval(5.0);
        assert_eq!(e.accuracy, 0.0);
        assert_eq!(e.active_s, 0.0);
        let s = p.frontier().solve(Energy::from_joules(5.0)).unwrap();
        assert_eq!(e.energy_j, s.energy().joules());
        // NaN budgets clamp to the floor, matching `Energy::max`.
        assert_eq!(t.eval(f64::NAN), t.eval(t.min_budget_j()));
    }

    #[test]
    fn dominated_and_duplicate_points_are_pruned() {
        // DP "bad" costs more power for less weight; "twin" duplicates
        // DP "good"'s power with lower accuracy. Neither may appear.
        let p = ReapProblem::builder()
            .points(vec![
                point(1, 0.90, 1.5),
                OperatingPoint::new(2, "bad", 0.5, Power::from_milliwatts(2.5)).unwrap(),
                OperatingPoint::new(3, "twin", 0.7, Power::from_milliwatts(1.5)).unwrap(),
            ])
            .build()
            .unwrap();
        let f = p.frontier();
        for b in [0.5, 2.0, 4.0, 6.0] {
            let s = f.solve(Energy::from_joules(b)).unwrap();
            for a in s.allocations() {
                assert_eq!(a.point.id(), 1, "dominated point ran at {b} J");
            }
            let simplex = p.solve(Energy::from_joules(b)).unwrap();
            assert!((s.objective(1.0) - simplex.objective(1.0)).abs() < 1e-9);
        }
    }
}
