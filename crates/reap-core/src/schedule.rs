//! Schedules: the optimizer's output.

use std::fmt;
use std::sync::Arc;

use reap_units::{Energy, Power, TimeSpan};

use crate::OperatingPoint;

/// Time allocated to one operating point within an activity period.
///
/// The point is held behind an [`Arc`] shared with the owning
/// [`ReapProblem`](crate::ReapProblem), so building a schedule never deep-
/// copies point labels — planning loops construct thousands of schedules
/// per simulated month.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The operating point being used.
    pub point: Arc<OperatingPoint>,
    /// How long it runs during the period.
    pub duration: TimeSpan,
}

/// A complete plan for one activity period `TP`: how long to run each
/// operating point and how long to stay off.
///
/// Produced by [`ReapProblem::solve`](crate::ReapProblem::solve) (the REAP
/// policy) or [`static_schedule`](crate::static_schedule) (the single-DP
/// duty-cycling baselines).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    allocations: Vec<Allocation>,
    off_time: TimeSpan,
    period: TimeSpan,
    off_power: Power,
}

impl Schedule {
    /// Assembles a schedule. Allocations with durations below 1 µs are
    /// dropped as numerical noise.
    pub(crate) fn new(
        mut allocations: Vec<Allocation>,
        off_time: TimeSpan,
        period: TimeSpan,
        off_power: Power,
    ) -> Schedule {
        allocations.retain(|a| a.duration.seconds() > 1e-6);
        allocations.sort_by_key(|a| a.point.id());
        Schedule {
            allocations,
            off_time: TimeSpan::from_seconds(off_time.seconds().max(0.0)),
            period,
            off_power,
        }
    }

    /// The non-zero allocations, sorted by operating-point id.
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Time spent in the off state.
    #[must_use]
    pub fn off_time(&self) -> TimeSpan {
        self.off_time
    }

    /// The activity period `TP` this schedule plans.
    #[must_use]
    pub fn period(&self) -> TimeSpan {
        self.period
    }

    /// Total active time `sum_i t_i`.
    #[must_use]
    pub fn active_time(&self) -> TimeSpan {
        self.allocations.iter().map(|a| a.duration).sum()
    }

    /// Active time as a fraction of the period, in `[0, 1]`.
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        self.active_time() / self.period
    }

    /// Expected accuracy over the period: `(1/TP) sum_i a_i t_i`
    /// (Sec. 3.2 of the paper). Off time contributes zero.
    #[must_use]
    pub fn expected_accuracy(&self) -> f64 {
        // `+ 0.0` normalizes the -0.0 that summing an empty iterator
        // produces.
        self.allocations
            .iter()
            .map(|a| a.point.accuracy() * (a.duration / self.period))
            .sum::<f64>()
            + 0.0
    }

    /// The generalized objective `J(t) = (1/TP) sum_i a_i^alpha t_i`
    /// (Eq. 1).
    #[must_use]
    pub fn objective(&self, alpha: f64) -> f64 {
        self.allocations
            .iter()
            .map(|a| a.point.weight(alpha) * (a.duration / self.period))
            .sum::<f64>()
            + 0.0
    }

    /// Total energy the schedule consumes, including the off-state power.
    #[must_use]
    pub fn energy(&self) -> Energy {
        let active: Energy = self
            .allocations
            .iter()
            .map(|a| a.point.power() * a.duration)
            .sum();
        active + self.off_power * self.off_time
    }

    /// Fraction of the period allocated to the point with `id` (0 when the
    /// point is unused).
    #[must_use]
    pub fn fraction_for(&self, id: u8) -> f64 {
        self.allocations
            .iter()
            .filter(|a| a.point.id() == id)
            .map(|a| a.duration / self.period)
            .sum::<f64>()
            + 0.0
    }

    /// `true` when time accounting is consistent (allocations plus off time
    /// equal the period) and the energy fits within `budget`, both within
    /// tolerance `tol_seconds` / `tol` relative energy.
    #[must_use]
    pub fn is_feasible(&self, budget: Energy, tol: f64) -> bool {
        let total_time = self.active_time() + self.off_time;
        let time_ok = (total_time.seconds() - self.period.seconds()).abs()
            <= tol * self.period.seconds().max(1.0);
        let energy_ok = self.energy().joules() <= budget.joules() * (1.0 + tol) + tol;
        time_ok && energy_ok
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule over {} (expected accuracy {:.1}%, active {:.1}%):",
            self.period,
            self.expected_accuracy() * 100.0,
            self.active_fraction() * 100.0
        )?;
        for a in &self.allocations {
            writeln!(
                f,
                "  {:<18} {:>10}  ({:.1}% of period)",
                a.point.label(),
                a.duration.to_string(),
                (a.duration / self.period) * 100.0
            )?;
        }
        write!(f, "  {:<18} {:>10}", "off", self.off_time.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(id: u8, acc: f64, mw: f64) -> Arc<OperatingPoint> {
        Arc::new(
            OperatingPoint::new(id, format!("DP{id}"), acc, Power::from_milliwatts(mw)).unwrap(),
        )
    }

    fn hour() -> TimeSpan {
        TimeSpan::from_hours(1.0)
    }

    fn p_off() -> Power {
        Power::from_microwatts(50.0)
    }

    fn example() -> Schedule {
        Schedule::new(
            vec![
                Allocation {
                    point: point(4, 0.90, 1.64),
                    duration: TimeSpan::from_seconds(1512.0),
                },
                Allocation {
                    point: point(5, 0.76, 1.20),
                    duration: TimeSpan::from_seconds(2088.0),
                },
            ],
            TimeSpan::ZERO,
            hour(),
            p_off(),
        )
    }

    #[test]
    fn accounting_is_consistent() {
        let s = example();
        assert!((s.active_time().seconds() - 3600.0).abs() < 1e-9);
        assert!((s.active_fraction() - 1.0).abs() < 1e-12);
        let expected_acc = (0.90 * 1512.0 + 0.76 * 2088.0) / 3600.0;
        assert!((s.expected_accuracy() - expected_acc).abs() < 1e-12);
        // alpha = 0 objective is the active fraction.
        assert!((s.objective(0.0) - 1.0).abs() < 1e-12);
        // alpha = 1 objective is the expected accuracy.
        assert!((s.objective(1.0) - expected_acc).abs() < 1e-12);
    }

    #[test]
    fn energy_includes_off_state() {
        let s = Schedule::new(
            vec![Allocation {
                point: point(1, 0.94, 2.76),
                duration: TimeSpan::from_seconds(1800.0),
            }],
            TimeSpan::from_seconds(1800.0),
            hour(),
            p_off(),
        );
        let expect = 2.76e-3 * 1800.0 + 50e-6 * 1800.0;
        assert!((s.energy().joules() - expect).abs() < 1e-9);
    }

    #[test]
    fn tiny_allocations_are_dropped() {
        let s = Schedule::new(
            vec![Allocation {
                point: point(1, 0.9, 1.0),
                duration: TimeSpan::from_seconds(1e-9),
            }],
            hour(),
            hour(),
            p_off(),
        );
        assert!(s.allocations().is_empty());
        assert_eq!(s.fraction_for(1), 0.0);
    }

    #[test]
    fn fraction_for_unknown_point_is_zero() {
        assert_eq!(example().fraction_for(99), 0.0);
    }

    #[test]
    fn feasibility_check() {
        let s = example();
        let used = s.energy();
        assert!(s.is_feasible(used, 1e-9));
        assert!(s.is_feasible(used + Energy::from_joules(1.0), 1e-9));
        assert!(!s.is_feasible(used - Energy::from_joules(1.0), 1e-9));
    }

    #[test]
    fn display_lists_points_and_off() {
        let text = example().to_string();
        assert!(text.contains("DP4"));
        assert!(text.contains("DP5"));
        assert!(text.contains("off"));
    }

    #[test]
    fn negative_off_time_is_clamped() {
        let s = Schedule::new(vec![], TimeSpan::from_seconds(-1e-9), hour(), p_off());
        assert!(s.off_time().seconds() >= 0.0);
    }

    #[test]
    fn empty_schedule_metrics_are_positive_zero() {
        let s = Schedule::new(vec![], hour(), hour(), p_off());
        assert!(s.expected_accuracy().is_sign_positive());
        assert_eq!(s.expected_accuracy(), 0.0);
        assert!(s.objective(1.0).is_sign_positive());
        assert!(s.fraction_for(1).is_sign_positive());
    }
}
