//! The two REAP solvers: tableau simplex (Algorithm 1) and the closed-form
//! vertex search.

// Index-based loops below mirror the textbook linear-algebra notation;
// iterator rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use reap_lp::{LpProblem, LpStatus, Relation};
use reap_units::{Energy, TimeSpan};

use crate::schedule::Allocation;
use crate::{ReapError, ReapProblem, Schedule};

/// Checks the budget floor shared by both solvers.
fn check_budget(problem: &ReapProblem, budget: Energy) -> Result<(), ReapError> {
    if !budget.is_finite() {
        return Err(ReapError::InvalidParameter(format!(
            "budget {budget} is not finite"
        )));
    }
    let minimum = problem.min_budget();
    // Tolerate float dust right at the floor (the paper sweeps from
    // exactly 0.18 J).
    if budget.joules() < minimum.joules() * (1.0 - 1e-12) {
        return Err(ReapError::BudgetTooSmall { budget, minimum });
    }
    Ok(())
}

/// Solves the REAP LP with the tableau simplex, mirroring the paper's
/// Algorithm 1 (build tableau, add slacks, pivot until the cost row has no
/// positive entry).
pub(crate) fn solve_simplex(problem: &ReapProblem, budget: Energy) -> Result<Schedule, ReapError> {
    check_budget(problem, budget)?;
    let n = problem.points().len();
    let tp = problem.period().seconds();
    let alpha = problem.alpha();

    // Variables: [t_1 .. t_N, t_off] in seconds.
    // Objective (Eq. 1): maximize (1/TP) sum a_i^alpha t_i, with t_off at
    // zero weight. The coefficients are normalized by the largest weight:
    // large alpha can push a^alpha below the simplex tolerance, and a
    // uniform positive rescaling never changes the argmax.
    let weights: Vec<f64> = problem.points().iter().map(|p| p.weight(alpha)).collect();
    let w_max = weights.iter().cloned().fold(0.0f64, f64::max);
    let scale = if w_max > 0.0 { 1.0 / (w_max * tp) } else { 1.0 };
    let mut objective: Vec<f64> = weights.iter().map(|w| w * scale).collect();
    objective.push(0.0);

    let mut lp = LpProblem::try_new_maximize(&objective)?;

    // Eq. 2: sum t_i + t_off = TP.
    let ones = vec![1.0; n + 1];
    lp.subject_to(&ones, Relation::Eq, tp)?;

    // Eq. 3: sum P_i t_i + P_off t_off <= Eb (watts * seconds = joules).
    let mut powers: Vec<f64> = problem.points().iter().map(|p| p.power().watts()).collect();
    powers.push(problem.off_power().watts());
    lp.subject_to(&powers, Relation::Le, budget.joules())?;

    let solution = lp.solve()?;
    match solution.status() {
        LpStatus::Optimal => {}
        other => {
            // A REAP instance with Eb >= P_off*TP always has the feasible
            // point "all off", and the objective is bounded by max a^alpha.
            return Err(ReapError::SolverInconsistency(format!(
                "lp reported {other} for a well-formed REAP instance"
            )));
        }
    }

    let values = solution.values();
    let allocations = problem
        .points()
        .iter()
        .zip(values)
        .map(|(p, &t)| Allocation {
            point: p.clone(),
            duration: TimeSpan::from_seconds(t),
        })
        .collect();
    Ok(Schedule::new(
        allocations,
        TimeSpan::from_seconds(values[n]),
        problem.period(),
        problem.off_power(),
    ))
}

/// Exact closed-form solver.
///
/// Eliminating `t_off = TP - sum t_i` reduces the problem to two
/// inequality constraints over `t >= 0`:
///
/// ```text
/// maximize sum w_i t_i
/// s.t.     sum (P_i - P_off) t_i <= Eb - P_off*TP  =: E'
///          sum t_i <= TP
/// ```
///
/// Any basic optimal solution activates at most two points, so scanning
/// all singles (one constraint tight) and pairs (both tight) visits every
/// vertex of the feasible region. `O(N^2)` with tiny constants.
pub(crate) fn solve_closed_form(
    problem: &ReapProblem,
    budget: Energy,
) -> Result<Schedule, ReapError> {
    check_budget(problem, budget)?;
    let tp = problem.period().seconds();
    let p_off = problem.off_power().watts();
    let e_prime = budget.joules() - p_off * tp; // >= 0 after check_budget
    let alpha = problem.alpha();
    let points = problem.points();
    let weights: Vec<f64> = points.iter().map(|p| p.weight(alpha)).collect();
    let marginal: Vec<f64> = points.iter().map(|p| p.power().watts() - p_off).collect();

    // Candidate allocations as (index, seconds) pairs.
    let mut best: Option<(f64, Vec<(usize, f64)>)> = None;
    let mut consider = |cand: &[(usize, f64)]| {
        if cand.iter().any(|&(_, t)| t < -1e-9) {
            return;
        }
        let total: f64 = cand.iter().map(|&(_, t)| t).sum();
        if total > tp * (1.0 + 1e-12) {
            return;
        }
        let energy: f64 = cand.iter().map(|&(i, t)| marginal[i] * t).sum();
        if energy > e_prime * (1.0 + 1e-9) + 1e-12 {
            return;
        }
        let value: f64 = cand.iter().map(|&(i, t)| weights[i] * t).sum::<f64>() / tp;
        if best.as_ref().is_none_or(|(bv, _)| value > *bv) {
            best = Some((value, cand.to_vec()));
        }
    };

    // The all-off vertex.
    consider(&[]);

    // Singles: energy-limited or time-limited.
    for i in 0..points.len() {
        let t_energy = if marginal[i] > 1e-15 {
            e_prime / marginal[i]
        } else {
            f64::INFINITY
        };
        let t = t_energy.min(tp);
        consider(&[(i, t)]);
    }

    // Pairs with both constraints tight:
    //   t_i + t_j = TP
    //   m_i t_i + m_j t_j = E'
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let det = marginal[i] - marginal[j];
            if det.abs() < 1e-15 {
                continue; // equal marginal powers: singles already cover it
            }
            let ti = (e_prime - marginal[j] * tp) / det;
            let tj = tp - ti;
            consider(&[(i, ti), (j, tj)]);
        }
    }

    let (_, chosen) = best.expect("the all-off vertex is always feasible");
    let allocations: Vec<Allocation> = chosen
        .iter()
        .map(|&(i, t)| Allocation {
            point: points[i].clone(),
            duration: TimeSpan::from_seconds(t.max(0.0)),
        })
        .collect();
    let active: f64 = chosen.iter().map(|&(_, t)| t.max(0.0)).sum();
    Ok(Schedule::new(
        allocations,
        TimeSpan::from_seconds((tp - active).max(0.0)),
        problem.period(),
        problem.off_power(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn point(id: u8, acc: f64, mw: f64) -> OperatingPoint {
        OperatingPoint::new(id, format!("DP{id}"), acc, Power::from_milliwatts(mw)).unwrap()
    }

    fn paper_problem(alpha: f64) -> ReapProblem {
        ReapProblem::builder()
            .alpha(alpha)
            .points(vec![
                point(1, 0.94, 2.76),
                point(2, 0.93, 2.30),
                point(3, 0.92, 1.82),
                point(4, 0.90, 1.64),
                point(5, 0.76, 1.20),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn budget_floor_is_enforced() {
        let p = paper_problem(1.0);
        let err = p.solve(Energy::from_joules(0.1)).unwrap_err();
        assert!(matches!(err, ReapError::BudgetTooSmall { .. }));
        // Exactly at the floor: a valid all-off schedule.
        let s = p.solve(Energy::from_joules(0.18)).unwrap();
        assert!(s.allocations().is_empty());
        assert!((s.off_time().seconds() - 3600.0).abs() < 1e-6);
    }

    #[test]
    fn paper_checkpoint_5j_splits_dp4_dp5() {
        let p = paper_problem(1.0);
        for schedule in [
            p.solve(Energy::from_joules(5.0)).unwrap(),
            p.solve_closed_form(Energy::from_joules(5.0)).unwrap(),
        ] {
            assert!(
                (schedule.fraction_for(4) - 0.42).abs() < 0.02,
                "DP4 fraction {}",
                schedule.fraction_for(4)
            );
            assert!(
                (schedule.fraction_for(5) - 0.58).abs() < 0.02,
                "DP5 fraction {}",
                schedule.fraction_for(5)
            );
            assert!(schedule.is_feasible(Energy::from_joules(5.0), 1e-6));
        }
    }

    #[test]
    fn saturation_reduces_to_dp1() {
        // Beyond 9.9 J there is enough energy to run DP1 all period; with
        // alpha = 1 the optimizer should do exactly that (Sec. 5.2).
        let p = paper_problem(1.0);
        let s = p.solve(Energy::from_joules(10.5)).unwrap();
        assert!((s.fraction_for(1) - 1.0).abs() < 1e-6);
        assert!((s.expected_accuracy() - 0.94).abs() < 1e-9);
    }

    #[test]
    fn region1_uses_lowest_energy_point() {
        // At 3 J the time constraint is slack; everything goes to the
        // point with the best accuracy-per-joule (DP5), giving REAP its
        // 2.3x active-time advantage over DP1 (Fig. 5b).
        let p = paper_problem(1.0);
        let s = p.solve(Energy::from_joules(3.0)).unwrap();
        assert_eq!(s.allocations().len(), 1);
        assert_eq!(s.allocations()[0].point.id(), 5);
        let expected_active = (3.0 - 0.18) / (1.20e-3 - 50e-6);
        assert!((s.active_time().seconds() - expected_active).abs() < 1.0);
    }

    #[test]
    fn alpha2_matches_dp4_below_6j() {
        // Fig. 6: with alpha = 2 and Eb < 6 J, DP4 is the best static DP
        // and REAP matches it by running DP4 alone.
        let p = paper_problem(2.0);
        let s = p.solve(Energy::from_joules(5.0)).unwrap();
        assert_eq!(s.allocations().len(), 1);
        assert_eq!(s.allocations()[0].point.id(), 4);
    }

    #[test]
    fn alpha_zero_maximizes_active_time() {
        // With alpha = 0 every point weighs 1, so the cheapest point wins
        // and active time is maximized.
        let p = paper_problem(0.0);
        let s = p.solve(Energy::from_joules(3.0)).unwrap();
        assert_eq!(s.allocations()[0].point.id(), 5);
        let s_rich = p.solve(Energy::from_joules(6.0)).unwrap();
        assert!((s_rich.active_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn both_solvers_agree_across_budgets_and_alphas() {
        for alpha in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let p = paper_problem(alpha);
            for b in [0.18, 0.5, 1.0, 2.0, 3.0, 4.3, 5.0, 6.5, 8.0, 9.936, 12.0] {
                let budget = Energy::from_joules(b);
                let simplex = p.solve(budget).unwrap();
                let closed = p.solve_closed_form(budget).unwrap();
                assert!(
                    (simplex.objective(alpha) - closed.objective(alpha)).abs() < 1e-9,
                    "alpha {alpha} budget {b}: simplex {} vs closed {}",
                    simplex.objective(alpha),
                    closed.objective(alpha)
                );
                assert!(simplex.is_feasible(budget, 1e-6));
                assert!(closed.is_feasible(budget, 1e-6));
            }
        }
    }

    #[test]
    fn non_finite_budget_is_rejected() {
        let p = paper_problem(1.0);
        assert!(matches!(
            p.solve(Energy::from_joules(f64::NAN)),
            Err(ReapError::InvalidParameter(_))
        ));
    }
}
