//! Schedule explanation: *why* the optimizer chose what it chose.
//!
//! The LP's decisions have a crisp economic reading — points are ranked by
//! objective-weight per marginal watt, the budget either runs out before
//! the period fills (energy-bound) or the period fills first
//! (time-bound) — and surfacing it makes the controller auditable on a
//! deployed device.

use reap_units::Energy;

use crate::sweep::energy_shadow_price;
use crate::{ReapError, ReapProblem, Schedule};

/// Which constraint binds the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingConstraint {
    /// The energy budget runs out while off-time remains: Region 1.
    Energy,
    /// The whole period is active and energy remains unspent; only the
    /// best-weight point matters: Region 3.
    Time,
    /// Both bind: the two-point mixing regime of Region 2.
    Both,
}

/// A structured explanation of one solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Which constraint(s) bind.
    pub binding: BindingConstraint,
    /// Points ranked by `weight / (P_i - P_off)` — the greedy order the
    /// optimum follows in the energy-bound regime.
    pub value_per_watt_ranking: Vec<(u8, f64)>,
    /// The marginal value of one more joule at this budget.
    pub shadow_price: f64,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let regime = match self.binding {
            BindingConstraint::Energy => "energy-bound (device must sleep part of the period)",
            BindingConstraint::Time => "time-bound (energy to spare; best point runs all period)",
            BindingConstraint::Both => "mixed regime (period full, budget exactly spent)",
        };
        writeln!(f, "regime: {regime}")?;
        writeln!(f, "value per marginal milliwatt (weight / (P - P_off)):")?;
        for (id, v) in &self.value_per_watt_ranking {
            writeln!(f, "  DP{id}: {v:.4}")?;
        }
        write!(
            f,
            "shadow price of energy: {:.4} objective/J",
            self.shadow_price
        )
    }
}

/// Explains a schedule produced by [`ReapProblem::solve`] at `budget`.
///
/// # Errors
///
/// Propagates solver errors from the shadow-price probe.
pub fn explain(
    problem: &ReapProblem,
    budget: Energy,
    schedule: &Schedule,
) -> Result<Explanation, ReapError> {
    let alpha = problem.alpha();
    let p_off = problem.off_power();
    let mut ranking: Vec<(u8, f64)> = problem
        .points()
        .iter()
        .map(|p| {
            let marginal_mw = (p.power() - p_off).milliwatts();
            (p.id(), p.weight(alpha) / marginal_mw)
        })
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    let fully_active = schedule.active_fraction() > 1.0 - 1e-6;
    let energy_exhausted = schedule.energy().joules() >= budget.joules() * (1.0 - 1e-6) - 1e-9;
    let binding = match (fully_active, energy_exhausted) {
        (true, true) => BindingConstraint::Both,
        (true, false) => BindingConstraint::Time,
        _ => BindingConstraint::Energy,
    };
    let shadow_price = energy_shadow_price(problem, budget.max(problem.min_budget() * 1.01))?;
    Ok(Explanation {
        binding,
        value_per_watt_ranking: ranking,
        shadow_price,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn paper_problem() -> ReapProblem {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        ReapProblem::builder()
            .points(
                specs
                    .iter()
                    .map(|&(id, a, mw)| {
                        OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw))
                            .unwrap()
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn region1_is_energy_bound_with_dp5_on_top() {
        let p = paper_problem();
        let budget = Energy::from_joules(3.0);
        let s = p.solve(budget).unwrap();
        let e = explain(&p, budget, &s).unwrap();
        assert_eq!(e.binding, BindingConstraint::Energy);
        // DP5 has the best accuracy per marginal watt at alpha = 1.
        assert_eq!(e.value_per_watt_ranking[0].0, 5);
        assert!(e.shadow_price > 0.0);
    }

    #[test]
    fn region2_binds_both_constraints() {
        let p = paper_problem();
        let budget = Energy::from_joules(5.0);
        let s = p.solve(budget).unwrap();
        let e = explain(&p, budget, &s).unwrap();
        assert_eq!(e.binding, BindingConstraint::Both);
    }

    #[test]
    fn saturation_is_time_bound_with_zero_shadow_price() {
        let p = paper_problem();
        let budget = Energy::from_joules(11.0);
        let s = p.solve(budget).unwrap();
        let e = explain(&p, budget, &s).unwrap();
        assert_eq!(e.binding, BindingConstraint::Time);
        assert!(e.shadow_price.abs() < 1e-9);
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let p = paper_problem();
        let budget = Energy::from_joules(4.0);
        let s = p.solve(budget).unwrap();
        let e = explain(&p, budget, &s).unwrap();
        assert_eq!(e.value_per_watt_ranking.len(), 5);
        for w in e.value_per_watt_ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn display_is_informative() {
        let p = paper_problem();
        let budget = Energy::from_joules(3.0);
        let s = p.solve(budget).unwrap();
        let text = explain(&p, budget, &s).unwrap().to_string();
        assert!(text.contains("energy-bound"));
        assert!(text.contains("DP5"));
        assert!(text.contains("shadow price"));
    }
}
