//! Parameter sweeps over energy budgets and `alpha`.
//!
//! These drive the evaluation figures: Fig. 5 (expected accuracy and
//! active time vs budget), Fig. 6 (normalized objective at `alpha = 2`),
//! and Fig. 7 (performance vs `alpha` over a month of harvested budgets).

use reap_units::Energy;

use crate::{static_schedule, ReapError, ReapProblem, Schedule};

/// One row of an energy sweep: the REAP schedule and every static-DP
/// schedule at the same budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The budget of this row.
    pub budget: Energy,
    /// REAP's schedule.
    pub reap: Schedule,
    /// One schedule per operating point, in problem order.
    pub statics: Vec<Schedule>,
}

impl SweepPoint {
    /// REAP's objective divided by the static schedule's objective for the
    /// point at `index` (problem order). `None` when the static objective
    /// is zero (both off) — the ratio is undefined there.
    #[must_use]
    pub fn normalized_vs_static(&self, index: usize, alpha: f64) -> Option<f64> {
        let s = self.statics.get(index)?.objective(alpha);
        if s <= 0.0 {
            None
        } else {
            Some(self.reap.objective(alpha) / s)
        }
    }
}

/// One row of an alpha sweep at a fixed budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaSweepPoint {
    /// The `alpha` of this row.
    pub alpha: f64,
    /// REAP's schedule at this alpha.
    pub reap: Schedule,
    /// One schedule per operating point (statics do not depend on alpha,
    /// but their *objective values* do).
    pub statics: Vec<Schedule>,
}

/// `n` evenly spaced values covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or `lo > hi`.
#[must_use]
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two samples");
    assert!(lo <= hi, "inverted range");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// Solves REAP and all static baselines at each budget.
///
/// The REAP schedules come from one precomputed [`PlanFrontier`] via
/// [`ReapProblem::solve_many`] — one `O(N log N)` frontier build plus an
/// `O(log K)` lookup per budget instead of a fresh LP per row.
///
/// # Errors
///
/// Propagates solver errors; budgets below the floor are invalid here
/// (sweeps should start at [`ReapProblem::min_budget`]).
///
/// [`PlanFrontier`]: crate::PlanFrontier
pub fn energy_sweep(
    problem: &ReapProblem,
    budgets: &[Energy],
) -> Result<Vec<SweepPoint>, ReapError> {
    let reaps = problem.solve_many(budgets)?;
    budgets
        .iter()
        .zip(reaps)
        .map(|(&budget, reap)| {
            let statics = problem
                .points()
                .iter()
                .map(|p| static_schedule(problem, p.id(), budget))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SweepPoint {
                budget,
                reap,
                statics,
            })
        })
        .collect()
}

/// The *shadow price of energy*: the marginal objective gain per extra
/// joule of budget, estimated by central finite difference.
///
/// REAP's objective is piecewise-linear and concave in the budget, so the
/// shadow price is non-increasing: large when the device is starved
/// (every joule buys active time at the best accuracy-per-joule point),
/// zero beyond the saturation budget. Useful for deciding whether to
/// spend battery now or bank it.
///
/// # Errors
///
/// Propagates solver errors; the budget must be at least
/// [`ReapProblem::min_budget`] plus the probe step.
pub fn energy_shadow_price(problem: &ReapProblem, budget: Energy) -> Result<f64, ReapError> {
    let h = Energy::from_millijoules(
        (budget.millijoules() * 1e-4).max(1.0), // >= 1 mJ probe
    );
    // One frontier serves both probes, and `objective_at` skips schedule
    // construction entirely.
    let frontier = problem.frontier();
    let lo = frontier.objective_at(budget - h)?;
    let hi = frontier.objective_at(budget + h)?;
    Ok((hi - lo) / (2.0 * h.joules()))
}

/// Solves REAP at each `alpha` for a fixed budget (statics are computed
/// once per row for convenience; they do not depend on `alpha`).
///
/// # Errors
///
/// Propagates solver errors.
pub fn alpha_sweep(
    problem: &ReapProblem,
    budget: Energy,
    alphas: &[f64],
) -> Result<Vec<AlphaSweepPoint>, ReapError> {
    alphas
        .iter()
        .map(|&alpha| {
            // Each alpha has its own weight vector, hence its own
            // frontier; statics are alpha-independent.
            let p = problem.with_alpha(alpha);
            let reap = p.frontier().solve(budget)?;
            let statics = p
                .points()
                .iter()
                .map(|pt| static_schedule(&p, pt.id(), budget))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(AlphaSweepPoint {
                alpha,
                reap,
                statics,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn paper_problem(alpha: f64) -> ReapProblem {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        ReapProblem::builder()
            .alpha(alpha)
            .points(
                specs
                    .iter()
                    .map(|&(id, a, mw)| {
                        OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw))
                            .unwrap()
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn linspace_covers_endpoints() {
        let v = linspace(0.18, 10.0, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.18).abs() < 1e-12);
        assert!((v[4] - 10.0).abs() < 1e-12);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_tiny_n() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn sweep_reproduces_fig5_monotonicity() {
        let p = paper_problem(1.0);
        let budgets: Vec<Energy> = linspace(0.18, 10.5, 40)
            .into_iter()
            .map(Energy::from_joules)
            .collect();
        let rows = energy_sweep(&p, &budgets).unwrap();
        assert_eq!(rows.len(), 40);
        // Expected accuracy grows (weakly) with budget for REAP.
        for w in rows.windows(2) {
            assert!(
                w[1].reap.expected_accuracy() >= w[0].reap.expected_accuracy() - 1e-9,
                "accuracy decreased between {} and {}",
                w[0].budget,
                w[1].budget
            );
        }
        // REAP dominates every static at every budget.
        for row in &rows {
            for s in &row.statics {
                assert!(row.reap.objective(1.0) >= s.objective(1.0) - 1e-9);
            }
        }
        // The last row saturates at DP1 accuracy.
        assert!((rows.last().unwrap().reap.expected_accuracy() - 0.94).abs() < 1e-6);
    }

    #[test]
    fn region1_active_time_advantage_over_dp1_is_2_3x() {
        // Fig. 5b annotation: in Region 1 REAP has about 2.3x the active
        // time of static DP1.
        let p = paper_problem(1.0);
        let rows = energy_sweep(&p, &[Energy::from_joules(3.0)]).unwrap();
        let row = &rows[0];
        let ratio = row.reap.active_time() / row.statics[0].active_time();
        assert!((ratio - 2.3).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn normalized_vs_static_handles_zero() {
        let p = paper_problem(1.0);
        // At the floor, statics are all off: objective 0 -> None.
        let rows = energy_sweep(&p, &[Energy::from_joules(0.18)]).unwrap();
        assert_eq!(rows[0].normalized_vs_static(0, 1.0), None);
        assert_eq!(rows[0].normalized_vs_static(99, 1.0), None);
        // At a healthy budget the ratio is >= 1.
        let rows = energy_sweep(&p, &[Energy::from_joules(5.0)]).unwrap();
        let r = rows[0].normalized_vs_static(0, 1.0).unwrap();
        assert!(r >= 1.0);
    }

    #[test]
    fn fig6_crossover_dp3_near_6_5j() {
        // Fig. 6: at alpha = 2, DP3's static objective matches REAP's near
        // 6.5 J and falls behind beyond it.
        let p = paper_problem(2.0);
        let near = energy_sweep(&p, &[Energy::from_joules(6.5)]).unwrap();
        let ratio_at_65 = near[0].normalized_vs_static(2, 2.0).unwrap();
        assert!(
            (ratio_at_65 - 1.0).abs() < 0.02,
            "REAP/DP3 at 6.5 J = {ratio_at_65}"
        );
        let beyond = energy_sweep(&p, &[Energy::from_joules(8.5)]).unwrap();
        let ratio_at_85 = beyond[0].normalized_vs_static(2, 2.0).unwrap();
        assert!(ratio_at_85 > 1.005, "REAP/DP3 at 8.5 J = {ratio_at_85}");
    }

    #[test]
    fn shadow_price_is_nonincreasing_and_vanishes_at_saturation() {
        let p = paper_problem(1.0);
        let prices: Vec<f64> = [1.0, 2.0, 3.0, 4.5, 6.0, 8.0, 9.5]
            .iter()
            .map(|&j| energy_shadow_price(&p, Energy::from_joules(j)).unwrap())
            .collect();
        for w in prices.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "shadow price increased: {prices:?}");
        }
        assert!(prices[0] > 0.1, "starved shadow price {}", prices[0]);
        // Beyond saturation an extra joule buys nothing.
        let sat = energy_shadow_price(&p, Energy::from_joules(11.0)).unwrap();
        assert!(sat.abs() < 1e-9, "saturated shadow price {sat}");
    }

    #[test]
    fn alpha_sweep_statics_lose_to_reap() {
        let p = paper_problem(1.0);
        let rows = alpha_sweep(&p, Energy::from_joules(4.0), &[0.5, 1.0, 2.0, 4.0, 8.0]).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            for s in &row.statics {
                assert!(
                    row.reap.objective(row.alpha) >= s.objective(row.alpha) - 1e-9,
                    "alpha {}",
                    row.alpha
                );
            }
        }
        // DP5's relative performance degrades as alpha grows (Fig. 7).
        let rel = |row: &AlphaSweepPoint| {
            row.reap.objective(row.alpha) / row.statics[4].objective(row.alpha)
        };
        assert!(rel(&rows[4]) > rel(&rows[0]));
    }
}
