//! Operating-region analysis.
//!
//! Fig. 5 of the paper divides the budget axis into regions by the
//! *structure* of the optimal policy: in Region 1 even the cheapest design
//! point cannot stay on all period (the optimum runs a single
//! best-accuracy-per-joule point and sleeps the rest); in Region 2 the
//! optimum mixes two points to fill the whole period; beyond the
//! saturation budget the optimum collapses to the single best-weight
//! point. This module recovers those regions automatically from the
//! solver, for any point set and `alpha`.

use reap_units::Energy;

use crate::{ReapError, ReapProblem};

/// One budget interval over which the optimal policy uses a fixed set of
/// operating points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Ids of the points active anywhere in this region, ascending.
    pub active_ids: Vec<u8>,
    /// `true` when the device is active for the whole period throughout
    /// this region (no off time).
    pub fully_active: bool,
}

/// A partition of `[min_budget, saturation_budget]` into maximal intervals
/// with a constant active-point set.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionMap {
    /// Region boundaries: `bounds[k]..bounds[k+1]` hosts `regions[k]`.
    pub bounds: Vec<Energy>,
    /// The regions, in ascending budget order.
    pub regions: Vec<Region>,
}

impl RegionMap {
    /// The region containing `budget`, or `None` outside the analyzed
    /// range (budgets beyond saturation belong to the last region).
    #[must_use]
    pub fn region_at(&self, budget: Energy) -> Option<&Region> {
        if budget < self.bounds[0] {
            return None;
        }
        for (k, region) in self.regions.iter().enumerate() {
            if budget <= self.bounds[k + 1] {
                return Some(region);
            }
        }
        self.regions.last()
    }
}

impl std::fmt::Display for RegionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, region) in self.regions.iter().enumerate() {
            let ids: Vec<String> = region
                .active_ids
                .iter()
                .map(|id| format!("DP{id}"))
                .collect();
            writeln!(
                f,
                "{:.3} .. {:.3} J: {} ({})",
                self.bounds[k].joules(),
                self.bounds[k + 1].joules(),
                if ids.is_empty() {
                    "off".to_string()
                } else {
                    ids.join("+")
                },
                if region.fully_active {
                    "fully active"
                } else {
                    "duty-cycled"
                }
            )?;
        }
        Ok(())
    }
}

/// Scans the budget axis at `resolution` steps and merges consecutive
/// budgets whose optimal schedules activate the same point set.
///
/// The scan solves through one precomputed frontier
/// ([`ReapProblem::solve_many`]) instead of `resolution` independent LP
/// solves, so high resolutions are cheap.
///
/// # Errors
///
/// * [`ReapError::InvalidParameter`] when `resolution < 2`.
/// * Propagates solver errors.
pub fn detect_regions(problem: &ReapProblem, resolution: usize) -> Result<RegionMap, ReapError> {
    if resolution < 2 {
        return Err(ReapError::InvalidParameter(
            "region detection needs at least 2 samples".into(),
        ));
    }
    let lo = problem.min_budget().joules();
    // Overshoot saturation slightly so the final (saturated) region has
    // nonzero width instead of degenerating to a point at the boundary.
    let hi = problem.saturation_budget().joules() * 1.02;
    let step = (hi - lo) / (resolution - 1) as f64;
    let budgets: Vec<Energy> = (0..resolution)
        .map(|k| Energy::from_joules(lo + step * k as f64))
        .collect();
    let schedules = problem.solve_many(&budgets)?;

    let mut bounds = vec![problem.min_budget()];
    let mut regions: Vec<Region> = Vec::new();
    let mut current: Option<(Vec<u8>, bool)> = None;

    for (budget, schedule) in budgets.into_iter().zip(schedules) {
        let ids: Vec<u8> = schedule
            .allocations()
            .iter()
            .map(|a| a.point.id())
            .collect();
        let fully_active = schedule.active_fraction() > 1.0 - 1e-6;
        match &mut current {
            Some((cur_ids, cur_full)) if *cur_ids == ids && *cur_full == fully_active => {}
            Some((cur_ids, cur_full)) => {
                regions.push(Region {
                    active_ids: cur_ids.clone(),
                    fully_active: *cur_full,
                });
                bounds.push(budget);
                *cur_ids = ids;
                *cur_full = fully_active;
            }
            None => current = Some((ids, fully_active)),
        }
    }
    if let Some((ids, full)) = current {
        regions.push(Region {
            active_ids: ids,
            fully_active: full,
        });
        bounds.push(Energy::from_joules(hi));
    }
    Ok(RegionMap { bounds, regions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn paper_problem(alpha: f64) -> ReapProblem {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        ReapProblem::builder()
            .alpha(alpha)
            .points(
                specs
                    .iter()
                    .map(|&(id, a, mw)| {
                        OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw))
                            .unwrap()
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_tiny_resolution() {
        assert!(detect_regions(&paper_problem(1.0), 1).is_err());
    }

    #[test]
    fn paper_regions_at_alpha_one() {
        let p = paper_problem(1.0);
        let map = detect_regions(&p, 400).unwrap();
        // Region 1: only DP5 runs, device sleeps part of the period.
        let region1 = map.region_at(Energy::from_joules(3.0)).unwrap();
        assert_eq!(region1.active_ids, vec![5]);
        assert!(!region1.fully_active);
        // Region 2: two-point mixes, fully active.
        let region2 = map.region_at(Energy::from_joules(5.0)).unwrap();
        assert_eq!(region2.active_ids, vec![4, 5]);
        assert!(region2.fully_active);
        // Near saturation: DP1 alone.
        let region3 = map.region_at(Energy::from_joules(9.93)).unwrap();
        assert!(region3.active_ids.contains(&1));
        assert!(region3.fully_active);
        // The DP5 saturation boundary sits near 4.3 J (the paper's knee).
        let knee = map.bounds.iter().find(|b| (b.joules() - 4.32).abs() < 0.1);
        assert!(knee.is_some(), "no boundary near 4.32 J: {:?}", map.bounds);
    }

    #[test]
    fn regions_tile_the_budget_axis() {
        let p = paper_problem(2.0);
        let map = detect_regions(&p, 200).unwrap();
        assert_eq!(map.bounds.len(), map.regions.len() + 1);
        for w in map.bounds.windows(2) {
            assert!(w[0] < w[1], "bounds not increasing");
        }
        assert!((map.bounds[0].joules() - p.min_budget().joules()).abs() < 1e-12);
        assert!(
            (map.bounds.last().unwrap().joules() - p.saturation_budget().joules() * 1.02).abs()
                < 1e-9
        );
        // Below the floor there is no region.
        assert!(map.region_at(Energy::from_joules(0.0)).is_none());
        // Beyond saturation the last region applies.
        let last = map.region_at(Energy::from_joules(100.0)).unwrap();
        assert_eq!(last, map.regions.last().unwrap());
    }

    #[test]
    fn display_lists_regions() {
        let map = detect_regions(&paper_problem(1.0), 200).unwrap();
        let text = map.to_string();
        assert!(text.contains("DP5"));
        assert!(text.contains("fully active"));
        assert!(text.contains("duty-cycled"));
        assert_eq!(text.lines().count(), map.regions.len());
    }

    #[test]
    fn single_point_problem_has_three_regions() {
        // One point: all-off exactly at the floor, duty-cycled (not fully
        // active), then saturated.
        let p = ReapProblem::builder()
            .point(OperatingPoint::new(1, "only", 0.9, Power::from_milliwatts(2.0)).unwrap())
            .build()
            .unwrap();
        let map = detect_regions(&p, 100).unwrap();
        assert_eq!(map.regions.len(), 3, "{map:#?}");
        assert!(map.regions[0].active_ids.is_empty()); // all-off at the floor
        assert_eq!(map.regions[1].active_ids, vec![1]);
        assert!(!map.regions[1].fully_active);
        assert!(map.regions[2].fully_active);
    }
}
