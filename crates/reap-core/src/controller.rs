//! The runtime controller: the piece that runs on the device every period.

use reap_units::Energy;

use crate::frontier::PlanFrontier;
use crate::schedule::Schedule;
use crate::{ReapError, ReapProblem};

/// Which solver the controller invokes each period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// The paper's Algorithm 1 (tableau simplex).
    #[default]
    Simplex,
    /// The exact closed-form vertex search (`O(N^2)`), a faster
    /// alternative this reproduction adds as an ablation.
    ClosedForm,
    /// The precomputed budget→schedule frontier ([`PlanFrontier`]): the
    /// frontier is built lazily on the first plan, cached inside the
    /// controller, and every solve afterwards is an `O(log K)` lookup.
    /// Invalidated by [`ReapController::set_alpha`].
    Frontier,
}

/// Runtime REAP controller.
///
/// Once per activity period the energy-allocation layer hands the
/// controller a budget; [`ReapController::plan`] returns the schedule to
/// execute. The controller also exposes [`ReapController::set_alpha`]
/// because "the importance given to accuracy versus active time may change
/// due to user preferences" (Sec. 3.3).
///
/// Unlike [`ReapProblem::solve`], `plan` is **total** over non-negative
/// budgets: a budget below the off-state floor returns the all-off
/// schedule (the device browns out; it cannot do better), so a simulation
/// loop never has to special-case starvation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReapController {
    problem: ReapProblem,
    solver: SolverKind,
    plans: u64,
    /// Lazily built cache for [`SolverKind::Frontier`]; dropped whenever
    /// `alpha` changes (the frontier is specific to one weight vector).
    frontier: Option<PlanFrontier>,
    /// How many times the frontier cache has been (re)built — the
    /// observable that lets tests prove plans reuse the cache (a rebuilt
    /// frontier would compare equal to the cached one).
    frontier_builds: u64,
}

impl ReapController {
    /// Creates a controller with the default (simplex) solver.
    #[must_use]
    pub fn new(problem: ReapProblem) -> ReapController {
        ReapController::with_solver(problem, SolverKind::default())
    }

    /// Creates a controller with an explicit solver choice.
    #[must_use]
    pub fn with_solver(problem: ReapProblem, solver: SolverKind) -> ReapController {
        ReapController {
            problem,
            solver,
            plans: 0,
            frontier: None,
            frontier_builds: 0,
        }
    }

    /// The underlying problem definition.
    #[must_use]
    pub fn problem(&self) -> &ReapProblem {
        &self.problem
    }

    /// How many plans this controller has produced.
    #[must_use]
    pub fn plans_made(&self) -> u64 {
        self.plans
    }

    /// Changes the accuracy/active-time trade-off for future plans.
    ///
    /// # Errors
    ///
    /// [`ReapError::InvalidParameter`] for negative or non-finite `alpha`.
    pub fn set_alpha(&mut self, alpha: f64) -> Result<(), ReapError> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(ReapError::InvalidParameter(format!(
                "alpha {alpha} must be finite and non-negative"
            )));
        }
        self.problem = self.problem.with_alpha(alpha);
        // Frontier vertices depend on the weights a_i^alpha; rebuild
        // lazily on the next plan.
        self.frontier = None;
        Ok(())
    }

    /// Plans one activity period under `budget`.
    ///
    /// Budgets below `P_off * TP` yield the all-off schedule; everything
    /// else is delegated to the configured solver.
    ///
    /// # Errors
    ///
    /// Only solver failures ([`ReapError::Lp`],
    /// [`ReapError::SolverInconsistency`]) or a non-finite budget; never
    /// budget starvation.
    pub fn plan(&mut self, budget: Energy) -> Result<Schedule, ReapError> {
        if !budget.is_finite() {
            return Err(ReapError::InvalidParameter(format!(
                "budget {budget} is not finite"
            )));
        }
        self.plans += 1;
        let effective = budget.max(self.problem.min_budget());
        match self.solver {
            SolverKind::Simplex => self.problem.solve(effective),
            SolverKind::ClosedForm => self.problem.solve_closed_form(effective),
            SolverKind::Frontier => {
                let problem = &self.problem;
                let builds = &mut self.frontier_builds;
                self.frontier
                    .get_or_insert_with(|| {
                        *builds += 1;
                        problem.frontier()
                    })
                    .solve(effective)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatingPoint;
    use reap_units::Power;

    fn problem() -> ReapProblem {
        ReapProblem::builder()
            .points(vec![
                OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).unwrap(),
                OperatingPoint::new(5, "DP5", 0.76, Power::from_milliwatts(1.20)).unwrap(),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn plan_is_total_over_starved_budgets() {
        let mut c = ReapController::new(problem());
        let s = c.plan(Energy::from_joules(0.01)).unwrap();
        assert!(s.allocations().is_empty());
        assert!((s.off_time().seconds() - 3600.0).abs() < 1e-6);
        let zero = c.plan(Energy::ZERO).unwrap();
        assert!(zero.allocations().is_empty());
    }

    #[test]
    fn plan_counts_invocations() {
        let mut c = ReapController::new(problem());
        assert_eq!(c.plans_made(), 0);
        let _ = c.plan(Energy::from_joules(5.0)).unwrap();
        let _ = c.plan(Energy::from_joules(2.0)).unwrap();
        assert_eq!(c.plans_made(), 2);
    }

    #[test]
    fn solver_kinds_agree() {
        let mut simplex = ReapController::with_solver(problem(), SolverKind::Simplex);
        let mut closed = ReapController::with_solver(problem(), SolverKind::ClosedForm);
        let mut frontier = ReapController::with_solver(problem(), SolverKind::Frontier);
        for b in [0.5, 2.0, 5.0, 8.0, 12.0] {
            let budget = Energy::from_joules(b);
            let a = simplex.plan(budget).unwrap();
            let c = closed.plan(budget).unwrap();
            let f = frontier.plan(budget).unwrap();
            assert!(
                (a.objective(1.0) - c.objective(1.0)).abs() < 1e-9,
                "budget {b}"
            );
            assert!(
                (a.objective(1.0) - f.objective(1.0)).abs() < 1e-9,
                "budget {b}: simplex vs frontier"
            );
        }
    }

    #[test]
    fn frontier_cache_survives_plans_and_resets_on_alpha_change() {
        let mut c = ReapController::with_solver(problem(), SolverKind::Frontier);
        assert!(c.frontier.is_none());
        assert_eq!(c.frontier_builds, 0);
        let _ = c.plan(Energy::from_joules(3.0)).unwrap();
        let _ = c.plan(Energy::from_joules(7.0)).unwrap();
        assert_eq!(c.frontier_builds, 1, "plans after the first must reuse");
        let cached = c.frontier.clone().expect("built on first plan");
        c.set_alpha(3.0).unwrap();
        assert!(c.frontier.is_none(), "set_alpha must invalidate");
        // Replanning after the alpha change agrees with a fresh simplex.
        let s = c.plan(Energy::from_joules(3.0)).unwrap();
        let reference = c.problem().solve(Energy::from_joules(3.0)).unwrap();
        assert!((s.objective(3.0) - reference.objective(3.0)).abs() < 1e-9);
        assert_eq!(c.frontier_builds, 2, "one rebuild for the new alpha");
        assert_ne!(c.frontier, Some(cached), "rebuilt for the new alpha");
    }

    #[test]
    fn alpha_can_change_at_runtime() {
        let mut c = ReapController::new(problem());
        // alpha = 1 at 3 J: all DP5 (best accuracy per joule).
        let low = c.plan(Energy::from_joules(3.0)).unwrap();
        assert!(low.fraction_for(5) > 0.0);
        assert_eq!(low.fraction_for(1), 0.0);
        // Strongly accuracy-weighted: DP1 becomes worth it.
        c.set_alpha(8.0).unwrap();
        let high = c.plan(Energy::from_joules(3.0)).unwrap();
        assert!(
            high.fraction_for(1) > 0.0,
            "alpha=8 should favour DP1: {high}"
        );
        assert!(c.set_alpha(-1.0).is_err());
        assert!(c.set_alpha(f64::NAN).is_err());
    }
}
