//! Operating points: the optimizer's view of a design point.

use std::fmt;

use reap_units::Power;

use crate::ReapError;

/// One design point as seen by the optimizer: an accuracy and a power draw.
///
/// The full pipeline configuration behind a point lives in the `reap-har`
/// and `reap-device` crates; the optimizer deliberately depends only on the
/// `(a_i, P_i)` pair (plus an id and label for reporting), mirroring the
/// paper's formulation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    id: u8,
    label: String,
    accuracy: f64,
    power: Power,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Errors
    ///
    /// [`ReapError::InvalidParameter`] when the accuracy is outside
    /// `[0, 1]` or the power is non-positive or non-finite.
    pub fn new(
        id: u8,
        label: impl Into<String>,
        accuracy: f64,
        power: Power,
    ) -> Result<OperatingPoint, ReapError> {
        if !accuracy.is_finite() || !(0.0..=1.0).contains(&accuracy) {
            return Err(ReapError::InvalidParameter(format!(
                "accuracy {accuracy} outside [0, 1]"
            )));
        }
        if !power.is_finite() || power.watts() <= 0.0 {
            return Err(ReapError::InvalidParameter(format!(
                "power {power} must be positive"
            )));
        }
        Ok(OperatingPoint {
            id,
            label: label.into(),
            accuracy,
            power,
        })
    }

    /// Identifier (e.g. `1` for DP1).
    #[must_use]
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Recognition accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Average power draw while this point is active.
    #[must_use]
    pub fn power(&self) -> Power {
        self.power
    }

    /// The objective weight `a^alpha` of this point (Eq. 1 of the paper).
    ///
    /// By convention `0^0 = 1` so that `alpha = 0` turns the objective into
    /// pure active time for every point.
    #[must_use]
    pub fn weight(&self, alpha: f64) -> f64 {
        if alpha == 0.0 {
            1.0
        } else {
            self.accuracy.powf(alpha)
        }
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (id {}): {:.1}% @ {}",
            self.label,
            self.id,
            self.accuracy * 100.0,
            self.power
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).is_ok());
        assert!(OperatingPoint::new(1, "bad", 1.1, Power::from_milliwatts(1.0)).is_err());
        assert!(OperatingPoint::new(1, "bad", -0.1, Power::from_milliwatts(1.0)).is_err());
        assert!(OperatingPoint::new(1, "bad", f64::NAN, Power::from_milliwatts(1.0)).is_err());
        assert!(OperatingPoint::new(1, "bad", 0.5, Power::ZERO).is_err());
        assert!(OperatingPoint::new(1, "bad", 0.5, Power::from_watts(-1.0)).is_err());
    }

    #[test]
    fn weight_honours_alpha_conventions() {
        let p = OperatingPoint::new(1, "DP", 0.9, Power::from_milliwatts(1.0)).unwrap();
        assert_eq!(p.weight(0.0), 1.0);
        assert!((p.weight(1.0) - 0.9).abs() < 1e-12);
        assert!((p.weight(2.0) - 0.81).abs() < 1e-12);
        // Zero accuracy with alpha = 0 still counts as active time.
        let z = OperatingPoint::new(2, "Z", 0.0, Power::from_milliwatts(1.0)).unwrap();
        assert_eq!(z.weight(0.0), 1.0);
        assert_eq!(z.weight(2.0), 0.0);
    }

    #[test]
    fn accessors_and_display() {
        let p = OperatingPoint::new(3, "DP3", 0.92, Power::from_milliwatts(1.82)).unwrap();
        assert_eq!(p.id(), 3);
        assert_eq!(p.label(), "DP3");
        assert!((p.accuracy() - 0.92).abs() < 1e-12);
        assert!(p.to_string().contains("DP3"));
        assert!(p.to_string().contains("92.0%"));
    }
}
