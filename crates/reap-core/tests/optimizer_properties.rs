//! Property tests for the REAP optimizer: dominance over static policies,
//! solver agreement, feasibility, and structural facts about optima.

use proptest::prelude::*;
use reap_core::{static_schedule, OperatingPoint, ReapProblem};
use reap_units::{Energy, Power, TimeSpan};

/// Strategy: a REAP problem with 1..8 random operating points plus a
/// budget fraction in [0, 1.2] of the saturation budget and a random alpha.
fn arb_instance() -> impl Strategy<Value = (ReapProblem, Energy)> {
    let point = (10u32..=99, 2u32..=60).prop_map(|(acc, dmw)| (acc as f64 / 100.0, dmw));
    (
        proptest::collection::vec(point, 1..8),
        0.0f64..=1.2,
        prop_oneof![
            Just(0.0),
            Just(0.5),
            Just(1.0),
            Just(2.0),
            Just(4.0),
            Just(8.0)
        ],
    )
        .prop_map(|(specs, budget_frac, alpha)| {
            let p_off = Power::from_microwatts(50.0);
            let points: Vec<OperatingPoint> = specs
                .iter()
                .enumerate()
                .map(|(i, &(acc, dmw))| {
                    // Powers strictly above P_off by construction.
                    let power = Power::from_microwatts(50.0 + f64::from(dmw) * 100.0);
                    OperatingPoint::new(i as u8 + 1, format!("P{i}"), acc, power)
                        .expect("valid point")
                })
                .collect();
            let problem = ReapProblem::builder()
                .period(TimeSpan::from_hours(1.0))
                .off_power(p_off)
                .alpha(alpha)
                .points(points)
                .build()
                .expect("valid problem");
            let min = problem.min_budget().joules();
            let sat = problem.saturation_budget().joules();
            let budget = Energy::from_joules(min + budget_frac * (sat - min).max(0.0));
            (problem, budget)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reap_dominates_every_static_policy((problem, budget) in arb_instance()) {
        let alpha = problem.alpha();
        let reap = problem.solve(budget).expect("solvable");
        for point in problem.points() {
            let stat = static_schedule(&problem, point.id(), budget).expect("solvable");
            prop_assert!(
                reap.objective(alpha) >= stat.objective(alpha) - 1e-9,
                "REAP {} < static DP{} {}",
                reap.objective(alpha), point.id(), stat.objective(alpha)
            );
        }
    }

    #[test]
    fn simplex_and_closed_form_agree((problem, budget) in arb_instance()) {
        let alpha = problem.alpha();
        let simplex = problem.solve(budget).expect("solvable");
        let closed = problem.solve_closed_form(budget).expect("solvable");
        prop_assert!(
            (simplex.objective(alpha) - closed.objective(alpha)).abs()
                <= 1e-9 * (1.0 + simplex.objective(alpha).abs()),
            "simplex {} vs closed-form {}",
            simplex.objective(alpha), closed.objective(alpha)
        );
    }

    #[test]
    fn frontier_matches_simplex_at_random_budgets_breakpoints_and_floor(
        (problem, budget) in arb_instance()
    ) {
        let alpha = problem.alpha();
        let frontier = problem.frontier();
        // The random budget, every breakpoint (where the optimal basis
        // changes and interpolation degenerates to a vertex), and the
        // exact floor.
        let mut budgets = vec![budget, problem.min_budget()];
        budgets.extend(frontier.breakpoints());
        for b in budgets {
            let simplex = problem.solve(b).expect("solvable");
            let fast = frontier.solve(b).expect("solvable");
            prop_assert!(
                (simplex.objective(alpha) - fast.objective(alpha)).abs()
                    <= 1e-9 * (1.0 + simplex.objective(alpha).abs()),
                "at {b}: simplex {} vs frontier {}",
                simplex.objective(alpha), fast.objective(alpha)
            );
            prop_assert!(fast.is_feasible(b, 1e-6), "frontier infeasible at {b}: {fast}");
            prop_assert!(fast.allocations().len() <= 2);
            let total = fast.active_time() + fast.off_time();
            prop_assert!((total.seconds() - problem.period().seconds()).abs() < 1e-3);
        }
    }

    #[test]
    fn schedules_are_always_feasible((problem, budget) in arb_instance()) {
        let reap = problem.solve(budget).expect("solvable");
        prop_assert!(reap.is_feasible(budget, 1e-6), "infeasible: {reap}");
        // Time accounting closes exactly.
        let total = reap.active_time() + reap.off_time();
        prop_assert!((total.seconds() - problem.period().seconds()).abs() < 1e-3);
    }

    #[test]
    fn optimum_mixes_at_most_two_points((problem, budget) in arb_instance()) {
        let reap = problem.solve(budget).expect("solvable");
        prop_assert!(
            reap.allocations().len() <= 2,
            "{} active points", reap.allocations().len()
        );
    }

    #[test]
    fn objective_is_monotone_in_budget((problem, budget) in arb_instance()) {
        let alpha = problem.alpha();
        let lo = problem.solve(budget).expect("solvable");
        let richer = Energy::from_joules(budget.joules() * 1.1 + 0.1);
        let hi = problem.solve(richer).expect("solvable");
        prop_assert!(
            hi.objective(alpha) >= lo.objective(alpha) - 1e-9,
            "more energy made things worse: {} -> {}",
            lo.objective(alpha), hi.objective(alpha)
        );
    }

    #[test]
    fn saturated_budget_picks_best_weight((problem, _b) in arb_instance()) {
        // Beyond saturation the best point (by weight) runs all period.
        let alpha = problem.alpha();
        let budget = Energy::from_joules(problem.saturation_budget().joules() + 1.0);
        let s = problem.solve(budget).expect("solvable");
        let best_weight = problem
            .points()
            .iter()
            .map(|p| p.weight(alpha))
            .fold(f64::MIN, f64::max);
        prop_assert!((s.objective(alpha) - best_weight).abs() < 1e-9);
        prop_assert!((s.active_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_accuracy_never_exceeds_best_point((problem, budget) in arb_instance()) {
        let s = problem.solve(budget).expect("solvable");
        let best_acc = problem
            .points()
            .iter()
            .map(|p| p.accuracy())
            .fold(0.0f64, f64::max);
        prop_assert!(s.expected_accuracy() <= best_acc + 1e-9);
    }
}
