//! Property tests for the HAR pipeline: feature extraction over random
//! valid configurations, Pareto-front laws, and quantization fidelity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reap_data::{Activity, ActivityWindow, UserProfile};
use reap_har::{
    extract_features, pareto_front, AccelAxes, AccelFeatures, DpConfig, Mlp, NnStructure,
    QuantizedMlp, SensingPeriod, StretchFeatures,
};

/// Strategy: any *valid* design-point configuration.
fn arb_config() -> impl Strategy<Value = DpConfig> {
    let axes = prop_oneof![
        Just(AccelAxes::Xyz),
        Just(AccelAxes::Xy),
        Just(AccelAxes::X),
        Just(AccelAxes::Y),
        Just(AccelAxes::Off),
    ];
    let sensing = prop_oneof![
        Just(SensingPeriod::Full),
        Just(SensingPeriod::P75),
        Just(SensingPeriod::P50),
        Just(SensingPeriod::P40),
    ];
    let accel_features = prop_oneof![Just(AccelFeatures::Statistical), Just(AccelFeatures::Dwt),];
    let stretch = prop_oneof![
        Just(StretchFeatures::Fft16),
        Just(StretchFeatures::Statistical),
        Just(StretchFeatures::Off),
    ];
    let nn = prop_oneof![
        Just(NnStructure::Hidden12),
        Just(NnStructure::Hidden8),
        Just(NnStructure::Direct),
    ];
    (axes, sensing, accel_features, stretch, nn).prop_filter_map(
        "must be a valid combination",
        |(axes, sensing, accel_features, stretch_features, nn)| {
            let accel_features = if axes == AccelAxes::Off {
                AccelFeatures::Off
            } else {
                accel_features
            };
            let config = DpConfig {
                axes,
                sensing,
                accel_features,
                stretch_features,
                nn,
            };
            config.validate().ok().map(|()| config)
        },
    )
}

fn arb_activity() -> impl Strategy<Value = Activity> {
    proptest::sample::select(Activity::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extraction_always_matches_declared_dimension(
        config in arb_config(),
        activity in arb_activity(),
        seed in 0u64..1000,
    ) {
        let profile = UserProfile::generate((seed % 14) as u8, 42);
        let mut rng = StdRng::seed_from_u64(seed);
        let window = ActivityWindow::synthesize(&profile, activity, &mut rng);
        let features = extract_features(&config, &window).expect("valid config");
        prop_assert_eq!(features.len(), config.feature_dim());
        prop_assert!(features.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn extraction_is_deterministic(config in arb_config(), seed in 0u64..1000) {
        let profile = UserProfile::generate(0, 7);
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let w1 = ActivityWindow::synthesize(&profile, Activity::Walk, &mut rng1);
        let w2 = ActivityWindow::synthesize(&profile, Activity::Walk, &mut rng2);
        prop_assert_eq!(
            extract_features(&config, &w1).expect("valid"),
            extract_features(&config, &w2).expect("valid")
        );
    }

    #[test]
    fn pareto_front_laws(points in proptest::collection::vec(
        (0.5f64..5.0, 0.5f64..1.0), 1..20
    )) {
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty(), "non-empty input must have a front");
        // No front member is dominated by any point.
        for &i in &front {
            let (ci, vi) = points[i];
            for (j, &(cj, vj)) in points.iter().enumerate() {
                let dominates = j != i && cj <= ci && vj >= vi && (cj < ci || vj > vi);
                prop_assert!(!dominates, "front member {i} dominated by {j}");
            }
        }
        // Every non-member is dominated by someone.
        for (i, &(ci, vi)) in points.iter().enumerate() {
            if !front.contains(&i) {
                let dominated = points.iter().enumerate().any(|(j, &(cj, vj))| {
                    j != i && cj <= ci && vj >= vi && (cj < ci || vj > vi)
                });
                prop_assert!(dominated, "non-member {i} is not dominated");
            }
        }
        // Sorted by cost.
        for w in front.windows(2) {
            prop_assert!(points[w[0]].0 <= points[w[1]].0);
        }
    }

    #[test]
    fn sixteen_bit_quantization_preserves_predictions(
        sizes_idx in 0usize..3,
        net_seed in 0u64..500,
        inputs in proptest::collection::vec(
            proptest::collection::vec(-3.0f64..3.0, 5), 1..10
        ),
    ) {
        let sizes: &[usize] = match sizes_idx {
            0 => &[5, 8, 3],
            1 => &[5, 12, 7],
            _ => &[5, 4],
        };
        let net = Mlp::new(sizes, net_seed).expect("valid sizes");
        let q = QuantizedMlp::from_mlp(&net, 16).expect("valid width");
        for x in &inputs {
            prop_assert_eq!(q.predict(x), net.predict(x));
        }
    }
}
