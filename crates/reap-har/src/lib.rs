//! Human activity recognition (HAR) pipeline with configurable
//! energy-accuracy design points.
//!
//! This crate implements the driver application of the REAP paper (Sec. 4):
//! sensor windows are turned into feature vectors (statistics, a 16-point
//! FFT of the stretch sensor, or wavelet subband energies), classified by a
//! small neural network, and evaluated against ground truth. Every stage is
//! parameterized by the **design-point knobs** of the paper's Fig. 2:
//!
//! | knob | choices |
//! |------|---------|
//! | accelerometer axes | x+y+z, x+y, x, y, none |
//! | sensing period | 100%, 75%, 50%, 40% of the window |
//! | accel features | statistical, DWT subband energies, none |
//! | stretch features | 16-point FFT magnitudes, statistical, none |
//! | NN structure | one hidden layer of 12 or 8 units, or direct softmax |
//!
//! [`DpConfig::standard_24`] enumerates the 24 candidate design points the
//! paper implemented; [`DpConfig::paper_pareto_5`] returns the five
//! Pareto-optimal ones (DP1–DP5 of Table 2).
//!
//! # Examples
//!
//! Train the stretch-only design point (DP5) on a small synthetic dataset:
//!
//! ```
//! use reap_data::Dataset;
//! use reap_har::{train_classifier, DpConfig, TrainConfig};
//!
//! # fn main() -> Result<(), reap_har::HarError> {
//! let dataset = Dataset::generate(4, 280, 42);
//! let dp5 = DpConfig::paper_pareto_5()[4].clone();
//! let classifier = train_classifier(&dataset, &dp5, &TrainConfig::fast(7))?;
//! assert!(classifier.test_accuracy > 1.0 / 7.0); // far better than chance
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod config;
mod confusion;
mod design_point;
mod error;
mod feature_names;
mod features;
mod louo;
mod nn;
mod normalize;
mod pareto;
mod quantized;

pub use classifier::{train_classifier, TrainedClassifier};
pub use config::{AccelAxes, AccelFeatures, DpConfig, NnStructure, SensingPeriod, StretchFeatures};
pub use confusion::ConfusionMatrix;
pub use design_point::DesignPoint;
pub use error::HarError;
pub use feature_names::feature_names;
pub use features::extract_features;
pub use louo::{leave_one_user_out, pooled_accuracy, LouoFold, LouoResult};
pub use nn::{Mlp, TrainConfig, TrainStats};
pub use normalize::Standardizer;
pub use pareto::pareto_front;
pub use quantized::QuantizedMlp;
