//! Feature extraction: from a sensor window to a design point's feature
//! vector.

use reap_data::ActivityWindow;
use reap_dsp::{decimate, dwt, fft, stats};

use crate::config::{AccelFeatures, DpConfig, StretchFeatures};
use crate::HarError;

/// Number of FFT points used for the stretch feature (as in the paper).
const STRETCH_FFT_POINTS: usize = 16;

/// Haar-DWT decomposition depth for the accel DWT feature.
const DWT_LEVELS: usize = 3;

/// Extracts the feature vector of `config` from `window`.
///
/// The ordering is deterministic: accelerometer features for each active
/// axis (in x, y, z order), then stretch features. The length always equals
/// [`DpConfig::feature_dim`].
///
/// # Errors
///
/// * [`HarError::InvalidConfig`] if the configuration fails validation.
/// * [`HarError::Dsp`] if a kernel rejects the window (e.g. empty input).
pub fn extract_features(config: &DpConfig, window: &ActivityWindow) -> Result<Vec<f64>, HarError> {
    config.validate()?;
    let mut features = Vec::with_capacity(config.feature_dim());

    match config.accel_features {
        AccelFeatures::Statistical => {
            for &axis in config.axes.indices() {
                let prefix = window.accel_prefix(axis, config.sensing.fraction());
                let summary = stats::Summary::of(prefix)?;
                features.extend_from_slice(&summary.to_features());
            }
        }
        AccelFeatures::Dwt => {
            for &axis in config.axes.indices() {
                let prefix = window.accel_prefix(axis, config.sensing.fraction());
                // The DWT needs a power-of-two length; truncate to the
                // largest one that fits (an MCU would do the same).
                let pow2 = prev_power_of_two(prefix.len());
                let energies =
                    dwt::subband_energies(&prefix[..pow2], dwt::Wavelet::Haar, DWT_LEVELS)?;
                features.extend_from_slice(&energies);
            }
        }
        AccelFeatures::Off => {}
    }

    match config.stretch_features {
        StretchFeatures::Fft16 => {
            let decimated = decimate::decimate_to(&window.stretch, STRETCH_FFT_POINTS)?;
            let mags = fft::fft_magnitudes(&decimated)?;
            features.extend_from_slice(&mags);
        }
        StretchFeatures::Statistical => {
            let summary = stats::Summary::of(&window.stretch)?;
            features.extend_from_slice(&summary.to_features());
        }
        StretchFeatures::Off => {}
    }

    debug_assert_eq!(features.len(), config.feature_dim());
    Ok(features)
}

/// Largest power of two `<= n` (`n >= 1`).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reap_data::{Activity, UserProfile};

    fn window(activity: Activity, seed: u64) -> ActivityWindow {
        let profile = UserProfile::generate(0, 42);
        let mut rng = StdRng::seed_from_u64(seed);
        ActivityWindow::synthesize(&profile, activity, &mut rng)
    }

    #[test]
    fn prev_power_of_two_values() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(160), 128);
        assert_eq!(prev_power_of_two(80), 64);
        assert_eq!(prev_power_of_two(60), 32);
    }

    #[test]
    fn every_standard_config_produces_declared_dimension() {
        let w = window(Activity::Walk, 1);
        for config in DpConfig::standard_24() {
            let f = extract_features(&config, &w).unwrap();
            assert_eq!(
                f.len(),
                config.feature_dim(),
                "dimension mismatch for {config}"
            );
            assert!(
                f.iter().all(|v| v.is_finite()),
                "non-finite feature in {config}"
            );
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let w = window(Activity::Sit, 2);
        let bad = DpConfig {
            axes: crate::AccelAxes::Off,
            sensing: crate::SensingPeriod::Full,
            accel_features: AccelFeatures::Statistical,
            stretch_features: StretchFeatures::Fft16,
            nn: crate::NnStructure::Hidden8,
        };
        assert!(matches!(
            extract_features(&bad, &w),
            Err(HarError::InvalidConfig(_))
        ));
    }

    #[test]
    fn walk_and_sit_features_differ_strongly() {
        let dp1 = &DpConfig::paper_pareto_5()[0];
        let walk = extract_features(dp1, &window(Activity::Walk, 3)).unwrap();
        let sit = extract_features(dp1, &window(Activity::Sit, 4)).unwrap();
        // z-axis std-dev feature (axis 2 stats start at 12, std at +1).
        let walk_std = walk[13];
        let sit_std = sit[13];
        assert!(walk_std > 3.0 * sit_std, "walk {walk_std} vs sit {sit_std}");
    }

    #[test]
    fn stretch_fft_dc_separates_sit_from_stand() {
        let dp5 = &DpConfig::paper_pareto_5()[4];
        let sit = extract_features(dp5, &window(Activity::Sit, 5)).unwrap();
        let stand = extract_features(dp5, &window(Activity::Stand, 6)).unwrap();
        // Feature 0 is the FFT DC magnitude = 16 * mean level.
        assert!(sit[0] > stand[0] + 2.0);
    }

    #[test]
    fn sensing_period_changes_statistical_features() {
        let full = DpConfig::paper_pareto_5()[0].clone();
        let mut short = full.clone();
        short.sensing = crate::SensingPeriod::P40;
        let w = window(Activity::Walk, 7);
        let f_full = extract_features(&full, &w).unwrap();
        let f_short = extract_features(&short, &w).unwrap();
        assert_eq!(f_full.len(), f_short.len());
        assert_ne!(f_full, f_short);
    }

    #[test]
    fn dwt_features_have_expected_dimension() {
        let config = DpConfig {
            axes: crate::AccelAxes::Xy,
            sensing: crate::SensingPeriod::Full,
            accel_features: AccelFeatures::Dwt,
            stretch_features: StretchFeatures::Off,
            nn: crate::NnStructure::Hidden8,
        };
        let f = extract_features(&config, &window(Activity::Jump, 8)).unwrap();
        assert_eq!(f.len(), 8); // 2 axes * (3 details + 1 approx)
    }
}
