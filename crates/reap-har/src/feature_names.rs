//! Human-readable names for a design point's feature vector.
//!
//! Useful for debugging classifiers and reporting feature importance: the
//! name at index `i` describes `extract_features(config, w)[i]`.

use crate::config::{AccelFeatures, DpConfig, StretchFeatures};

const AXIS_NAMES: [&str; 3] = ["x", "y", "z"];
const STAT_NAMES: [&str; 6] = ["mean", "std", "min", "max", "rms", "crossings"];

/// Names of the features `config` produces, in extraction order. The
/// length always equals [`DpConfig::feature_dim`].
///
/// # Examples
///
/// ```
/// use reap_har::{feature_names, DpConfig};
///
/// let dp5 = &DpConfig::paper_pareto_5()[4];
/// let names = feature_names(dp5);
/// assert_eq!(names.len(), dp5.feature_dim());
/// assert_eq!(names[0], "stretch fft bin 0");
/// ```
#[must_use]
pub fn feature_names(config: &DpConfig) -> Vec<String> {
    let mut names = Vec::with_capacity(config.feature_dim());
    match config.accel_features {
        AccelFeatures::Statistical => {
            for &axis in config.axes.indices() {
                for stat in STAT_NAMES {
                    names.push(format!("accel {} {stat}", AXIS_NAMES[axis]));
                }
            }
        }
        AccelFeatures::Dwt => {
            for &axis in config.axes.indices() {
                for level in 1..=3 {
                    names.push(format!("accel {} dwt detail {level}", AXIS_NAMES[axis]));
                }
                names.push(format!("accel {} dwt approx", AXIS_NAMES[axis]));
            }
        }
        AccelFeatures::Off => {}
    }
    match config.stretch_features {
        StretchFeatures::Fft16 => {
            for bin in 0..9 {
                names.push(format!("stretch fft bin {bin}"));
            }
        }
        StretchFeatures::Statistical => {
            for stat in STAT_NAMES {
                names.push(format!("stretch {stat}"));
            }
        }
        StretchFeatures::Off => {}
    }
    debug_assert_eq!(names.len(), config.feature_dim());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_dimensions_for_all_24_configs() {
        for config in DpConfig::standard_24() {
            let names = feature_names(&config);
            assert_eq!(names.len(), config.feature_dim(), "{config}");
            // All names unique within a config.
            for (i, a) in names.iter().enumerate() {
                for b in &names[i + 1..] {
                    assert_ne!(a, b, "{config}");
                }
            }
        }
    }

    #[test]
    fn dp1_names_are_ordered_axes_then_stretch() {
        let dp1 = &DpConfig::paper_pareto_5()[0];
        let names = feature_names(dp1);
        assert_eq!(names[0], "accel x mean");
        assert_eq!(names[6], "accel y mean");
        assert_eq!(names[12], "accel z mean");
        assert_eq!(names[18], "stretch fft bin 0");
        assert_eq!(names[26], "stretch fft bin 8");
    }

    #[test]
    fn dwt_names_describe_subbands() {
        let config = DpConfig {
            axes: crate::AccelAxes::Y,
            sensing: crate::SensingPeriod::Full,
            accel_features: AccelFeatures::Dwt,
            stretch_features: StretchFeatures::Off,
            nn: crate::NnStructure::Hidden8,
        };
        let names = feature_names(&config);
        assert_eq!(
            names,
            vec![
                "accel y dwt detail 1",
                "accel y dwt detail 2",
                "accel y dwt detail 3",
                "accel y dwt approx",
            ]
        );
    }
}
