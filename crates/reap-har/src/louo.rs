//! Leave-one-user-out (LOUO) cross-validation.
//!
//! The paper evaluates with a pooled 60/20/20 split, which lets a
//! classifier exploit user-specific signal quirks present in both train
//! and test partitions. The stricter HAR protocol holds out *all* windows
//! of one user, trains on the rest, and rotates — measuring how well a
//! design point generalizes to a wearer it has never seen. Provided as an
//! extension so the reproduction can quantify the pooled-vs-LOUO gap.

use reap_data::{ActivityWindow, Dataset};

use crate::classifier::TrainedClassifier;
use crate::config::NUM_CLASSES;
use crate::features::extract_features;
use crate::nn::{Mlp, TrainConfig};
use crate::normalize::Standardizer;
use crate::{ConfusionMatrix, DpConfig, HarError};

/// Result of one LOUO fold.
#[derive(Debug, Clone, PartialEq)]
pub struct LouoFold {
    /// The held-out user.
    pub user_id: u8,
    /// Accuracy on that user's windows.
    pub accuracy: f64,
    /// Windows tested.
    pub windows: usize,
}

/// Aggregate LOUO result.
#[derive(Debug, Clone, PartialEq)]
pub struct LouoResult {
    /// Per-fold results, by ascending user id.
    pub folds: Vec<LouoFold>,
    /// Confusion matrix pooled over all folds.
    pub confusion: ConfusionMatrix,
}

impl LouoResult {
    /// Window-weighted mean accuracy over all folds.
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// The fold with the worst accuracy (the hardest unseen wearer).
    #[must_use]
    pub fn worst_fold(&self) -> Option<&LouoFold> {
        self.folds
            .iter()
            .min_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite"))
    }
}

/// Runs leave-one-user-out cross-validation of `config` over `dataset`.
///
/// Trains one classifier per user (on everyone else's windows) and tests
/// on the held-out user. All folds share `train_config` (the fold's user
/// id is mixed into the seed so folds are independent but reproducible).
///
/// # Errors
///
/// * [`HarError::InvalidConfig`] for invalid design points.
/// * [`HarError::EmptyTrainingSet`] if the dataset has fewer than two
///   users.
/// * Propagates feature-extraction and training errors.
pub fn leave_one_user_out(
    dataset: &Dataset,
    config: &DpConfig,
    train_config: &TrainConfig,
) -> Result<LouoResult, HarError> {
    config.validate()?;
    let mut user_ids: Vec<u8> = dataset.windows().iter().map(|w| w.user_id).collect();
    user_ids.sort_unstable();
    user_ids.dedup();
    if user_ids.len() < 2 {
        return Err(HarError::EmptyTrainingSet);
    }

    let featurize = |windows: &[&ActivityWindow]| -> Result<(Vec<Vec<f64>>, Vec<usize>), HarError> {
        let mut xs = Vec::with_capacity(windows.len());
        let mut ys = Vec::with_capacity(windows.len());
        for w in windows {
            xs.push(extract_features(config, w)?);
            ys.push(w.label.index());
        }
        Ok((xs, ys))
    };

    let mut folds = Vec::with_capacity(user_ids.len());
    let mut confusion = ConfusionMatrix::new();
    for &held_out in &user_ids {
        let train: Vec<&ActivityWindow> = dataset
            .windows()
            .iter()
            .filter(|w| w.user_id != held_out)
            .collect();
        let test: Vec<&ActivityWindow> = dataset
            .windows()
            .iter()
            .filter(|w| w.user_id == held_out)
            .collect();
        let (train_raw, train_y) = featurize(&train)?;
        let standardizer = Standardizer::fit(&train_raw)?;
        let train_x = standardizer.apply_all(&train_raw)?;

        let sizes = config.nn.layer_sizes(config.feature_dim(), NUM_CLASSES);
        let fold_config = TrainConfig {
            seed: train_config
                .seed
                .wrapping_add(u64::from(held_out).wrapping_mul(0x9E37)),
            ..train_config.clone()
        };
        let mut network = Mlp::new(&sizes, fold_config.seed)?;
        network.train(&train_x, &train_y, &fold_config)?;

        let (test_raw, test_y) = featurize(&test)?;
        let test_x = standardizer.apply_all(&test_raw)?;
        let mut correct = 0usize;
        for (x, &y) in test_x.iter().zip(&test_y) {
            let predicted = network.predict(x);
            confusion.record(
                reap_data::Activity::from_index(y).expect("valid"),
                reap_data::Activity::from_index(predicted).expect("valid"),
            );
            if predicted == y {
                correct += 1;
            }
        }
        folds.push(LouoFold {
            user_id: held_out,
            accuracy: correct as f64 / test.len().max(1) as f64,
            windows: test.len(),
        });
    }
    Ok(LouoResult { folds, confusion })
}

/// Convenience: the pooled-split accuracy of the same configuration, for
/// direct comparison with [`leave_one_user_out`].
///
/// # Errors
///
/// Same conditions as [`crate::train_classifier`].
pub fn pooled_accuracy(
    dataset: &Dataset,
    config: &DpConfig,
    train_config: &TrainConfig,
) -> Result<f64, HarError> {
    crate::train_classifier(dataset, config, train_config)
        .map(|c: TrainedClassifier| c.test_accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        Dataset::generate(4, 360, 17)
    }

    #[test]
    fn louo_produces_one_fold_per_user() {
        let result = leave_one_user_out(
            &small_dataset(),
            &DpConfig::paper_pareto_5()[4],
            &TrainConfig::fast(17),
        )
        .unwrap();
        assert_eq!(result.folds.len(), 4);
        let total: usize = result.folds.iter().map(|f| f.windows).sum();
        assert_eq!(total, 360);
        assert_eq!(result.confusion.total(), 360);
        for fold in &result.folds {
            assert!((0.0..=1.0).contains(&fold.accuracy));
        }
    }

    #[test]
    fn louo_beats_chance_and_trails_pooled() {
        let dataset = small_dataset();
        let config = &DpConfig::paper_pareto_5()[0];
        let tc = TrainConfig::fast(17);
        let louo = leave_one_user_out(&dataset, config, &tc).unwrap();
        let pooled = pooled_accuracy(&dataset, config, &tc).unwrap();
        assert!(
            louo.mean_accuracy() > 1.5 / 7.0,
            "LOUO accuracy {} barely beats chance",
            louo.mean_accuracy()
        );
        // Generalizing to an unseen wearer is (weakly) harder than the
        // pooled protocol; allow a small tolerance for fold noise.
        assert!(
            louo.mean_accuracy() <= pooled + 0.10,
            "LOUO {} implausibly beats pooled {pooled}",
            louo.mean_accuracy()
        );
    }

    #[test]
    fn worst_fold_is_the_minimum() {
        let result = leave_one_user_out(
            &small_dataset(),
            &DpConfig::paper_pareto_5()[4],
            &TrainConfig::fast(3),
        )
        .unwrap();
        let worst = result.worst_fold().unwrap();
        for f in &result.folds {
            assert!(worst.accuracy <= f.accuracy);
        }
    }

    #[test]
    fn single_user_dataset_is_rejected() {
        let d = Dataset::generate(1, 60, 1);
        let err = leave_one_user_out(&d, &DpConfig::paper_pareto_5()[4], &TrainConfig::fast(1));
        assert!(matches!(err, Err(HarError::EmptyTrainingSet)));
    }

    #[test]
    fn louo_is_deterministic() {
        let d = small_dataset();
        let config = &DpConfig::paper_pareto_5()[4];
        let a = leave_one_user_out(&d, config, &TrainConfig::fast(9)).unwrap();
        let b = leave_one_user_out(&d, config, &TrainConfig::fast(9)).unwrap();
        assert_eq!(a, b);
    }
}
