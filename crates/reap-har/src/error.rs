//! Error type for the HAR pipeline.

use std::error::Error;
use std::fmt;

use reap_dsp::DspError;

/// Errors produced by the HAR pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HarError {
    /// A design-point configuration is internally inconsistent (e.g. no
    /// feature source at all, or accel features requested with no axes).
    InvalidConfig(String),
    /// A DSP kernel failed while extracting features.
    Dsp(DspError),
    /// Training was requested with an empty training set.
    EmptyTrainingSet,
    /// A feature vector had an unexpected dimension.
    FeatureDimension {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension that was produced.
        got: usize,
    },
}

impl fmt::Display for HarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarError::InvalidConfig(msg) => write!(f, "invalid design point config: {msg}"),
            HarError::Dsp(e) => write!(f, "feature extraction failed: {e}"),
            HarError::EmptyTrainingSet => write!(f, "training set is empty"),
            HarError::FeatureDimension { expected, got } => {
                write!(f, "feature vector has dimension {got}, expected {expected}")
            }
        }
    }
}

impl Error for HarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<DspError> for HarError {
    fn from(e: DspError) -> Self {
        HarError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HarError::from(DspError::EmptyInput);
        assert!(e.to_string().contains("feature extraction"));
        assert!(Error::source(&e).is_some());
        assert!(HarError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(HarError::FeatureDimension {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains('3'));
    }
}
