//! Confusion-matrix evaluation.

use std::fmt;

use reap_data::Activity;

/// A confusion matrix over the activity classes.
///
/// Rows are ground truth, columns are predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: [[usize; Activity::COUNT]; Activity::COUNT],
}

impl ConfusionMatrix {
    /// An empty matrix.
    #[must_use]
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix {
            counts: [[0; Activity::COUNT]; Activity::COUNT],
        }
    }

    /// Records one `(truth, prediction)` pair.
    pub fn record(&mut self, truth: Activity, prediction: Activity) {
        self.counts[truth.index()][prediction.index()] += 1;
    }

    /// Raw count for a `(truth, prediction)` cell.
    #[must_use]
    pub fn count(&self, truth: Activity, prediction: Activity) -> usize {
        self.counts[truth.index()][prediction.index()]
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy in `[0, 1]`; 0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..Activity::COUNT).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of one class (correct / ground-truth count); `None` when the
    /// class never appeared as ground truth.
    #[must_use]
    pub fn recall(&self, class: Activity) -> Option<f64> {
        let i = class.index();
        let row: usize = self.counts[i].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[i][i] as f64 / row as f64)
        }
    }

    /// Precision of one class (correct / predicted count); `None` when the
    /// class was never predicted.
    #[must_use]
    pub fn precision(&self, class: Activity) -> Option<f64> {
        let j = class.index();
        let col: usize = (0..Activity::COUNT).map(|i| self.counts[i][j]).sum();
        if col == 0 {
            None
        } else {
            Some(self.counts[j][j] as f64 / col as f64)
        }
    }

    /// Macro-averaged F1 score over classes that appeared in the ground
    /// truth. Classes with undefined precision contribute an F1 of 0.
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for class in Activity::ALL {
            if let Some(r) = self.recall(class) {
                n += 1;
                let p = self.precision(class).unwrap_or(0.0);
                if p + r > 0.0 {
                    sum += 2.0 * p * r / (p + r);
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The most confused off-diagonal pair `(truth, predicted, count)`, if
    /// any misclassification occurred.
    #[must_use]
    pub fn worst_confusion(&self) -> Option<(Activity, Activity, usize)> {
        let mut best: Option<(Activity, Activity, usize)> = None;
        for t in Activity::ALL {
            for p in Activity::ALL {
                if t != p {
                    let c = self.count(t, p);
                    if c > 0 && best.is_none_or(|(_, _, bc)| c > bc) {
                        best = Some((t, p, c));
                    }
                }
            }
        }
        best
    }
}

impl Default for ConfusionMatrix {
    fn default() -> Self {
        ConfusionMatrix::new()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12}", "truth\\pred")?;
        for p in Activity::ALL {
            write!(f, "{:>7}", truncate(p.label(), 6))?;
        }
        writeln!(f)?;
        for t in Activity::ALL {
            write!(f, "{:>12}", truncate(t.label(), 11))?;
            for p in Activity::ALL {
                write!(f, "{:>7}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy {:.2}%", self.accuracy() * 100.0)
    }
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(Activity::Sit), None);
        assert_eq!(m.worst_confusion(), None);
        assert_eq!(m, ConfusionMatrix::default());
    }

    #[test]
    fn accuracy_and_recall() {
        let mut m = ConfusionMatrix::new();
        m.record(Activity::Sit, Activity::Sit);
        m.record(Activity::Sit, Activity::Sit);
        m.record(Activity::Sit, Activity::Drive);
        m.record(Activity::Walk, Activity::Walk);
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.recall(Activity::Sit).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(Activity::Walk), Some(1.0));
        assert_eq!(m.precision(Activity::Walk), Some(1.0));
        // Drive was predicted once, never correctly.
        assert_eq!(m.precision(Activity::Drive), Some(0.0));
        assert_eq!(
            m.worst_confusion(),
            Some((Activity::Sit, Activity::Drive, 1))
        );
    }

    #[test]
    fn macro_f1_perfect_classifier() {
        let mut m = ConfusionMatrix::new();
        for a in Activity::ALL {
            m.record(a, a);
        }
        assert!((m.macro_f1() - 1.0).abs() < 1e-12);
        assert!((m.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_labels_and_accuracy() {
        let mut m = ConfusionMatrix::new();
        m.record(Activity::Walk, Activity::Walk);
        let s = m.to_string();
        assert!(s.contains("walk"));
        assert!(s.contains("accuracy 100.00%"));
    }
}
