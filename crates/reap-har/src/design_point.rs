//! Design points: a configuration plus its measured accuracy.

use std::fmt;

use crate::{DpConfig, HarError};

/// A design point: one configuration of the HAR pipeline together with its
/// measured recognition accuracy.
///
/// Energy and power characterization is added by the `reap-device` crate
/// (which depends on this one); keeping the accuracy-only type here lets
/// the HAR pipeline be tested without a device model.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// 1-based identifier (DP1..DP24 in the paper's terminology).
    pub id: u8,
    /// Pipeline configuration.
    pub config: DpConfig,
    /// Recognition accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl DesignPoint {
    /// Creates a design point, validating the configuration and accuracy.
    ///
    /// # Errors
    ///
    /// [`HarError::InvalidConfig`] if the configuration is inconsistent or
    /// the accuracy is outside `[0, 1]`.
    pub fn new(id: u8, config: DpConfig, accuracy: f64) -> Result<DesignPoint, HarError> {
        config.validate()?;
        if !(0.0..=1.0).contains(&accuracy) || !accuracy.is_finite() {
            return Err(HarError::InvalidConfig(format!(
                "accuracy {accuracy} outside [0, 1]"
            )));
        }
        Ok(DesignPoint {
            id,
            config,
            accuracy,
        })
    }

    /// The five Pareto-optimal design points with the paper's Table 2
    /// accuracies (94%, 93%, 92%, 90%, 76%).
    #[must_use]
    pub fn paper_five() -> Vec<DesignPoint> {
        const PAPER_ACCURACY: [f64; 5] = [0.94, 0.93, 0.92, 0.90, 0.76];
        DpConfig::paper_pareto_5()
            .into_iter()
            .zip(PAPER_ACCURACY)
            .enumerate()
            .map(|(i, (config, accuracy))| {
                DesignPoint::new(i as u8 + 1, config, accuracy).expect("paper DPs are valid")
            })
            .collect()
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DP{}: {} — {:.1}% accurate",
            self.id,
            self.config,
            self.accuracy * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_five_matches_table2() {
        let dps = DesignPoint::paper_five();
        assert_eq!(dps.len(), 5);
        let accs: Vec<f64> = dps.iter().map(|d| d.accuracy).collect();
        assert_eq!(accs, vec![0.94, 0.93, 0.92, 0.90, 0.76]);
        for (i, dp) in dps.iter().enumerate() {
            assert_eq!(dp.id as usize, i + 1);
        }
    }

    #[test]
    fn rejects_bad_accuracy() {
        let config = DpConfig::paper_pareto_5()[0].clone();
        assert!(DesignPoint::new(1, config.clone(), 1.5).is_err());
        assert!(DesignPoint::new(1, config.clone(), -0.1).is_err());
        assert!(DesignPoint::new(1, config, f64::NAN).is_err());
    }

    #[test]
    fn display_mentions_id_and_accuracy() {
        let dp = &DesignPoint::paper_five()[0];
        let s = dp.to_string();
        assert!(s.contains("DP1"));
        assert!(s.contains("94.0%"));
    }
}
