//! End-to-end training of a design point's classifier.

use reap_data::{Activity, ActivityWindow, Dataset};

use crate::config::NUM_CLASSES;
use crate::features::extract_features;
use crate::nn::{Mlp, TrainConfig};
use crate::normalize::Standardizer;
use crate::{ConfusionMatrix, DpConfig, HarError};

/// A trained, ready-to-run classifier for one design point.
///
/// Produced by [`train_classifier`]; bundles the feature standardizer, the
/// network, and the accuracies measured on the validation and held-out test
/// partitions. The `test_accuracy` is the number that plays the role of
/// `a_i` in the REAP optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedClassifier {
    /// The design-point configuration this classifier implements.
    pub config: DpConfig,
    /// Accuracy on the validation partition (used for model selection).
    pub validation_accuracy: f64,
    /// Accuracy on the held-out test partition (the paper's reported
    /// accuracy).
    pub test_accuracy: f64,
    /// Confusion matrix on the test partition.
    pub confusion: ConfusionMatrix,
    standardizer: Standardizer,
    network: Mlp,
}

impl TrainedClassifier {
    /// Classifies one sensor window.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors ([`HarError::Dsp`]).
    pub fn classify(&self, window: &ActivityWindow) -> Result<Activity, HarError> {
        let features = extract_features(&self.config, window)?;
        let normed = self.standardizer.apply(&features)?;
        let class = self.network.predict(&normed);
        Ok(Activity::from_index(class).expect("network outputs one of the 7 classes"))
    }

    /// Class-probability vector for one window (softmax outputs indexed by
    /// [`Activity::index`]).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors.
    pub fn probabilities(&self, window: &ActivityWindow) -> Result<Vec<f64>, HarError> {
        let features = extract_features(&self.config, window)?;
        let normed = self.standardizer.apply(&features)?;
        Ok(self.network.forward(&normed))
    }

    /// The underlying network (e.g. to inspect parameter counts).
    #[must_use]
    pub fn network(&self) -> &Mlp {
        &self.network
    }
}

/// Trains a classifier for `config` on `dataset` using the paper's
/// 60/20/20 train/validation/test protocol.
///
/// The split and the network initialization both derive from
/// `train_config.seed`, so results are fully reproducible.
///
/// # Errors
///
/// * [`HarError::InvalidConfig`] for inconsistent design points.
/// * [`HarError::EmptyTrainingSet`] for datasets too small to split.
/// * Any feature-extraction error.
pub fn train_classifier(
    dataset: &Dataset,
    config: &DpConfig,
    train_config: &TrainConfig,
) -> Result<TrainedClassifier, HarError> {
    config.validate()?;
    let split = dataset.split(train_config.seed);
    if split.train.is_empty() {
        return Err(HarError::EmptyTrainingSet);
    }

    let featurize = |windows: &[&ActivityWindow]| -> Result<(Vec<Vec<f64>>, Vec<usize>), HarError> {
        let mut xs = Vec::with_capacity(windows.len());
        let mut ys = Vec::with_capacity(windows.len());
        for w in windows {
            xs.push(extract_features(config, w)?);
            ys.push(w.label.index());
        }
        Ok((xs, ys))
    };

    let (train_x_raw, train_y) = featurize(&split.train)?;
    let standardizer = Standardizer::fit(&train_x_raw)?;
    let train_x = standardizer.apply_all(&train_x_raw)?;

    let sizes = config.nn.layer_sizes(config.feature_dim(), NUM_CLASSES);
    let mut network = Mlp::new(&sizes, train_config.seed)?;
    network.train(&train_x, &train_y, train_config)?;

    let (val_x_raw, val_y) = featurize(&split.validation)?;
    let val_x = standardizer.apply_all(&val_x_raw)?;
    let validation_accuracy = network.accuracy(&val_x, &val_y);

    let (test_x_raw, test_y) = featurize(&split.test)?;
    let test_x = standardizer.apply_all(&test_x_raw)?;
    let mut confusion = ConfusionMatrix::new();
    for (x, &y) in test_x.iter().zip(&test_y) {
        let pred = network.predict(x);
        confusion.record(
            Activity::from_index(y).expect("valid label"),
            Activity::from_index(pred).expect("valid prediction"),
        );
    }

    Ok(TrainedClassifier {
        config: config.clone(),
        validation_accuracy,
        test_accuracy: confusion.accuracy(),
        confusion,
        standardizer,
        network,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_data::Dataset;

    fn small_dataset() -> Dataset {
        Dataset::generate(4, 350, 42)
    }

    #[test]
    fn dp1_learns_far_better_than_chance() {
        let classifier = train_classifier(
            &small_dataset(),
            &DpConfig::paper_pareto_5()[0],
            &TrainConfig::fast(1),
        )
        .unwrap();
        assert!(
            classifier.test_accuracy > 0.6,
            "DP1 test accuracy = {}",
            classifier.test_accuracy
        );
        // ~20% of 350; per-class rounding can shift the total by a couple.
        let total = classifier.confusion.total() as i64;
        assert!((total - 70).abs() <= 3, "test partition size {total}");
    }

    #[test]
    fn stretch_only_is_worse_than_full_sensing() {
        let d = small_dataset();
        let dp1 =
            train_classifier(&d, &DpConfig::paper_pareto_5()[0], &TrainConfig::fast(1)).unwrap();
        let dp5 =
            train_classifier(&d, &DpConfig::paper_pareto_5()[4], &TrainConfig::fast(1)).unwrap();
        assert!(
            dp1.test_accuracy > dp5.test_accuracy,
            "dp1 {} <= dp5 {}",
            dp1.test_accuracy,
            dp5.test_accuracy
        );
    }

    #[test]
    fn classify_returns_plausible_labels() {
        let d = small_dataset();
        let classifier =
            train_classifier(&d, &DpConfig::paper_pareto_5()[0], &TrainConfig::fast(1)).unwrap();
        let mut correct = 0;
        let sample = &d.windows()[..50];
        for w in sample {
            if classifier.classify(w).unwrap() == w.label {
                correct += 1;
            }
        }
        assert!(correct > 25, "only {correct}/50 correct");
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let d = small_dataset();
        let classifier =
            train_classifier(&d, &DpConfig::paper_pareto_5()[4], &TrainConfig::fast(1)).unwrap();
        let p = classifier.probabilities(&d.windows()[0]).unwrap();
        assert_eq!(p.len(), Activity::COUNT);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let d = small_dataset();
        let a =
            train_classifier(&d, &DpConfig::paper_pareto_5()[4], &TrainConfig::fast(3)).unwrap();
        let b =
            train_classifier(&d, &DpConfig::paper_pareto_5()[4], &TrainConfig::fast(3)).unwrap();
        assert_eq!(a.test_accuracy, b.test_accuracy);
        assert_eq!(a.confusion, b.confusion);
    }
}
