//! A small multi-layer perceptron with softmax output and SGD training.
//!
//! The paper classifies activity windows with "a parameterized neural
//! network" whose structure (e.g. `4x12x7`) is one of the design-point
//! knobs. The networks involved are tiny — at most a few hundred weights —
//! so a dependency-free dense implementation with ReLU hidden units,
//! softmax cross-entropy loss, and momentum SGD is entirely adequate and
//! mirrors what runs on the MCU.

// Index-based loops below mirror the textbook linear-algebra notation;
// iterator rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::HarError;

/// A dense feed-forward network: ReLU hidden layers, softmax output.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    sizes: Vec<usize>,
    /// `weights[l]` is a `sizes[l+1] x sizes[l]` matrix, row-major.
    weights: Vec<Vec<f64>>,
    /// `biases[l]` has `sizes[l+1]` entries.
    biases: Vec<Vec<f64>>,
}

/// Hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub l2: f64,
    /// Seed for weight init and epoch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 80,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 32,
            l2: 1e-4,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A reduced-budget preset for tests and doctests: fewer epochs, same
    /// optimizer settings.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        TrainConfig {
            epochs: 25,
            seed,
            ..TrainConfig::default()
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean cross-entropy loss before training.
    pub initial_loss: f64,
    /// Mean cross-entropy loss after the final epoch.
    pub final_loss: f64,
    /// Epochs actually run.
    pub epochs: usize,
}

impl Mlp {
    /// Creates a network with the given layer sizes (`[input, hidden...,
    /// output]`) and Xavier-uniform initial weights.
    ///
    /// # Errors
    ///
    /// [`HarError::InvalidConfig`] if fewer than two sizes are given or any
    /// size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Result<Mlp, HarError> {
        if sizes.len() < 2 {
            return Err(HarError::InvalidConfig(
                "network needs at least input and output layers".into(),
            ));
        }
        if sizes.contains(&0) {
            return Err(HarError::InvalidConfig("layer size cannot be zero".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(sizes.len() - 1);
        let mut biases = Vec::with_capacity(sizes.len() - 1);
        for l in 0..sizes.len() - 1 {
            let (n_in, n_out) = (sizes[l], sizes[l + 1]);
            let limit = (6.0 / (n_in + n_out) as f64).sqrt();
            weights.push(
                (0..n_in * n_out)
                    .map(|_| rng.gen_range(-limit..limit))
                    .collect(),
            );
            biases.push(vec![0.0; n_out]);
        }
        Ok(Mlp {
            sizes: sizes.to_vec(),
            weights,
            biases,
        })
    }

    /// Layer sizes, `[input, hidden..., output]`.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Raw layer weights (row-major `sizes[l+1] x sizes[l]`), for the
    /// quantizer.
    pub(crate) fn raw_weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Raw layer biases, for the quantizer.
    pub(crate) fn raw_biases(&self) -> &[Vec<f64>] {
        &self.biases
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Number of output classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        *self.sizes.last().expect("at least two layers")
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Forward pass returning all layer activations (post-nonlinearity);
    /// `activations[0]` is the input, the last entry the softmax output.
    fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut activations = Vec::with_capacity(self.sizes.len());
        activations.push(x.to_vec());
        let last = self.weights.len() - 1;
        for l in 0..self.weights.len() {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let input = &activations[l];
            let mut z = vec![0.0; n_out];
            for o in 0..n_out {
                let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                let mut acc = self.biases[l][o];
                for (w, v) in row.iter().zip(input) {
                    acc += w * v;
                }
                z[o] = acc;
            }
            if l == last {
                softmax_in_place(&mut z);
            } else {
                for v in &mut z {
                    *v = v.max(0.0); // ReLU
                }
            }
            activations.push(z);
        }
        activations
    }

    /// Class probabilities for one input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::input_dim`].
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "input dimension {} does not match network input {}",
            x.len(),
            self.input_dim()
        );
        self.forward_trace(x).pop().expect("at least one layer")
    }

    /// Index of the most probable class.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::input_dim`].
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        let probs = self.forward(x);
        argmax(&probs)
    }

    /// Mean cross-entropy loss over a labeled set (no regularization term).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or labels are out of range.
    #[must_use]
    pub fn mean_loss(&self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            assert!(y < self.num_classes(), "label {y} out of range");
            let p = self.forward(x)[y].max(1e-12);
            total -= p.ln();
        }
        total / xs.len() as f64
    }

    /// Classification accuracy over a labeled set in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ.
    #[must_use]
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    /// Backpropagation over a batch: returns `(weight_grads, bias_grads,
    /// mean_loss)`, gradients averaged over the batch (without L2).
    fn backprop_batch(
        &self,
        xs: &[&Vec<f64>],
        ys: &[usize],
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, f64) {
        let mut w_grads: Vec<Vec<f64>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut b_grads: Vec<Vec<f64>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        let mut loss = 0.0;
        let batch = xs.len() as f64;

        for (x, &y) in xs.iter().zip(ys) {
            let activations = self.forward_trace(x);
            let probs = activations.last().expect("output layer");
            loss -= probs[y].max(1e-12).ln();

            // Output delta for softmax + cross-entropy: p - onehot(y).
            let mut delta: Vec<f64> = probs.clone();
            delta[y] -= 1.0;

            for l in (0..self.weights.len()).rev() {
                let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
                let input = &activations[l];
                for o in 0..n_out {
                    let d = delta[o];
                    if d != 0.0 {
                        let row = &mut w_grads[l][o * n_in..(o + 1) * n_in];
                        for (g, v) in row.iter_mut().zip(input) {
                            *g += d * v / batch;
                        }
                        b_grads[l][o] += d / batch;
                    }
                }
                if l > 0 {
                    // Propagate through the ReLU of layer l-1's output.
                    let mut prev = vec![0.0; n_in];
                    for (i, p) in prev.iter_mut().enumerate() {
                        if input[i] > 0.0 {
                            let mut acc = 0.0;
                            for (o, &d) in delta.iter().enumerate() {
                                acc += d * self.weights[l][o * n_in + i];
                            }
                            *p = acc;
                        }
                    }
                    delta = prev;
                }
            }
        }
        (w_grads, b_grads, loss / batch)
    }

    /// Trains the network with mini-batch momentum SGD and cross-entropy
    /// loss.
    ///
    /// # Errors
    ///
    /// * [`HarError::EmptyTrainingSet`] when `xs` is empty.
    /// * [`HarError::FeatureDimension`] if any sample's dimension differs
    ///   from the network input.
    /// * [`HarError::InvalidConfig`] for a zero batch size, zero epochs, or
    ///   labels out of range.
    pub fn train(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[usize],
        config: &TrainConfig,
    ) -> Result<TrainStats, HarError> {
        if xs.is_empty() {
            return Err(HarError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(HarError::InvalidConfig(format!(
                "{} samples but {} labels",
                xs.len(),
                ys.len()
            )));
        }
        if config.batch_size == 0 || config.epochs == 0 {
            return Err(HarError::InvalidConfig(
                "batch size and epochs must be positive".into(),
            ));
        }
        for x in xs {
            if x.len() != self.input_dim() {
                return Err(HarError::FeatureDimension {
                    expected: self.input_dim(),
                    got: x.len(),
                });
            }
        }
        if ys.iter().any(|&y| y >= self.num_classes()) {
            return Err(HarError::InvalidConfig("label out of range".into()));
        }

        let initial_loss = self.mean_loss(xs, ys);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xA5A5));
        let mut w_vel: Vec<Vec<f64>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut b_vel: Vec<Vec<f64>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        let mut order: Vec<usize> = (0..xs.len()).collect();

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size) {
                let bx: Vec<&Vec<f64>> = chunk.iter().map(|&i| &xs[i]).collect();
                let by: Vec<usize> = chunk.iter().map(|&i| ys[i]).collect();
                let (w_grads, b_grads, _) = self.backprop_batch(&bx, &by);
                for l in 0..self.weights.len() {
                    for (i, g) in w_grads[l].iter().enumerate() {
                        let decay = config.l2 * self.weights[l][i];
                        w_vel[l][i] =
                            config.momentum * w_vel[l][i] - config.learning_rate * (g + decay);
                        self.weights[l][i] += w_vel[l][i];
                    }
                    for (i, g) in b_grads[l].iter().enumerate() {
                        b_vel[l][i] = config.momentum * b_vel[l][i] - config.learning_rate * g;
                        self.biases[l][i] += b_vel[l][i];
                    }
                }
            }
        }

        Ok(TrainStats {
            initial_loss,
            final_loss: self.mean_loss(xs, ys),
            epochs: config.epochs,
        })
    }
}

/// Numerically stable in-place softmax.
fn softmax_in_place(z: &mut [f64]) {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// Index of the largest element.
fn argmax(x: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_sizes() {
        assert!(Mlp::new(&[4], 0).is_err());
        assert!(Mlp::new(&[4, 0, 2], 0).is_err());
        let net = Mlp::new(&[4, 8, 3], 0).unwrap();
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.num_classes(), 3);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn softmax_output_is_a_distribution() {
        let net = Mlp::new(&[5, 6, 4], 1).unwrap();
        let p = net.forward(&[0.3, -1.0, 2.0, 0.0, 0.7]);
        assert_eq!(p.len(), 4);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "input dimension")]
    fn forward_rejects_wrong_dimension() {
        let net = Mlp::new(&[5, 4], 1).unwrap();
        let _ = net.forward(&[1.0, 2.0]);
    }

    #[test]
    fn analytic_gradients_match_numerical() {
        // Finite-difference check on a tiny network over a small batch.
        let mut net = Mlp::new(&[3, 4, 2], 7).unwrap();
        let xs = vec![
            vec![0.5, -0.2, 0.8],
            vec![-1.0, 0.3, 0.1],
            vec![0.0, 1.0, -0.5],
        ];
        let ys = vec![0usize, 1, 0];
        let refs: Vec<&Vec<f64>> = xs.iter().collect();
        let (w_grads, b_grads, _) = net.backprop_batch(&refs, &ys);

        let eps = 1e-6;
        for l in 0..net.weights.len() {
            for i in 0..net.weights[l].len() {
                let orig = net.weights[l][i];
                net.weights[l][i] = orig + eps;
                let up = net.mean_loss(&xs, &ys);
                net.weights[l][i] = orig - eps;
                let down = net.mean_loss(&xs, &ys);
                net.weights[l][i] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - w_grads[l][i]).abs() < 1e-5,
                    "weight grad mismatch at layer {l} index {i}: {numeric} vs {}",
                    w_grads[l][i]
                );
            }
            for i in 0..net.biases[l].len() {
                let orig = net.biases[l][i];
                net.biases[l][i] = orig + eps;
                let up = net.mean_loss(&xs, &ys);
                net.biases[l][i] = orig - eps;
                let down = net.mean_loss(&xs, &ys);
                net.biases[l][i] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - b_grads[l][i]).abs() < 1e-5,
                    "bias grad mismatch at layer {l} index {i}"
                );
            }
        }
    }

    #[test]
    fn learns_xor() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0usize, 1, 1, 0];
        // XOR is not linearly separable; a hidden layer must crack it.
        // Try a few seeds: tiny nets can get stuck in a dead-ReLU corner.
        let config = TrainConfig {
            epochs: 3000,
            learning_rate: 0.1,
            momentum: 0.9,
            batch_size: 4,
            l2: 0.0,
            seed: 3,
        };
        let solved = (0..5).any(|seed| {
            let mut net = Mlp::new(&[2, 6, 2], seed).unwrap();
            net.train(&xs, &ys, &config).unwrap();
            net.accuracy(&xs, &ys) == 1.0
        });
        assert!(solved, "no seed learned XOR");
    }

    #[test]
    fn training_reduces_loss_on_separable_blobs() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let t = i as f64 / 10.0;
            xs.push(vec![2.0 + t.sin() * 0.1, 2.0 + t.cos() * 0.1]);
            ys.push(0);
            xs.push(vec![-2.0 + t.sin() * 0.1, -2.0 + t.cos() * 0.1]);
            ys.push(1);
        }
        let mut net = Mlp::new(&[2, 4, 2], 0).unwrap();
        let stats = net.train(&xs, &ys, &TrainConfig::fast(0)).unwrap();
        assert!(stats.final_loss < stats.initial_loss);
        assert!(net.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn train_validates_inputs() {
        let mut net = Mlp::new(&[2, 2], 0).unwrap();
        assert_eq!(
            net.train(&[], &[], &TrainConfig::default()).unwrap_err(),
            HarError::EmptyTrainingSet
        );
        let bad_dim = net.train(&[vec![1.0]], &[0], &TrainConfig::default());
        assert!(matches!(bad_dim, Err(HarError::FeatureDimension { .. })));
        let bad_label = net.train(&[vec![1.0, 2.0]], &[5], &TrainConfig::default());
        assert!(matches!(bad_label, Err(HarError::InvalidConfig(_))));
        let zero_batch = net.train(
            &[vec![1.0, 2.0]],
            &[0],
            &TrainConfig {
                batch_size: 0,
                ..TrainConfig::default()
            },
        );
        assert!(matches!(zero_batch, Err(HarError::InvalidConfig(_))));
    }

    #[test]
    fn training_is_deterministic() {
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let ys = vec![0usize, 1];
        let make = || {
            let mut net = Mlp::new(&[2, 3, 2], 9).unwrap();
            net.train(&xs, &ys, &TrainConfig::fast(9)).unwrap();
            net
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[0.1, 0.5, 0.5, 0.2]), 1);
        assert_eq!(argmax(&[3.0]), 0);
    }
}
