//! Weight-quantized inference.
//!
//! A CC2650-class MCU stores classifier weights in flash; quantizing them
//! to small integers shrinks the image by 4-8x and is how the paper-style
//! "parameterized NN" would actually be deployed. This module implements
//! symmetric per-layer weight quantization: each layer's weights are mapped
//! to integers in `[-(2^(bits-1) - 1), 2^(bits-1) - 1]` with one f64 scale
//! per layer; inference dequantizes on the fly (the arithmetic itself stays
//! in floating point, as it would in soft-float MCU code).

use crate::nn::Mlp;
use crate::HarError;

/// A weight-quantized copy of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    sizes: Vec<usize>,
    /// Per-layer quantized weights, row-major like [`Mlp`]'s.
    weights: Vec<Vec<i16>>,
    /// Per-layer weight scale: `w ~= q * scale`.
    scales: Vec<f64>,
    /// Biases stay in f64 (there are only a handful; MCU code keeps them
    /// full precision too).
    biases: Vec<Vec<f64>>,
    bits: u8,
}

impl QuantizedMlp {
    /// Quantizes a trained network to `bits`-wide weights (4..=16).
    ///
    /// # Errors
    ///
    /// [`HarError::InvalidConfig`] when `bits` is outside `4..=16`.
    pub fn from_mlp(mlp: &Mlp, bits: u8) -> Result<QuantizedMlp, HarError> {
        if !(4..=16).contains(&bits) {
            return Err(HarError::InvalidConfig(format!(
                "quantization width {bits} outside 4..=16"
            )));
        }
        let q_max = f64::from((1i32 << (bits - 1)) - 1);
        let mut weights = Vec::with_capacity(mlp.raw_weights().len());
        let mut scales = Vec::with_capacity(mlp.raw_weights().len());
        for layer in mlp.raw_weights() {
            let max_abs = layer.iter().fold(0.0f64, |m, w| m.max(w.abs()));
            let scale = if max_abs > 0.0 { max_abs / q_max } else { 1.0 };
            scales.push(scale);
            weights.push(
                layer
                    .iter()
                    .map(|w| (w / scale).round().clamp(-q_max, q_max) as i16)
                    .collect(),
            );
        }
        Ok(QuantizedMlp {
            sizes: mlp.sizes().to_vec(),
            weights,
            scales,
            biases: mlp.raw_biases().to_vec(),
            bits,
        })
    }

    /// Quantization width in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Flash bytes the quantized weights occupy (packed at `bits` per
    /// weight, biases as 4-byte floats).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        let weight_bits: usize = self
            .weights
            .iter()
            .map(|l| l.len() * self.bits as usize)
            .sum();
        let bias_bytes: usize = self.biases.iter().map(|b| b.len() * 4).sum();
        weight_bits.div_ceil(8) + bias_bytes
    }

    /// Class scores (softmax-free logits are enough for argmax).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    #[must_use]
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "input dimension {} does not match network input {}",
            x.len(),
            self.input_dim()
        );
        let last = self.weights.len() - 1;
        let mut activation = x.to_vec();
        for l in 0..self.weights.len() {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let scale = self.scales[l];
            let mut z = vec![0.0; n_out];
            for (o, zo) in z.iter_mut().enumerate() {
                let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                let mut acc = 0.0;
                for (q, v) in row.iter().zip(&activation) {
                    acc += f64::from(*q) * v;
                }
                *zo = acc * scale + self.biases[l][o];
            }
            if l != last {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            activation = z;
        }
        activation
    }

    /// Index of the highest-scoring class.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        let logits = self.logits(x);
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Agreement rate with another predictor over a sample set.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    #[must_use]
    pub fn agreement(&self, float_net: &Mlp, xs: &[Vec<f64>]) -> f64 {
        if xs.is_empty() {
            return 1.0;
        }
        let same = xs
            .iter()
            .filter(|x| self.predict(x) == float_net.predict(x))
            .count();
        same as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::TrainConfig;

    fn trained_net() -> (Mlp, Vec<Vec<f64>>, Vec<usize>) {
        // Separable blobs, as in the nn tests.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let t = i as f64 / 10.0;
            xs.push(vec![2.0 + t.sin() * 0.3, 2.0 + t.cos() * 0.3]);
            ys.push(0usize);
            xs.push(vec![-2.0 + t.sin() * 0.3, -2.0 - t.cos() * 0.3]);
            ys.push(1);
        }
        let mut net = Mlp::new(&[2, 6, 2], 3).unwrap();
        net.train(&xs, &ys, &TrainConfig::fast(3)).unwrap();
        (net, xs, ys)
    }

    #[test]
    fn rejects_bad_widths() {
        let net = Mlp::new(&[2, 2], 0).unwrap();
        assert!(QuantizedMlp::from_mlp(&net, 3).is_err());
        assert!(QuantizedMlp::from_mlp(&net, 17).is_err());
        assert!(QuantizedMlp::from_mlp(&net, 8).is_ok());
    }

    #[test]
    fn eight_bit_agrees_with_float_on_easy_data() {
        let (net, xs, ys) = trained_net();
        let q = QuantizedMlp::from_mlp(&net, 8).unwrap();
        assert!(q.agreement(&net, &xs) > 0.98, "agreement too low");
        // And accuracy survives quantization.
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| q.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95);
    }

    #[test]
    fn sixteen_bit_is_nearly_exact() {
        let (net, xs, _) = trained_net();
        let q = QuantizedMlp::from_mlp(&net, 16).unwrap();
        assert_eq!(q.agreement(&net, &xs), 1.0);
        // Logits track the float net closely.
        let fl = net.forward(&xs[0]);
        let ql = q.logits(&xs[0]);
        // forward() applies softmax; compare argmax ordering instead.
        let fmax = fl.iter().cloned().fold(f64::MIN, f64::max);
        let f_arg = fl.iter().position(|&v| v == fmax).unwrap();
        let qmax = ql.iter().cloned().fold(f64::MIN, f64::max);
        let q_arg = ql.iter().position(|&v| v == qmax).unwrap();
        assert_eq!(f_arg, q_arg);
    }

    #[test]
    fn narrower_widths_shrink_storage() {
        let (net, _, _) = trained_net();
        let q4 = QuantizedMlp::from_mlp(&net, 4).unwrap();
        let q8 = QuantizedMlp::from_mlp(&net, 8).unwrap();
        let q16 = QuantizedMlp::from_mlp(&net, 16).unwrap();
        assert!(q4.storage_bytes() < q8.storage_bytes());
        assert!(q8.storage_bytes() < q16.storage_bytes());
        // 8-bit weights: (2*6 + 6*2) bytes + biases (6+2)*4 = 24 + 32.
        assert_eq!(q8.storage_bytes(), 24 + 32);
        assert_eq!(q8.bits(), 8);
        assert_eq!(q8.input_dim(), 2);
    }

    #[test]
    fn zero_weight_layers_are_handled() {
        let net = Mlp::new(&[2, 2], 1).unwrap();
        // Freshly initialized biases are zero; quantization must not
        // divide by zero even if a layer were all-zero.
        let q = QuantizedMlp::from_mlp(&net, 8).unwrap();
        let _ = q.predict(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "input dimension")]
    fn predict_rejects_wrong_dimension() {
        let net = Mlp::new(&[3, 2], 0).unwrap();
        let q = QuantizedMlp::from_mlp(&net, 8).unwrap();
        let _ = q.predict(&[1.0]);
    }
}
