//! Pareto-front extraction in the (energy, accuracy) plane.

/// Indices of the Pareto-optimal points among `(cost, value)` pairs, where
/// lower cost and higher value are better (energy and accuracy in the
/// paper's Fig. 3).
///
/// A point is dominated when another point has `cost <=` **and**
/// `value >=` with at least one strict inequality. Duplicate points are all
/// kept (none strictly dominates the other). The returned indices are
/// sorted by ascending cost.
///
/// # Examples
///
/// ```
/// use reap_har::pareto_front;
///
/// // (energy mJ, accuracy): the middle point is dominated.
/// let pts = [(1.93, 0.76), (3.00, 0.70), (4.48, 0.94)];
/// assert_eq!(pareto_front(&pts), vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front: Vec<usize> = (0..points.len())
        .filter(|&i| {
            let (ci, vi) = points[i];
            !points
                .iter()
                .enumerate()
                .any(|(j, &(cj, vj))| j != i && cj <= ci && vj >= vi && (cj < ci || vj > vi))
        })
        .collect();
    front.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("finite costs")
            .then(a.cmp(&b))
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn table2_points_are_all_on_the_front() {
        // The five Table 2 DPs: each cheaper one is less accurate.
        let pts = [
            (4.48, 0.94),
            (3.72, 0.93),
            (2.94, 0.92),
            (2.66, 0.90),
            (1.93, 0.76),
        ];
        assert_eq!(pareto_front(&pts), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn dominated_point_is_dropped() {
        // The paper's "red rectangle" point: dominated by DP2, DP3, DP4.
        let pts = [
            (3.72, 0.93),
            (2.94, 0.92),
            (2.66, 0.90),
            (3.40, 0.85), // dominated
        ];
        let front = pareto_front(&pts);
        assert!(!front.contains(&3));
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn duplicates_are_both_kept() {
        let pts = [(1.0, 0.5), (1.0, 0.5)];
        assert_eq!(pareto_front(&pts).len(), 2);
    }

    #[test]
    fn equal_cost_lower_value_is_dominated() {
        let pts = [(1.0, 0.5), (1.0, 0.6)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn front_is_sorted_by_cost() {
        let pts = [(5.0, 0.9), (1.0, 0.3), (3.0, 0.7)];
        assert_eq!(pareto_front(&pts), vec![1, 2, 0]);
    }
}
