//! Design-point configuration knobs (Fig. 2 of the paper).

use std::fmt;

use crate::HarError;

/// Which accelerometer axes are powered and sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelAxes {
    /// All three axes.
    Xyz,
    /// Lateral and forward axes.
    Xy,
    /// Lateral axis only.
    X,
    /// Forward axis only (the paper's single-axis choice: the y axis
    /// carries the most gait information).
    Y,
    /// Accelerometer fully off.
    Off,
}

impl AccelAxes {
    /// Number of active axes.
    #[must_use]
    pub fn count(self) -> usize {
        match self {
            AccelAxes::Xyz => 3,
            AccelAxes::Xy => 2,
            AccelAxes::X | AccelAxes::Y => 1,
            AccelAxes::Off => 0,
        }
    }

    /// Indices (into `[x, y, z]`) of the active axes.
    #[must_use]
    pub fn indices(self) -> &'static [usize] {
        match self {
            AccelAxes::Xyz => &[0, 1, 2],
            AccelAxes::Xy => &[0, 1],
            AccelAxes::X => &[0],
            AccelAxes::Y => &[1],
            AccelAxes::Off => &[],
        }
    }
}

impl fmt::Display for AccelAxes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccelAxes::Xyz => "x+y+z",
            AccelAxes::Xy => "x+y",
            AccelAxes::X => "x",
            AccelAxes::Y => "y",
            AccelAxes::Off => "off",
        };
        f.write_str(s)
    }
}

/// Fraction of the 1.6 s activity window during which the accelerometer
/// stays on. (The stretch sensor, being passive and cheap, always samples
/// the full window, as in the paper.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensingPeriod {
    /// 100% — the full 1.6 s.
    Full,
    /// 75% — 1.2 s.
    P75,
    /// 50% — 0.8 s (DP3).
    P50,
    /// "40%" — 0.6 s (DP4). The paper labels 0.6 s as 40%; the exact
    /// fraction 0.6/1.6 = 0.375 is used here so energies match.
    P40,
}

impl SensingPeriod {
    /// The on-fraction of the window.
    #[must_use]
    pub fn fraction(self) -> f64 {
        match self {
            SensingPeriod::Full => 1.0,
            SensingPeriod::P75 => 0.75,
            SensingPeriod::P50 => 0.5,
            SensingPeriod::P40 => 0.375,
        }
    }

    /// Sensing time in seconds for a 1.6 s window.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.fraction() * reap_data::WINDOW_SECONDS
    }
}

impl fmt::Display for SensingPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensingPeriod::Full => "100%",
            SensingPeriod::P75 => "75%",
            SensingPeriod::P50 => "50%",
            SensingPeriod::P40 => "40%",
        };
        f.write_str(s)
    }
}

/// Feature family computed from the accelerometer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelFeatures {
    /// Six summary statistics per active axis (mean, std, min, max, rms,
    /// mean crossings).
    Statistical,
    /// Haar-DWT subband energies (3 levels -> 4 values) per active axis.
    Dwt,
    /// No accelerometer features.
    Off,
}

impl fmt::Display for AccelFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccelFeatures::Statistical => "stats",
            AccelFeatures::Dwt => "dwt",
            AccelFeatures::Off => "off",
        };
        f.write_str(s)
    }
}

/// Feature family computed from the stretch sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StretchFeatures {
    /// Magnitudes of a 16-point FFT (9 non-redundant bins), the feature
    /// every Table 2 design point uses.
    Fft16,
    /// Six summary statistics of the stretch signal.
    Statistical,
    /// No stretch features.
    Off,
}

impl fmt::Display for StretchFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StretchFeatures::Fft16 => "16-fft",
            StretchFeatures::Statistical => "stats",
            StretchFeatures::Off => "off",
        };
        f.write_str(s)
    }
}

/// Neural-network classifier structure (hidden layer sizes; the output is
/// always the 7 activity classes). Mirrors the paper's `4x12x7`, `4x8x7`
/// and `4x7` structures, whose input width follows from the feature set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NnStructure {
    /// One hidden layer of 12 units.
    Hidden12,
    /// One hidden layer of 8 units.
    Hidden8,
    /// No hidden layer: direct softmax on the features.
    Direct,
}

impl NnStructure {
    /// Hidden layer sizes.
    #[must_use]
    pub fn hidden_sizes(self) -> &'static [usize] {
        match self {
            NnStructure::Hidden12 => &[12],
            NnStructure::Hidden8 => &[8],
            NnStructure::Direct => &[],
        }
    }

    /// Full layer-size vector for an input of `input_dim` features and
    /// `classes` outputs.
    #[must_use]
    pub fn layer_sizes(self, input_dim: usize, classes: usize) -> Vec<usize> {
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(self.hidden_sizes());
        sizes.push(classes);
        sizes
    }

    /// Multiply-accumulate operations of one inference pass, the quantity
    /// the device timing model scales with.
    #[must_use]
    pub fn mac_count(self, input_dim: usize, classes: usize) -> usize {
        let sizes = self.layer_sizes(input_dim, classes);
        sizes.windows(2).map(|w| w[0] * w[1]).sum()
    }
}

impl fmt::Display for NnStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NnStructure::Hidden12 => "h12",
            NnStructure::Hidden8 => "h8",
            NnStructure::Direct => "direct",
        };
        f.write_str(s)
    }
}

/// A complete design-point configuration: one choice per knob.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DpConfig {
    /// Active accelerometer axes.
    pub axes: AccelAxes,
    /// Accelerometer sensing period.
    pub sensing: SensingPeriod,
    /// Accelerometer feature family.
    pub accel_features: AccelFeatures,
    /// Stretch feature family.
    pub stretch_features: StretchFeatures,
    /// Classifier structure.
    pub nn: NnStructure,
}

/// Number of activity classes (six activities + transitions).
pub(crate) const NUM_CLASSES: usize = reap_data::Activity::COUNT;

impl DpConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`HarError::InvalidConfig`] when accel features are requested with
    /// the accelerometer off (or vice versa), or when no feature source is
    /// enabled at all.
    pub fn validate(&self) -> Result<(), HarError> {
        if self.axes == AccelAxes::Off && self.accel_features != AccelFeatures::Off {
            return Err(HarError::InvalidConfig(
                "accelerometer features requested but all axes are off".into(),
            ));
        }
        if self.axes != AccelAxes::Off && self.accel_features == AccelFeatures::Off {
            return Err(HarError::InvalidConfig(
                "accelerometer axes are powered but produce no features".into(),
            ));
        }
        if self.accel_features == AccelFeatures::Off
            && self.stretch_features == StretchFeatures::Off
        {
            return Err(HarError::InvalidConfig("no feature source enabled".into()));
        }
        Ok(())
    }

    /// Dimension of the feature vector this configuration produces.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        let accel = match self.accel_features {
            AccelFeatures::Statistical => 6 * self.axes.count(),
            AccelFeatures::Dwt => 4 * self.axes.count(),
            AccelFeatures::Off => 0,
        };
        let stretch = match self.stretch_features {
            StretchFeatures::Fft16 => 9,
            StretchFeatures::Statistical => 6,
            StretchFeatures::Off => 0,
        };
        accel + stretch
    }

    /// The five Pareto-optimal design points of the paper's Table 2, in
    /// order DP1..DP5.
    #[must_use]
    pub fn paper_pareto_5() -> [DpConfig; 5] {
        [
            // DP1: statistical features of all three axes over the full
            // window + 16-FFT stretch.
            DpConfig {
                axes: AccelAxes::Xyz,
                sensing: SensingPeriod::Full,
                accel_features: AccelFeatures::Statistical,
                stretch_features: StretchFeatures::Fft16,
                nn: NnStructure::Hidden12,
            },
            // DP2: y axis only, full window.
            DpConfig {
                axes: AccelAxes::Y,
                sensing: SensingPeriod::Full,
                accel_features: AccelFeatures::Statistical,
                stretch_features: StretchFeatures::Fft16,
                nn: NnStructure::Hidden12,
            },
            // DP3: x+y axes for 50% of the window (0.8 s).
            DpConfig {
                axes: AccelAxes::Xy,
                sensing: SensingPeriod::P50,
                accel_features: AccelFeatures::Statistical,
                stretch_features: StretchFeatures::Fft16,
                nn: NnStructure::Hidden8,
            },
            // DP4: y axis for 40% of the window (0.6 s).
            DpConfig {
                axes: AccelAxes::Y,
                sensing: SensingPeriod::P40,
                accel_features: AccelFeatures::Statistical,
                stretch_features: StretchFeatures::Fft16,
                nn: NnStructure::Hidden12,
            },
            // DP5: stretch sensor only.
            DpConfig {
                axes: AccelAxes::Off,
                sensing: SensingPeriod::Full,
                accel_features: AccelFeatures::Off,
                stretch_features: StretchFeatures::Fft16,
                nn: NnStructure::Hidden8,
            },
        ]
    }

    /// The 24 candidate design points implemented in the paper (Sec. 4.2).
    /// The first five entries are the Pareto-optimal DP1..DP5; the rest
    /// explore the knob space and are dominated in the energy-accuracy
    /// plane (Fig. 3).
    #[must_use]
    pub fn standard_24() -> Vec<DpConfig> {
        use AccelAxes as A;
        use AccelFeatures as F;
        use NnStructure as N;
        use SensingPeriod as S;
        use StretchFeatures as T;

        let dp = |axes, sensing, accel_features, stretch_features, nn| DpConfig {
            axes,
            sensing,
            accel_features,
            stretch_features,
            nn,
        };

        let mut v = Vec::with_capacity(24);
        v.extend(DpConfig::paper_pareto_5());
        // Feature-richness variants of the full configuration.
        v.push(dp(A::Xyz, S::Full, F::Dwt, T::Fft16, N::Hidden12));
        v.push(dp(A::Xyz, S::Full, F::Statistical, T::Fft16, N::Hidden8));
        v.push(dp(A::Xyz, S::Full, F::Statistical, T::Fft16, N::Direct));
        // Reduced sensing with all axes.
        v.push(dp(A::Xyz, S::P75, F::Statistical, T::Fft16, N::Hidden12));
        v.push(dp(A::Xyz, S::P50, F::Statistical, T::Fft16, N::Hidden12));
        // Two-axis family.
        v.push(dp(A::Xy, S::Full, F::Statistical, T::Fft16, N::Hidden12));
        v.push(dp(A::Xy, S::Full, F::Dwt, T::Fft16, N::Hidden12));
        v.push(dp(A::Xy, S::P75, F::Statistical, T::Fft16, N::Hidden8));
        v.push(dp(A::Xy, S::P40, F::Statistical, T::Fft16, N::Hidden8));
        // Single-axis x (less informative than y: dominated).
        v.push(dp(A::X, S::Full, F::Statistical, T::Fft16, N::Hidden12));
        v.push(dp(A::X, S::P50, F::Statistical, T::Fft16, N::Hidden8));
        // Single-axis y variants.
        v.push(dp(A::Y, S::P75, F::Statistical, T::Fft16, N::Hidden12));
        v.push(dp(A::Y, S::P50, F::Statistical, T::Fft16, N::Hidden12));
        v.push(dp(A::Y, S::Full, F::Dwt, T::Fft16, N::Hidden8));
        // Stretch-statistics instead of the FFT.
        v.push(dp(
            A::Y,
            S::Full,
            F::Statistical,
            T::Statistical,
            N::Hidden12,
        ));
        v.push(dp(A::Xyz, S::Full, F::Dwt, T::Statistical, N::Hidden12));
        // Further all-axes variants (reduced sensing with a small NN, and
        // a mid-period DWT point).
        v.push(dp(A::Xyz, S::P40, F::Statistical, T::Fft16, N::Hidden8));
        v.push(dp(A::Xyz, S::P75, F::Dwt, T::Fft16, N::Hidden12));
        // A deeper-NN stretch-only variant.
        v.push(dp(A::Off, S::Full, F::Off, T::Fft16, N::Hidden12));
        debug_assert_eq!(v.len(), 24);
        v
    }

    /// One-line human-readable description.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "accel {} ({}, {}), stretch {}, nn {}",
            self.axes, self.sensing, self.accel_features, self.stretch_features, self.nn
        )
    }
}

impl fmt::Display for DpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_counts_and_indices_agree() {
        for axes in [
            AccelAxes::Xyz,
            AccelAxes::Xy,
            AccelAxes::X,
            AccelAxes::Y,
            AccelAxes::Off,
        ] {
            assert_eq!(axes.count(), axes.indices().len());
        }
        assert_eq!(AccelAxes::Y.indices(), &[1]);
    }

    #[test]
    fn sensing_periods_match_paper_seconds() {
        assert!((SensingPeriod::Full.seconds() - 1.6).abs() < 1e-12);
        assert!((SensingPeriod::P50.seconds() - 0.8).abs() < 1e-12);
        // The paper's "40%" sensing period is 0.6 s.
        assert!((SensingPeriod::P40.seconds() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn nn_mac_counts() {
        // 20 -> 12 -> 7: 20*12 + 12*7 = 324.
        assert_eq!(NnStructure::Hidden12.mac_count(20, 7), 324);
        // Direct 9 -> 7: 63.
        assert_eq!(NnStructure::Direct.mac_count(9, 7), 63);
        assert_eq!(NnStructure::Hidden8.layer_sizes(9, 7), vec![9, 8, 7]);
    }

    #[test]
    fn paper_pareto_5_is_valid_and_matches_table2_descriptions() {
        let dps = DpConfig::paper_pareto_5();
        for dp in &dps {
            dp.validate().unwrap();
            assert_eq!(dp.stretch_features, StretchFeatures::Fft16);
        }
        assert_eq!(dps[0].axes, AccelAxes::Xyz);
        assert_eq!(dps[1].axes, AccelAxes::Y);
        assert_eq!(dps[2].axes, AccelAxes::Xy);
        assert_eq!(dps[2].sensing, SensingPeriod::P50);
        assert_eq!(dps[3].sensing, SensingPeriod::P40);
        assert_eq!(dps[4].axes, AccelAxes::Off);
    }

    #[test]
    fn standard_24_is_valid_and_distinct() {
        let all = DpConfig::standard_24();
        assert_eq!(all.len(), 24);
        for dp in &all {
            dp.validate().unwrap();
        }
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "duplicate design point at index {i}");
            }
        }
        // First five are the Pareto set.
        assert_eq!(&all[..5], &DpConfig::paper_pareto_5());
    }

    #[test]
    fn feature_dims() {
        let dps = DpConfig::paper_pareto_5();
        assert_eq!(dps[0].feature_dim(), 18 + 9); // 3 axes * 6 stats + 9 FFT
        assert_eq!(dps[1].feature_dim(), 6 + 9);
        assert_eq!(dps[2].feature_dim(), 12 + 9);
        assert_eq!(dps[4].feature_dim(), 9);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = DpConfig {
            axes: AccelAxes::Off,
            sensing: SensingPeriod::Full,
            accel_features: AccelFeatures::Statistical,
            stretch_features: StretchFeatures::Fft16,
            nn: NnStructure::Hidden8,
        };
        assert!(bad.validate().is_err());
        let bad2 = DpConfig {
            axes: AccelAxes::Xy,
            sensing: SensingPeriod::Full,
            accel_features: AccelFeatures::Off,
            stretch_features: StretchFeatures::Fft16,
            nn: NnStructure::Hidden8,
        };
        assert!(bad2.validate().is_err());
        let bad3 = DpConfig {
            axes: AccelAxes::Off,
            sensing: SensingPeriod::Full,
            accel_features: AccelFeatures::Off,
            stretch_features: StretchFeatures::Off,
            nn: NnStructure::Hidden8,
        };
        assert!(bad3.validate().is_err());
    }

    #[test]
    fn describe_mentions_every_knob() {
        let dp = &DpConfig::paper_pareto_5()[0];
        let d = dp.describe();
        assert!(d.contains("x+y+z"));
        assert!(d.contains("100%"));
        assert!(d.contains("16-fft"));
        assert!(d.contains("h12"));
        assert_eq!(dp.to_string(), d);
    }
}
