//! Feature standardization (z-scoring).
//!
//! The feature families have wildly different scales (FFT magnitudes near
//! 10, accelerometer means near 1 g, mean-crossing counts in the tens);
//! training converges far better when every feature is standardized with
//! the *training set's* statistics.

use crate::HarError;

/// Per-feature affine normalizer: `x -> (x - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits a standardizer to a set of feature vectors.
    ///
    /// Features with (near-)zero variance get a unit scale so they pass
    /// through centred but unscaled.
    ///
    /// # Errors
    ///
    /// * [`HarError::EmptyTrainingSet`] when `samples` is empty.
    /// * [`HarError::FeatureDimension`] when samples disagree in dimension.
    pub fn fit(samples: &[Vec<f64>]) -> Result<Standardizer, HarError> {
        let Some(first) = samples.first() else {
            return Err(HarError::EmptyTrainingSet);
        };
        let dim = first.len();
        for s in samples {
            if s.len() != dim {
                return Err(HarError::FeatureDimension {
                    expected: dim,
                    got: s.len(),
                });
            }
        }
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for s in samples {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(s) {
                let d = x - m;
                *v += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Ok(Standardizer { mean, std })
    }

    /// Feature dimension this standardizer was fitted on.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes one feature vector.
    ///
    /// # Errors
    ///
    /// [`HarError::FeatureDimension`] when the dimension differs from the
    /// fitted one.
    pub fn apply(&self, features: &[f64]) -> Result<Vec<f64>, HarError> {
        if features.len() != self.dim() {
            return Err(HarError::FeatureDimension {
                expected: self.dim(),
                got: features.len(),
            });
        }
        Ok(features
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(x, (m, s))| (x - m) / s)
            .collect())
    }

    /// Standardizes a batch.
    ///
    /// # Errors
    ///
    /// Same as [`Standardizer::apply`].
    pub fn apply_all(&self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, HarError> {
        samples.iter().map(|s| self.apply(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_apply_standardize() {
        let samples = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let st = Standardizer::fit(&samples).unwrap();
        let normed = st.apply_all(&samples).unwrap();
        // Column means should be ~0, stds ~1.
        for col in 0..2 {
            let mean: f64 = normed.iter().map(|s| s[col]).sum::<f64>() / 3.0;
            let var: f64 = normed.iter().map(|s| s[col] * s[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_features_pass_through_centred() {
        let samples = vec![vec![7.0], vec![7.0], vec![7.0]];
        let st = Standardizer::fit(&samples).unwrap();
        assert_eq!(st.apply(&[7.0]).unwrap(), vec![0.0]);
        assert_eq!(st.apply(&[8.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn errors_on_empty_or_mismatched() {
        assert_eq!(
            Standardizer::fit(&[]).unwrap_err(),
            HarError::EmptyTrainingSet
        );
        let st = Standardizer::fit(&[vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            st.apply(&[1.0]),
            Err(HarError::FeatureDimension {
                expected: 2,
                got: 1
            })
        ));
        assert!(Standardizer::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert_eq!(st.dim(), 2);
    }
}
