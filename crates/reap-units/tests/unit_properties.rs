//! Property tests for the quantity newtypes: the dimensional algebra must
//! be consistent under arbitrary finite values.

use proptest::prelude::*;
use reap_units::{approx_eq, Energy, Power, TimeSpan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn power_time_energy_triangle(
        watts in 1e-6f64..1e3,
        seconds in 1e-3f64..1e6,
    ) {
        let p = Power::from_watts(watts);
        let t = TimeSpan::from_seconds(seconds);
        let e = p * t;
        // e / t = p, e / p = t (up to float rounding).
        prop_assert!(approx_eq((e / t).watts(), watts, 1e-12, 1e-12));
        prop_assert!(approx_eq((e / p).seconds(), seconds, 1e-9, 1e-12));
        // Commutativity of the product.
        prop_assert_eq!(e, t * p);
    }

    #[test]
    fn unit_conversions_roundtrip(joules in -1e6f64..1e6) {
        let e = Energy::from_joules(joules);
        prop_assert!(approx_eq(Energy::from_millijoules(e.millijoules()).joules(), joules, 1e-9, 1e-12));
        prop_assert!(approx_eq(Energy::from_microjoules(e.microjoules()).joules(), joules, 1e-9, 1e-12));
        let p = Power::from_watts(joules);
        prop_assert!(approx_eq(Power::from_milliwatts(p.milliwatts()).watts(), joules, 1e-9, 1e-12));
        let t = TimeSpan::from_seconds(joules);
        prop_assert!(approx_eq(TimeSpan::from_hours(t.hours()).seconds(), joules, 1e-9, 1e-12));
        prop_assert!(approx_eq(TimeSpan::from_minutes(t.minutes()).seconds(), joules, 1e-9, 1e-12));
    }

    #[test]
    fn addition_is_commutative_and_sub_inverts(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
    ) {
        let (ea, eb) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!(ea + eb, eb + ea);
        prop_assert!(approx_eq(((ea + eb) - eb).joules(), a, 1e-6, 1e-12));
        let (pa, pb) = (Power::from_watts(a), Power::from_watts(b));
        prop_assert_eq!(pa + pb, pb + pa);
        let (ta, tb) = (TimeSpan::from_seconds(a), TimeSpan::from_seconds(b));
        prop_assert_eq!(ta + tb, tb + ta);
    }

    #[test]
    fn scalar_scaling_is_linear(e in -1e5f64..1e5, k in -100.0f64..100.0) {
        let energy = Energy::from_joules(e);
        prop_assert!(approx_eq((energy * k).joules(), e * k, 1e-9, 1e-12));
        prop_assert_eq!(energy * k, k * energy);
        if k != 0.0 {
            prop_assert!(approx_eq((energy * k / k).joules(), e, 1e-9, 1e-10));
        }
    }

    #[test]
    fn ratios_are_dimensionless_inverses(a in 1e-3f64..1e6, b in 1e-3f64..1e6) {
        let r = Energy::from_joules(a) / Energy::from_joules(b);
        let r_inv = Energy::from_joules(b) / Energy::from_joules(a);
        prop_assert!(approx_eq(r * r_inv, 1.0, 1e-12, 1e-12));
        prop_assert!(approx_eq(TimeSpan::from_seconds(a) / TimeSpan::from_seconds(b), a / b, 1e-12, 1e-12));
        prop_assert!(approx_eq(Power::from_watts(a) / Power::from_watts(b), a / b, 1e-12, 1e-12));
    }

    #[test]
    fn ordering_matches_underlying_values(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        prop_assert_eq!(
            Energy::from_joules(a) < Energy::from_joules(b),
            a < b
        );
        prop_assert_eq!(
            Energy::from_joules(a).min(Energy::from_joules(b)).joules(),
            a.min(b)
        );
        prop_assert_eq!(
            Energy::from_joules(a).max(Energy::from_joules(b)).joules(),
            a.max(b)
        );
    }

    #[test]
    fn sums_match_scalar_sums(values in proptest::collection::vec(-1e4f64..1e4, 0..50)) {
        let total: Energy = values.iter().map(|&j| Energy::from_joules(j)).sum();
        let scalar: f64 = values.iter().sum();
        prop_assert!(approx_eq(total.joules(), scalar, 1e-8, 1e-12));
    }
}
