//! The [`TimeSpan`] quantity (stored internally in seconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::{Energy, Power};

/// A span of time, stored in seconds.
///
/// REAP plans allocations over an *activity period* `TP` of one hour and
/// activity windows of 1.6 s, so both hour- and millisecond-level
/// constructors are provided.
///
/// # Examples
///
/// ```
/// use reap_units::TimeSpan;
///
/// let tp = TimeSpan::from_hours(1.0);
/// let window = TimeSpan::from_seconds(1.6);
/// let windows_per_period = tp / window;
/// assert_eq!(windows_per_period, 2250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct TimeSpan(f64);

impl TimeSpan {
    /// Zero duration.
    pub const ZERO: TimeSpan = TimeSpan(0.0);

    /// Creates a time span from seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        TimeSpan(seconds)
    }

    /// Creates a time span from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        TimeSpan(ms * 1e-3)
    }

    /// Creates a time span from minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        TimeSpan(minutes * 60.0)
    }

    /// Creates a time span from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        TimeSpan(hours * 3600.0)
    }

    /// The value in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[must_use]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The value in hours.
    #[must_use]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.min(other.0))
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.max(other.0))
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: TimeSpan, hi: TimeSpan) -> TimeSpan {
        assert!(lo.0 <= hi.0, "clamp bounds inverted: {lo} > {hi}");
        TimeSpan(self.0.clamp(lo.0, hi.0))
    }

    /// `true` if the underlying value is finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// `true` if the value is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs >= 3600.0 {
            write!(f, "{:.3} h", self.hours())
        } else if abs >= 60.0 {
            write!(f, "{:.3} min", self.minutes())
        } else if abs == 0.0 || abs >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else {
            write!(f, "{:.3} ms", self.millis())
        }
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl AddAssign for TimeSpan {
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;
    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl SubAssign for TimeSpan {
    fn sub_assign(&mut self, rhs: TimeSpan) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeSpan {
    type Output = TimeSpan;
    fn neg(self) -> TimeSpan {
        TimeSpan(-self.0)
    }
}

impl Mul<f64> for TimeSpan {
    type Output = TimeSpan;
    fn mul(self, rhs: f64) -> TimeSpan {
        TimeSpan(self.0 * rhs)
    }
}

impl Mul<TimeSpan> for f64 {
    type Output = TimeSpan;
    fn mul(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self * rhs.0)
    }
}

impl Div<f64> for TimeSpan {
    type Output = TimeSpan;
    fn div(self, rhs: f64) -> TimeSpan {
        TimeSpan(self.0 / rhs)
    }
}

/// Dimensionless ratio of two time spans.
impl Div<TimeSpan> for TimeSpan {
    type Output = f64;
    fn div(self, rhs: TimeSpan) -> f64 {
        self.0 / rhs.0
    }
}

/// Time sustained at a power yields an energy.
impl Mul<Power> for TimeSpan {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        Energy::from_joules(self.0 * rhs.watts())
    }
}

impl Sum for TimeSpan {
    fn sum<I: Iterator<Item = TimeSpan>>(iter: I) -> TimeSpan {
        iter.fold(TimeSpan::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a TimeSpan> for TimeSpan {
    fn sum<I: Iterator<Item = &'a TimeSpan>>(iter: I) -> TimeSpan {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_getters_are_consistent() {
        assert_eq!(TimeSpan::from_hours(1.0).seconds(), 3600.0);
        assert_eq!(TimeSpan::from_minutes(2.0).seconds(), 120.0);
        assert_eq!(TimeSpan::from_millis(1600.0).seconds(), 1.6);
        assert_eq!(TimeSpan::from_seconds(7200.0).hours(), 2.0);
        assert_eq!(TimeSpan::from_seconds(90.0).minutes(), 1.5);
        assert_eq!(TimeSpan::from_seconds(0.25).millis(), 250.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = TimeSpan::from_seconds(10.0);
        let b = TimeSpan::from_seconds(4.0);
        assert_eq!((a + b).seconds(), 14.0);
        assert_eq!((a - b).seconds(), 6.0);
        assert_eq!((a * 0.5).seconds(), 5.0);
        assert_eq!((0.5 * a).seconds(), 5.0);
        assert_eq!((a / 2.0).seconds(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-b).seconds(), -4.0);
    }

    #[test]
    fn time_times_power_is_energy() {
        let e = TimeSpan::from_hours(1.0) * Power::from_microwatts(50.0);
        assert!((e.joules() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", TimeSpan::from_hours(1.5)), "1.500 h");
        assert_eq!(format!("{}", TimeSpan::from_seconds(90.0)), "1.500 min");
        assert_eq!(format!("{}", TimeSpan::from_seconds(1.6)), "1.600 s");
        assert_eq!(format!("{}", TimeSpan::from_millis(5.71)), "5.710 ms");
    }

    #[test]
    fn min_max_clamp_sum() {
        let a = TimeSpan::from_seconds(1.0);
        let b = TimeSpan::from_seconds(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(TimeSpan::from_seconds(9.0).clamp(a, b), b);
        let total: TimeSpan = [a, b].iter().sum();
        assert_eq!(total.seconds(), 3.0);
    }
}
