//! Physical-quantity newtypes for the REAP reproduction.
//!
//! The REAP controller reasons about *energy budgets* (joules), *power draws*
//! (watts) and *time allocations* (seconds). Mixing those up as bare `f64`s is
//! the classic source of silent unit bugs (mJ vs J, mW vs W, hours vs
//! seconds), so every crate in this workspace trades in the newtypes defined
//! here instead.
//!
//! The types implement the dimensional algebra one expects:
//!
//! * [`Power`] × [`TimeSpan`] = [`Energy`]
//! * [`Energy`] ÷ [`TimeSpan`] = [`Power`]
//! * [`Energy`] ÷ [`Power`] = [`TimeSpan`]
//! * same-type addition/subtraction, scalar scaling, and dimensionless ratios.
//!
//! # Examples
//!
//! ```
//! use reap_units::{Energy, Power, TimeSpan};
//!
//! let budget = Energy::from_joules(5.0);
//! let p_dp4 = Power::from_milliwatts(1.64);
//! let hour = TimeSpan::from_hours(1.0);
//!
//! // Running DP4 for a full hour costs:
//! let cost = p_dp4 * hour;
//! assert!(cost.joules() > 5.9 && cost.joules() < 6.0);
//!
//! // How long can the budget sustain DP4?
//! let sustain = budget / p_dp4;
//! assert!(sustain < hour);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod power;
mod timespan;

pub use energy::Energy;
pub use power::Power;
pub use timespan::TimeSpan;

/// Absolute-plus-relative tolerance comparison for floating-point quantities.
///
/// Returns `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`. This is the
/// comparison used throughout the workspace's tests; it is exposed so that
/// downstream crates compare quantities consistently.
///
/// # Examples
///
/// ```
/// assert!(reap_units::approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!reap_units::approx_eq(1.0, 1.1, 1e-9, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_symmetric() {
        assert!(approx_eq(100.0, 100.0 + 1e-7, 1e-9, 1e-8));
        assert!(approx_eq(100.0 + 1e-7, 100.0, 1e-9, 1e-8));
    }

    #[test]
    fn approx_eq_rejects_large_gap() {
        assert!(!approx_eq(1.0, 2.0, 1e-9, 1e-6));
    }

    #[test]
    fn dimensional_algebra_roundtrip() {
        let e = Energy::from_millijoules(4.48);
        let t = TimeSpan::from_seconds(1.6);
        let p = e / t;
        assert!(approx_eq(p.milliwatts(), 2.8, 1e-9, 1e-12));
        let back = p * t;
        assert!(approx_eq(back.joules(), e.joules(), 1e-15, 1e-12));
    }
}
