//! The [`Energy`] quantity (stored internally in joules).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::{Power, TimeSpan};

/// An amount of energy, stored in joules.
///
/// `Energy` is a thin `f64` newtype: `Copy`, totally ordered on finite
/// values, and supporting the usual dimensional algebra (see the
/// [crate-level docs](crate)).
///
/// # Examples
///
/// ```
/// use reap_units::Energy;
///
/// let per_activity = Energy::from_millijoules(4.48);
/// let per_hour = per_activity * (3600.0 / 1.6);
/// assert!((per_hour.joules() - 10.08).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    #[must_use]
    pub fn from_joules(joules: f64) -> Self {
        Energy(joules)
    }

    /// Creates an energy from millijoules.
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    #[must_use]
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// The value in joules.
    #[must_use]
    pub fn joules(self) -> f64 {
        self.0
    }

    /// The value in millijoules.
    #[must_use]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microjoules.
    #[must_use]
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Energy, hi: Energy) -> Energy {
        assert!(lo.0 <= hi.0, "clamp bounds inverted: {lo} > {hi}");
        Energy(self.0.clamp(lo.0, hi.0))
    }

    /// `true` if the underlying value is finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// `true` if the value is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Energy {
        Energy(self.0.abs())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs == 0.0 || (1e-1..1e4).contains(&abs) {
            write!(f, "{:.4} J", self.0)
        } else if abs >= 1e-4 {
            write!(f, "{:.4} mJ", self.millijoules())
        } else {
            write!(f, "{:.4} uJ", self.microjoules())
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

/// Dimensionless ratio of two energies.
impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

/// Energy spread over a time span is a power.
impl Div<TimeSpan> for Energy {
    type Output = Power;
    fn div(self, rhs: TimeSpan) -> Power {
        Power::from_watts(self.0 / rhs.seconds())
    }
}

/// How long a power draw can be sustained by this energy.
impl Div<Power> for Energy {
    type Output = TimeSpan;
    fn div(self, rhs: Power) -> TimeSpan {
        TimeSpan::from_seconds(self.0 / rhs.watts())
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Energy {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_getters_are_consistent() {
        let e = Energy::from_millijoules(1500.0);
        assert!((e.joules() - 1.5).abs() < 1e-12);
        assert!((e.microjoules() - 1.5e6).abs() < 1e-3);
        assert_eq!(Energy::from_joules(0.0), Energy::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Energy::from_joules(2.0);
        let b = Energy::from_joules(0.5);
        assert_eq!((a + b).joules(), 2.5);
        assert_eq!((a - b).joules(), 1.5);
        assert_eq!((a * 2.0).joules(), 4.0);
        assert_eq!((2.0 * a).joules(), 4.0);
        assert_eq!((a / 4.0).joules(), 0.5);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).joules(), -2.0);
    }

    #[test]
    fn add_assign_and_sum() {
        let mut acc = Energy::ZERO;
        acc += Energy::from_joules(1.0);
        acc += Energy::from_joules(2.0);
        assert_eq!(acc.joules(), 3.0);
        let total: Energy = [Energy::from_joules(1.0); 5].iter().sum();
        assert_eq!(total.joules(), 5.0);
    }

    #[test]
    fn division_by_time_gives_power() {
        let p = Energy::from_joules(3.6) / TimeSpan::from_hours(1.0);
        assert!((p.milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_by_power_gives_time() {
        let t = Energy::from_joules(9.936) / Power::from_milliwatts(2.76);
        assert!((t.seconds() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_clamp() {
        let a = Energy::from_joules(1.0);
        let b = Energy::from_joules(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Energy::from_joules(5.0).clamp(a, b), b);
        assert_eq!(Energy::from_joules(-5.0).clamp(a, b), a);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Energy::ZERO.clamp(Energy::from_joules(2.0), Energy::from_joules(1.0));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Energy::from_joules(5.0)), "5.0000 J");
        assert_eq!(format!("{}", Energy::from_millijoules(4.48)), "4.4800 mJ");
        assert_eq!(format!("{}", Energy::from_microjoules(12.0)), "12.0000 uJ");
    }

    #[test]
    fn predicates() {
        assert!(Energy::from_joules(-1.0).is_negative());
        assert!(!Energy::ZERO.is_negative());
        assert!(Energy::from_joules(1.0).is_finite());
        assert!(!Energy::from_joules(f64::NAN).is_finite());
        assert_eq!(Energy::from_joules(-2.0).abs().joules(), 2.0);
    }
}
