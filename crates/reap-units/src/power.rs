//! The [`Power`] quantity (stored internally in watts).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::{Energy, TimeSpan};

/// A rate of energy use, stored in watts.
///
/// Wearable design points in the REAP paper draw between 50 µW (off-state
/// harvesting circuitry) and ~2.8 mW (the highest-accuracy design point), so
/// the milliwatt constructors/getters are the ones used most.
///
/// # Examples
///
/// ```
/// use reap_units::{Power, TimeSpan};
///
/// let p_off = Power::from_microwatts(50.0);
/// let hour = TimeSpan::from_hours(1.0);
/// assert!((p_off * hour).joules() - 0.18 < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    #[must_use]
    pub fn from_watts(watts: f64) -> Self {
        Power(watts)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// The value in watts.
    #[must_use]
    pub fn watts(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    #[must_use]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microwatts.
    #[must_use]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// `true` if the underlying value is finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// `true` if the value is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.abs();
        if abs == 0.0 || abs >= 1e-1 {
            write!(f, "{:.4} W", self.0)
        } else if abs >= 1e-4 {
            write!(f, "{:.4} mW", self.milliwatts())
        } else {
            write!(f, "{:.4} uW", self.microwatts())
        }
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl SubAssign for Power {
    fn sub_assign(&mut self, rhs: Power) {
        self.0 -= rhs.0;
    }
}

impl Neg for Power {
    type Output = Power;
    fn neg(self) -> Power {
        Power(-self.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

/// Dimensionless ratio of two powers.
impl Div<Power> for Power {
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

/// Power sustained over a time span yields an energy.
impl Mul<TimeSpan> for Power {
    type Output = Energy;
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy::from_joules(self.0 * rhs.seconds())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Power> for Power {
    fn sum<I: Iterator<Item = &'a Power>>(iter: I) -> Power {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_getters_are_consistent() {
        let p = Power::from_milliwatts(2.76);
        assert!((p.watts() - 0.00276).abs() < 1e-15);
        assert!((p.microwatts() - 2760.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Power::from_watts(2.0);
        let b = Power::from_watts(0.5);
        assert_eq!((a + b).watts(), 2.5);
        assert_eq!((a - b).watts(), 1.5);
        assert_eq!((a * 3.0).watts(), 6.0);
        assert_eq!((3.0 * a).watts(), 6.0);
        assert_eq!((a / 2.0).watts(), 1.0);
        assert_eq!(a / b, 4.0);
        assert_eq!((-b).watts(), -0.5);
    }

    #[test]
    fn power_times_time_is_energy() {
        // DP1 from the paper: 2.76 mW for an hour = 9.936 J ("9.9 J").
        let e = Power::from_milliwatts(2.76) * TimeSpan::from_hours(1.0);
        assert!((e.joules() - 9.936).abs() < 1e-9);
    }

    #[test]
    fn sum_of_powers() {
        let total: Power = [1.0, 2.0, 3.0].iter().map(|&w| Power::from_watts(w)).sum();
        assert_eq!(total.watts(), 6.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Power::from_watts(1.5)), "1.5000 W");
        assert_eq!(format!("{}", Power::from_milliwatts(2.76)), "2.7600 mW");
        assert_eq!(format!("{}", Power::from_microwatts(50.0)), "50.0000 uW");
    }

    #[test]
    fn min_max() {
        let a = Power::from_watts(1.0);
        let b = Power::from_watts(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
