//! The linter's own acceptance gate, run as a test: the real workspace
//! must lint clean under the committed scope and stay within the
//! committed pragma budget. This is the same check CI runs via
//! `cargo run -p reap-lint`; having it in `cargo test` means a patch
//! that introduces an unjustified `unwrap()` or a lock-rank inversion
//! fails the ordinary test suite too, not just the lint job.

use reap_lint::{find_workspace_root, lint_workspace, Budget, Config};

fn root() -> std::path::PathBuf {
    let here = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(&here).expect("reap-lint lives inside the workspace")
}

#[test]
fn workspace_has_zero_unjustified_violations() {
    let report = lint_workspace(&root(), &Config::repo_default()).expect("workspace lints");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "unjustified violations:\n{}",
        report.render_text(&[])
    );
    // The lock graph being cycle-free and rank-monotone is part of "no
    // violations": any lock-cycle / rank-inversion / rank-equal finding
    // would appear above.
}

#[test]
fn workspace_stays_within_the_committed_budget() {
    let root = root();
    let report = lint_workspace(&root, &Config::repo_default()).expect("workspace lints");
    let budget =
        Budget::load(&root.join("reap-lint.budget.json")).expect("committed budget file parses");
    let failures = budget.check(&report.diagnostics);
    assert!(
        failures.is_empty(),
        "pragma budget exceeded (the ratchet only goes down):\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_pragma_in_the_workspace_is_used() {
    // Unused pragmas are violations (pragma:unused), so this is implied
    // by the zero-violations test — but assert it directly so the
    // failure message names the stale pragma when it happens.
    let report = lint_workspace(&root(), &Config::repo_default()).expect("workspace lints");
    let stale: Vec<_> = report
        .violations()
        .into_iter()
        .filter(|d| d.rule == "pragma")
        .map(|d| format!("{}:{} {}", d.file, d.line, d.message))
        .collect();
    assert!(stale.is_empty(), "stale pragmas:\n{}", stale.join("\n"));
}
