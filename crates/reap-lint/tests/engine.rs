//! Engine tests: one clean and one dirty fixture per rule class, pragma
//! suppression, the unused/invalid pragma meta-rule, the budget ratchet,
//! and a JSON schema round-trip of a real report.
//!
//! Fixtures are inline Rust sources parsed through the same
//! [`SourceFile::parse`] path the workspace walk uses; the scope config
//! puts them all in a crate named `fix`.

use std::path::Path;

use reap_lint::json::{parse, Value};
use reap_lint::source::SourceFile;
use reap_lint::{lint_files, Budget, Config, Diagnostic};

/// A config scoping every rule to the fixture crate `fix`.
fn fix_config() -> Config {
    Config {
        determinism_crates: vec!["fix".into()],
        determinism_files: Vec::new(),
        panic_crates: vec!["fix".into()],
        locks_crates: vec!["fix".into()],
        float_crates: vec!["fix".into()],
        float_files: Vec::new(),
    }
}

fn fixture(name: &str, text: &str) -> SourceFile {
    SourceFile::parse(
        format!("crates/fix/src/{name}.rs"),
        "fix".into(),
        text,
        false,
    )
}

fn lint(files: Vec<SourceFile>) -> Vec<Diagnostic> {
    lint_files(Path::new("/fixture"), files, &fix_config()).diagnostics
}

fn violations(diags: &[Diagnostic]) -> Vec<(&'static str, &'static str, usize)> {
    diags
        .iter()
        .filter(|d| d.is_violation())
        .map(|d| (d.rule, d.check, d.line))
        .collect()
}

// ---------------------------------------------------------------- rule D

#[test]
fn determinism_dirty_fixture_flags_every_check() {
    let diags = lint(vec![fixture(
        "det_dirty",
        r#"
use std::collections::HashMap;
fn state() {
    let t = std::time::SystemTime::now();
    let mut rng = thread_rng();
    let home = std::env::var("HOME");
}
"#,
    )]);
    let v = violations(&diags);
    assert!(v.contains(&("determinism", "hash-order", 2)), "{v:?}");
    assert!(v.contains(&("determinism", "wall-clock", 4)), "{v:?}");
    assert!(v.contains(&("determinism", "rng", 5)), "{v:?}");
    assert!(v.contains(&("determinism", "env", 6)), "{v:?}");
}

#[test]
fn determinism_clean_fixture_passes() {
    let diags = lint(vec![fixture(
        "det_clean",
        r#"
use std::collections::BTreeMap;
fn state(seed: u64) -> BTreeMap<u64, u64> {
    // A comment naming HashMap is not code; neither is "SystemTime".
    let s = "SystemTime::now()";
    let mut m = BTreeMap::new();
    m.insert(seed, seed);
    m
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

#[test]
fn determinism_ignores_test_code() {
    let diags = lint(vec![fixture(
        "det_test",
        r#"
fn prod() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn uses_ambient_time() {
        let _ = std::time::Instant::now();
        let _: HashMap<u8, u8> = HashMap::new();
    }
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

// ---------------------------------------------------------------- rule P

#[test]
fn panic_dirty_fixture_flags_every_check() {
    let diags = lint(vec![fixture(
        "panic_dirty",
        r#"
fn handler(xs: &[u8], user: usize) -> u8 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("has two");
    assert!(user < 10);
    if user > xs.len() {
        panic!("out of range");
    }
    xs[user]
}
"#,
    )]);
    let v = violations(&diags);
    assert!(v.contains(&("panic", "unwrap", 3)), "{v:?}");
    assert!(v.contains(&("panic", "expect", 4)), "{v:?}");
    assert!(v.contains(&("panic", "assert", 5)), "{v:?}");
    assert!(v.contains(&("panic", "panic-macro", 7)), "{v:?}");
    assert!(v.contains(&("panic", "index", 9)), "{v:?}");
}

#[test]
fn panic_clean_fixture_passes() {
    let diags = lint(vec![fixture(
        "panic_clean",
        r#"
fn handler(xs: &[u8], user: usize) -> Option<u8> {
    debug_assert!(user < 1000);
    let v = vec![1u8, 2];
    let first = xs.first()?;
    let arr: [u8; 4] = [0; 4];
    let _ = (first, v, arr);
    xs.get(user).copied()
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

// ---------------------------------------------------------------- rule L

#[test]
fn locks_clean_fixture_passes() {
    let diags = lint(vec![fixture(
        "locks_clean",
        r#"
// reap-lint: lock-rank(gate, 10)
// reap-lint: lock-rank(table, 20)
fn nested(gate: &Wrapped, table: &Wrapped) {
    // reap-lint: acquires(gate)
    let g = gate.lock();
    // reap-lint: acquires(table)
    let t = table.lock();
    drop((g, t));
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

#[test]
fn locks_flags_raw_unlabeled_and_unknown() {
    let diags = lint(vec![fixture(
        "locks_dirty",
        r#"
// reap-lint: lock-rank(gate, 10)
use std::sync::Mutex;
fn bad(m: &Wrapped) {
    let g = m.lock();
    drop(g);
    // reap-lint: acquires(phantom)
    let h = m.lock();
    drop(h);
}
"#,
    )]);
    let v = violations(&diags);
    assert!(v.contains(&("locks", "raw-lock", 3)), "{v:?}");
    assert!(v.contains(&("locks", "unlabeled-acquisition", 5)), "{v:?}");
    assert!(v.contains(&("locks", "unknown-lock", 8)), "{v:?}");
}

#[test]
fn locks_flags_rank_inversion() {
    let diags = lint(vec![fixture(
        "locks_inv",
        r#"
// reap-lint: lock-rank(gate, 10)
// reap-lint: lock-rank(table, 20)
fn inverted(gate: &Wrapped, table: &Wrapped) {
    // reap-lint: acquires(table)
    let t = table.lock();
    // reap-lint: acquires(gate)
    let g = gate.lock();
    drop((t, g));
}
"#,
    )]);
    let v = violations(&diags);
    assert!(v.contains(&("locks", "rank-inversion", 8)), "{v:?}");
}

#[test]
fn locks_flags_cycles_from_holds_annotations() {
    // a -> b in one function, b -> a (via holds) in another: a cycle no
    // single lexical scope shows.
    let diags = lint(vec![fixture(
        "locks_cycle",
        r#"
// reap-lint: lock-rank(a, 10)
// reap-lint: lock-rank(b, 10)
fn ab(a: &Wrapped, b: &Wrapped) {
    // reap-lint: acquires(a)
    let g = a.lock();
    // reap-lint: acquires(b)
    let h = b.lock();
    drop((g, h));
}
fn ba(a: &Wrapped) {
    // reap-lint: acquires(a)
    // reap-lint: holds(b)
    let g = a.lock();
    drop(g);
}
"#,
    )]);
    let v = violations(&diags);
    assert!(
        v.iter()
            .any(|(r, c, _)| *r == "locks" && *c == "lock-cycle"),
        "{v:?}"
    );
}

#[test]
fn locks_guards_die_with_their_scope() {
    // The gate guard's block closes before the table is taken: no edge,
    // no inversion, even though the ranks would invert if nested.
    let diags = lint(vec![fixture(
        "locks_scope",
        r#"
// reap-lint: lock-rank(gate, 10)
// reap-lint: lock-rank(table, 20)
fn sequential(gate: &Wrapped, table: &Wrapped) {
    {
        // reap-lint: acquires(table)
        let t = table.lock();
        drop(t);
    }
    // reap-lint: acquires(gate)
    let g = gate.lock();
    drop(g);
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

// ---------------------------------------------------------------- rule U

#[test]
fn unsafe_and_float_dirty_fixture() {
    let diags = lint(vec![fixture(
        "unsafe_dirty",
        r#"
fn raw(p: *const u8, n: u64) -> f64 {
    let _ = unsafe { *p };
    n as f64
}
"#,
    )]);
    let v = violations(&diags);
    assert!(v.contains(&("unsafe", "unsafe-block", 3)), "{v:?}");
    assert!(v.contains(&("unsafe", "float-cast", 4)), "{v:?}");
}

#[test]
fn unsafe_clean_fixture_passes() {
    let diags = lint(vec![fixture(
        "unsafe_clean",
        r#"
#![forbid(unsafe_code)]
fn widen(n: u32) -> f64 {
    f64::from(n)
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

// ------------------------------------------------------------- pragmas

#[test]
fn allow_pragma_suppresses_and_records_justification() {
    let diags = lint(vec![fixture(
        "pragma_ok",
        r#"
fn checked(xs: &[u8], i: usize) -> u8 {
    // reap-lint: allow(panic:index) -- i is taken modulo xs.len() by every caller
    xs[i % xs.len()]
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
    let allowed: Vec<_> = diags.iter().filter(|d| !d.is_violation()).collect();
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].check, "index");
    assert_eq!(
        allowed[0].allowed.as_deref(),
        Some("i is taken modulo xs.len() by every caller")
    );
}

#[test]
fn whole_rule_allow_covers_every_check_of_the_class() {
    let diags = lint(vec![fixture(
        "pragma_rule",
        r#"
fn boom() {
    // reap-lint: allow(panic) -- fixture exercising class-wide allow
    let _ = Some(1).unwrap();
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

#[test]
fn trailing_pragma_targets_its_own_line() {
    let diags = lint(vec![fixture(
        "pragma_trailing",
        r#"
fn f(xs: &[u8]) -> u8 {
    xs[0] // reap-lint: allow(panic:index) -- fixture: first byte is guaranteed by framing
}
"#,
    )]);
    assert!(violations(&diags).is_empty(), "{:?}", violations(&diags));
}

#[test]
fn unused_pragma_is_itself_a_violation() {
    let diags = lint(vec![fixture(
        "pragma_unused",
        r#"
fn fine() {
    // reap-lint: allow(panic:unwrap) -- nothing here unwraps anymore
    let x = 1 + 1;
    let _ = x;
}
"#,
    )]);
    let v = violations(&diags);
    assert_eq!(v, vec![("pragma", "unused", 3)], "{v:?}");
}

#[test]
fn pragma_without_justification_is_invalid() {
    let diags = lint(vec![fixture(
        "pragma_bare",
        r#"
fn f() {
    // reap-lint: allow(panic:unwrap)
    let _ = Some(1).unwrap();
}
"#,
    )]);
    let v = violations(&diags);
    assert!(v.contains(&("pragma", "invalid", 3)), "{v:?}");
    // And the unjustified pragma does NOT suppress the finding.
    assert!(v.contains(&("panic", "unwrap", 4)), "{v:?}");
}

// ------------------------------------------------------------- budget

#[test]
fn budget_ratchet_fails_on_growth_only() {
    let diags = lint(vec![fixture(
        "budget_fix",
        r#"
fn f(xs: &[u8]) -> u8 {
    // reap-lint: allow(panic:index) -- fixture
    xs[0]
}
"#,
    )]);
    let at_ceiling = Budget::parse(r#"{"version":1,"budgets":{"panic":1}}"#).unwrap();
    assert!(at_ceiling.check(&diags).is_empty());
    let above = Budget::parse(r#"{"version":1,"budgets":{"panic":5}}"#).unwrap();
    assert!(above.check(&diags).is_empty(), "under ceiling is fine");
    let below = Budget::parse(r#"{"version":1,"budgets":{"panic":0}}"#).unwrap();
    let failures = below.check(&diags);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("panic"), "{failures:?}");
    // A rule class absent from the budget has ceiling zero.
    let empty = Budget::parse(r#"{"version":1,"budgets":{}}"#).unwrap();
    assert_eq!(empty.check(&diags).len(), 1);
}

// ------------------------------------------------------- JSON round-trip

#[test]
fn report_json_schema_round_trips() {
    let report = lint_files(
        Path::new("/fixture"),
        vec![fixture(
            "roundtrip",
            r#"
fn f(xs: &[u8]) -> u8 {
    // reap-lint: allow(panic:index) -- fixture justification
    let a = xs[0];
    let b = xs.last().unwrap();
    a + b
}
"#,
        )],
        &fix_config(),
    );
    assert_eq!(report.violations().len(), 1);
    assert_eq!(report.allowed().len(), 1);

    let encoded = report.to_json(&["budget: fixture note".into()]).encode();
    let parsed = parse(&encoded).expect("report JSON parses back");
    assert_eq!(parsed.get("version").and_then(Value::as_f64), Some(1.0));
    assert_eq!(
        parsed.get("files_scanned").and_then(Value::as_f64),
        Some(1.0)
    );

    for key in ["violations", "allowed"] {
        let arr = parsed.get(key).and_then(Value::as_arr).expect(key);
        assert_eq!(arr.len(), 1, "{key}");
        let rebuilt = Diagnostic::from_json(&arr[0]).expect("diagnostic rebuilds");
        let original = if key == "violations" {
            report.violations()[0]
        } else {
            report.allowed()[0]
        };
        assert_eq!(&rebuilt, original, "{key} round-trip");
    }
}

#[test]
fn diagnostic_from_json_rejects_unknown_rule() {
    let v = parse(
        r#"{"rule":"made-up","check":"unwrap","file":"x.rs","line":1,"message":"m","snippet":"s","allowed":null}"#,
    )
    .unwrap();
    assert!(Diagnostic::from_json(&v).unwrap_err().contains("made-up"));
}
