//! # reap-lint — workspace invariant linter
//!
//! The repo's headline guarantees (REAP-vs-optimal pinning,
//! byte-identical snapshots across SIGKILL, SoA-vs-scalar
//! bit-equivalence, the intermittent crash drills) all rest on two
//! properties the differential test suites can only check *after* a
//! violation ships: determinism of every state-bearing path, and
//! panic-freedom of the serving hot path. `reap-lint` makes both (plus
//! lock discipline and an unsafe/float audit) static, repo-specific,
//! compile-time-adjacent properties: a token/line-level analyzer with
//! machine-readable JSON diagnostics, per-site justification pragmas,
//! and a committed allowlist budget that can only ratchet down.
//!
//! Run it locally with `cargo run -p reap-lint` (add `--format json`
//! for the CI artifact form). Rule classes:
//!
//! | rule | scope | what it rejects |
//! |------|-------|-----------------|
//! | `determinism` | state-bearing crates | wall clocks, hash-order iteration, ambient RNG, env reads |
//! | `panic` | `reap-serve` | `unwrap`/`expect`, panic macros, release asserts, unguarded indexing |
//! | `locks` | `reap-serve` | raw mutexes, unlabeled acquisitions, rank inversions, lock-graph cycles |
//! | `unsafe` | workspace / ledger crates | unjustified `unsafe`, unjustified `as f64`/`as f32` |
//!
//! Suppression is per-site and must be argued:
//!
//! ```text
//! // reap-lint: allow(panic:index) -- `shards` is non-empty by construction (asserted in new)
//! ```
//!
//! The committed `reap-lint.budget.json` caps the number of allowed
//! sites per rule class; a new pragma that pushes a class over its
//! ceiling fails the lint until the budget is deliberately re-committed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod diag;
pub mod json;
pub mod rules;
pub mod source;

pub use budget::Budget;
pub use diag::Diagnostic;
pub use rules::Config;

use std::path::{Path, PathBuf};

use json::Value;
use source::SourceFile;

/// A completed lint run.
#[derive(Debug)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: PathBuf,
    /// Files scanned.
    pub files_scanned: usize,
    /// Every finding, allowed or not, sorted by (file, line).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Findings not covered by a justification pragma.
    #[must_use]
    pub fn violations(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.is_violation())
            .collect()
    }

    /// Findings suppressed by a pragma (the budgeted set).
    #[must_use]
    pub fn allowed(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| !d.is_violation())
            .collect()
    }

    /// The machine-readable report. `budget_failures` come from
    /// [`Budget::check`] so CI consumers see the ratchet verdict inline.
    #[must_use]
    pub fn to_json(&self, budget_failures: &[String]) -> Value {
        let tally = Budget::tally(&self.diagnostics);
        Value::obj(vec![
            ("version", Value::num(1.0)),
            ("files_scanned", Value::num(self.files_scanned as f64)),
            (
                "violations",
                Value::Arr(self.violations().iter().map(|d| d.to_json()).collect()),
            ),
            (
                "allowed",
                Value::Arr(self.allowed().iter().map(|d| d.to_json()).collect()),
            ),
            (
                "allowed_per_rule",
                Value::Obj(
                    tally
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "budget_failures",
                Value::Arr(
                    budget_failures
                        .iter()
                        .map(|m| Value::str(m.clone()))
                        .collect(),
                ),
            ),
            (
                "ok",
                Value::Bool(self.violations().is_empty() && budget_failures.is_empty()),
            ),
        ])
    }

    /// Human-readable rendering.
    #[must_use]
    pub fn render_text(&self, budget_failures: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in self.violations() {
            let _ = writeln!(
                out,
                "{}:{}: [{}:{}] {}\n    {}",
                d.file, d.line, d.rule, d.check, d.message, d.snippet
            );
        }
        for m in budget_failures {
            let _ = writeln!(out, "budget: {m}");
        }
        let tally = Budget::tally(&self.diagnostics);
        let allowed: usize = tally.values().sum();
        let _ = writeln!(
            out,
            "reap-lint: {} file(s), {} violation(s), {} allowed site(s) ({})",
            self.files_scanned,
            self.violations().len(),
            allowed,
            tally
                .iter()
                .map(|(k, v)| format!("{k}: {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out
    }
}

/// Lints every workspace source under `root` with `cfg`.
///
/// # Errors
///
/// I/O failures walking or reading sources.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = collect_sources(root)?;
    Ok(lint_files(root, files, cfg))
}

/// Lints an explicit file set (the fixture tests' entry point).
#[must_use]
pub fn lint_files(root: &Path, files: Vec<SourceFile>, cfg: &Config) -> Report {
    let diagnostics = rules::run_all(&files, cfg);
    Report {
        root: root.to_path_buf(),
        files_scanned: files.len(),
        diagnostics,
    }
}

/// Walks the workspace source roots: `crates/*/{src,tests,benches,examples}`,
/// the facade `src/`, top-level `tests/` and `examples/`. `vendor/` (the
/// offline dependency shims) and `target/` are never scanned. Files
/// under any `tests/` or `benches/` directory are wholly test-scoped.
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        {
            let entry = entry.map_err(|e| e.to_string())?;
            if entry.path().is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        for (sub, all_test) in [
            ("src", false),
            ("tests", true),
            ("benches", true),
            ("examples", false),
        ] {
            walk_rs(
                root,
                &crate_dir.join(sub),
                &crate_name,
                all_test,
                &mut files,
            )?;
        }
    }
    walk_rs(root, &root.join("src"), "reap", false, &mut files)?;
    walk_rs(root, &root.join("tests"), "tests", true, &mut files)?;
    walk_rs(root, &root.join("examples"), "examples", false, &mut files)?;
    Ok(files)
}

fn walk_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    all_test: bool,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(root, &path, crate_name, all_test, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::parse(
                rel,
                crate_name.to_string(),
                &text,
                all_test,
            ));
        }
    }
    Ok(())
}

/// Searches upward from `start` for the workspace root (a `Cargo.toml`
/// declaring `[workspace]`).
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
