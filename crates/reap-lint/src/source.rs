//! Source model: one parsed file ready for rule passes.
//!
//! Rules never see raw text. Each file is lexed once into per-line
//! *masked code* (string/char-literal contents and every comment blanked
//! to spaces, byte positions preserved) so a pattern like `.unwrap()`
//! inside a string or a doc comment can never fire, plus a per-line
//! `in_test` flag (inside a `#[cfg(test)]` / `#[test]` region, or a file
//! under `tests/` / `benches/`) so test code is exempt from every rule,
//! plus the list of `reap-lint:` pragmas extracted from `//` comments.
//!
//! Pragma grammar (one per comment):
//!
//! ```text
//! // reap-lint: allow(rule[, rule...]) -- <justification>
//! // reap-lint: lock-rank(<name>, <rank>)
//! // reap-lint: acquires(<name>[, ordered])
//! // reap-lint: holds(<name>)
//! ```
//!
//! A pragma written on a line with code applies to that line; a pragma
//! on a comment-only line applies to the next line carrying code
//! (stacking is allowed — several pragma lines may precede one code
//! line).

use std::cell::Cell;

/// A `reap-lint:` directive parsed out of a `//` comment.
#[derive(Debug, Clone, PartialEq)]
pub enum PragmaKind {
    /// `allow(rule, ...) -- justification`: suppress matching findings
    /// on the target line, recording the justification.
    Allow {
        /// Rule classes (or `rule:check` pairs) being allowed.
        rules: Vec<String>,
        /// The mandatory written argument for the exemption.
        justification: String,
    },
    /// `lock-rank(name, rank)`: declares a lock and its total-order rank.
    LockRank {
        /// Declared lock name.
        name: String,
        /// Total-order rank (higher = acquired later).
        rank: u32,
    },
    /// `acquires(name[, ordered])`: labels a `.lock()` site. `ordered`
    /// marks a site that takes several same-rank locks in ascending
    /// declared sub-order (the shard walk).
    Acquires {
        /// The declared lock this site takes.
        name: String,
        /// Same-rank class taken in ascending sub-order.
        ordered: bool,
    },
    /// `holds(name)`: declares a lock held on entry to the target line's
    /// acquisition (an explicit nesting edge).
    Holds {
        /// The declared lock held on entry.
        name: String,
    },
}

/// One directive plus the code line it targets.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma text sits on.
    pub at_line: usize,
    /// 1-based line the pragma governs.
    pub target_line: usize,
    /// The parsed directive.
    pub kind: PragmaKind,
    /// Set when some finding (or lock pass) consumed the pragma; an
    /// `allow` that suppresses nothing is itself reported.
    pub used: Cell<bool>,
}

/// One lexed line.
#[derive(Debug)]
pub struct Line {
    /// Verbatim source text.
    pub raw: String,
    /// Same bytes with comments and literal contents blanked to spaces.
    pub code: String,
    /// Inside test code (region or test-only file).
    pub in_test: bool,
    /// Brace depth at the end of the line (masked braces only).
    pub depth_end: i32,
}

impl Line {
    /// Whether the masked line carries any code at all.
    #[must_use]
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate name (`reap-serve`, ...), `reap` for the root
    /// `src/`, or the top-level directory name for `tests/`/`examples/`.
    pub crate_name: String,
    /// Lexed lines, 0-indexed (line N of the file is `lines[N-1]`).
    pub lines: Vec<Line>,
    /// Every `reap-lint:` directive in the file.
    pub pragmas: Vec<Pragma>,
}

impl SourceFile {
    /// Lexes `text` into the rule-facing model. `all_test` marks every
    /// line as test code (integration-test and bench files).
    #[must_use]
    pub fn parse(path: String, crate_name: String, text: &str, all_test: bool) -> SourceFile {
        let (masked, comments) = mask(text);
        let raw_lines: Vec<&str> = split_keep_empty(text);
        let masked_lines: Vec<&str> = split_keep_empty(&masked);
        debug_assert_eq!(raw_lines.len(), masked_lines.len());

        let test_flags = test_regions(&masked_lines);
        let mut depth = 0i32;
        let mut lines = Vec::with_capacity(raw_lines.len());
        for (i, raw) in raw_lines.iter().enumerate() {
            let code = masked_lines.get(i).copied().unwrap_or("");
            for b in code.bytes() {
                match b {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            lines.push(Line {
                raw: (*raw).to_string(),
                code: code.to_string(),
                in_test: all_test || test_flags.get(i).copied().unwrap_or(false),
                depth_end: depth,
            });
        }

        let pragmas = extract_pragmas(&comments, &lines);
        SourceFile {
            path,
            crate_name,
            lines,
            pragmas,
        }
    }

    /// `allow` pragmas targeting 1-based `line` that cover `rule` (or
    /// `rule:check`).
    pub fn allows_for(&self, line: usize, rule: &str, check: &str) -> Option<&Pragma> {
        let qualified = format!("{rule}:{check}");
        self.pragmas.iter().find(|p| {
            p.target_line == line
                && match &p.kind {
                    PragmaKind::Allow { rules, .. } => {
                        rules.iter().any(|r| r == rule || *r == qualified)
                    }
                    _ => false,
                }
        })
    }
}

/// Splits on `\n` without dropping a trailing empty segment mismatch
/// (`str::lines` semantics are fine for us; we just need raw/masked to
/// agree, which they do since masking preserves newlines).
fn split_keep_empty(text: &str) -> Vec<&str> {
    text.lines().collect()
}

/// One extracted `//` comment: its 1-based line and text after `//`.
struct Comment {
    line: usize,
    text: String,
}

/// Blanks comments and literal contents to spaces (newlines kept), and
/// collects `//` comment texts for pragma extraction.
fn mask(text: &str) -> (String, Vec<Comment>) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut cur_comment: Option<Comment> = None;
    let mut st = St::Code;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if st == St::LineComment {
                st = St::Code;
                if let Some(c) = cur_comment.take() {
                    comments.push(c);
                }
            }
            out.push(b'\n');
            line += 1;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                if b == b'/' && next == b'/' {
                    st = St::LineComment;
                    cur_comment = Some(Comment {
                        line,
                        text: String::new(),
                    });
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'/' && next == b'*' {
                    st = St::BlockComment(1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'"' {
                    st = St::Str;
                    out.push(b'"');
                    i += 1;
                } else if (b == b'r' || b == b'b') && raw_str_hashes(bytes, i).is_some() {
                    let (hashes, skip) = raw_str_hashes(bytes, i).unwrap_or((0, 1));
                    st = St::RawStr(hashes);
                    out.extend(std::iter::repeat_n(b' ', skip));
                    i += skip;
                } else if b == b'\'' {
                    // Char literal vs lifetime: a literal is 'x' or an
                    // escape; a lifetime has no closing quote nearby.
                    if next == b'\\' || (bytes.get(i + 2) == Some(&b'\'') && next != b'\'') {
                        st = St::Char;
                        out.push(b'\'');
                        i += 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            St::LineComment => {
                if let Some(c) = &mut cur_comment {
                    c.text.push(b as char);
                }
                out.push(b' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                if b == b'*' && next == b'/' {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 1 {
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                } else if b == b'/' && next == b'*' {
                    st = St::BlockComment(depth + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            St::Str => {
                if b == b'\\' {
                    out.push(b' ');
                    if bytes.get(i + 1).is_some() && bytes[i + 1] != b'\n' {
                        out.push(b' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if b == b'"' {
                    st = St::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    out.extend(std::iter::repeat_n(b' ', hashes as usize + 1));
                    i += 1 + hashes as usize;
                    st = St::Code;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            St::Char => {
                if b == b'\\' && bytes.get(i + 1).is_some() {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'\'' {
                    st = St::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if let Some(c) = cur_comment.take() {
        comments.push(c);
    }
    // Masking replaces bytes one-for-one (multi-byte UTF-8 chars in
    // literals/comments become runs of spaces), so output is valid ASCII
    // wherever it differs from the input.
    (String::from_utf8_lossy(&out).into_owned(), comments)
}

/// If `bytes[i..]` opens a raw string (`r"`, `r#"`, `br##"`, ...),
/// returns (hash count, bytes consumed by the opener).
fn raw_str_hashes(bytes: &[u8], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        // Reject identifiers like `ربط` prefixes: previous char must not
        // be an ident char.
        if i > 0 && is_ident(bytes[i - 1]) {
            return None;
        }
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Whether the `"` at `bytes[i]` closes a raw string with `hashes` `#`s.
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if bytes.get(i + 1 + k) != Some(&b'#') {
            return false;
        }
    }
    true
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` regions: the attribute
/// arms a pending flag, the next `{` opens the region at its pre-brace
/// depth, and the matching `}` closes it. A `;` at arm time (an
/// attributed `use`/statement) disarms without opening a region.
fn test_regions(masked_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; masked_lines.len()];
    let mut depth = 0i32;
    let mut armed = false;
    // Depth just *outside* each open test region.
    let mut regions: Vec<i32> = Vec::new();
    for (idx, line) in masked_lines.iter().enumerate() {
        let in_region_at_start = !regions.is_empty();
        if line.contains("#[cfg(test)]")
            || line.contains("#[cfg(all(test")
            || line.contains("#[test]")
        {
            armed = true;
        }
        let armed_on_this_line = armed;
        for b in line.bytes() {
            match b {
                b'{' => {
                    if armed {
                        regions.push(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if let Some(&open) = regions.last() {
                        if depth <= open {
                            regions.pop();
                        }
                    }
                }
                b';' => {
                    // `#[cfg(test)] use ...;` — attribute consumed by a
                    // brace-less item before any region opened.
                    armed = false;
                }
                _ => {}
            }
        }
        flags[idx] = in_region_at_start || !regions.is_empty() || armed_on_this_line;
    }
    flags
}

/// Parses every `reap-lint:` comment into a [`Pragma`], resolving the
/// target line (same line if it carries code, else next code line).
fn extract_pragmas(comments: &[Comment], lines: &[Line]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("reap-lint:") else {
            continue;
        };
        let Some(kind) = parse_directive(rest.trim()) else {
            // Malformed pragmas surface as an unused/invalid finding via
            // a sentinel Allow with empty rules.
            out.push(Pragma {
                at_line: c.line,
                target_line: c.line,
                kind: PragmaKind::Allow {
                    rules: Vec::new(),
                    justification: String::new(),
                },
                used: Cell::new(false),
            });
            continue;
        };
        let target = target_line(c.line, lines);
        out.push(Pragma {
            at_line: c.line,
            target_line: target,
            kind,
            used: Cell::new(false),
        });
    }
    out
}

/// The 1-based line a pragma at `at` governs.
fn target_line(at: usize, lines: &[Line]) -> usize {
    let idx = at - 1;
    if lines.get(idx).is_some_and(Line::has_code) {
        return at;
    }
    for (j, l) in lines.iter().enumerate().skip(idx + 1) {
        if l.has_code() {
            return j + 1;
        }
    }
    at
}

fn parse_directive(s: &str) -> Option<PragmaKind> {
    if let Some(rest) = s.strip_prefix("allow(") {
        let close = rest.find(')')?;
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return None;
        }
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix("--")?.trim().to_string();
        if justification.is_empty() {
            return None;
        }
        return Some(PragmaKind::Allow {
            rules,
            justification,
        });
    }
    if let Some(rest) = s.strip_prefix("lock-rank(") {
        let close = rest.find(')')?;
        let mut parts = rest[..close].splitn(2, ',');
        let name = parts.next()?.trim().to_string();
        let rank: u32 = parts.next()?.trim().parse().ok()?;
        if name.is_empty() {
            return None;
        }
        return Some(PragmaKind::LockRank { name, rank });
    }
    if let Some(rest) = s.strip_prefix("acquires(") {
        let close = rest.find(')')?;
        let mut parts = rest[..close].split(',');
        let name = parts.next()?.trim().to_string();
        let ordered = match parts.next().map(str::trim) {
            None => false,
            Some("ordered") => true,
            Some(_) => return None,
        };
        if name.is_empty() || parts.next().is_some() {
            return None;
        }
        return Some(PragmaKind::Acquires { name, ordered });
    }
    if let Some(rest) = s.strip_prefix("holds(") {
        let close = rest.find(')')?;
        let name = rest[..close].trim().to_string();
        if name.is_empty() {
            return None;
        }
        return Some(PragmaKind::Holds { name });
    }
    None
}

/// Finds word-boundary occurrences of `needle` in `haystack`: the
/// surrounding bytes must not be identifier characters. Returns byte
/// offsets.
#[must_use]
pub fn word_occurrences(haystack: &str, needle: &str) -> Vec<usize> {
    let hb = haystack.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(hb[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= hb.len() || !is_ident(hb[end]);
        // Needles starting with a non-ident char (like `.unwrap()`)
        // trivially pass the before check.
        let first = needle.as_bytes().first().copied().unwrap_or(b' ');
        let last = needle.as_bytes().last().copied().unwrap_or(b' ');
        if (before_ok || !is_ident(first)) && (after_ok || !is_ident(last)) {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse("x.rs".into(), "x".into(), text, false)
    }

    #[test]
    fn masks_strings_and_comments() {
        let f = parse("let s = \".unwrap()\"; // .unwrap()\nlet t = x.unwrap();\n");
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(f.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = parse("let s = r#\"HashMap \"inner\" \"#; let c = '\"'; let l: &'static str = x;\nlet m = HashMap::new();\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("&'static str"));
        assert!(f.lines[1].code.contains("HashMap"));
    }

    #[test]
    fn block_comments_nest() {
        let f = parse("/* outer /* inner */ still */ let x = unwrap_me();\n");
        assert!(f.lines[0].code.contains("unwrap_me"));
        assert!(!f.lines[0].code.contains("outer"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let text = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = parse(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[4].in_test);
        assert!(f.lines[5].in_test);
        assert!(!f.lines[6].in_test);
    }

    #[test]
    fn cfg_test_use_does_not_poison_rest_of_file() {
        let text = "#[cfg(test)]\nuse foo::bar;\nfn prod() { body(); }\n";
        let f = parse(text);
        assert!(!f.lines[2].in_test, "prod fn wrongly marked test");
    }

    #[test]
    fn pragma_targets_same_or_next_line() {
        let text = "let a = x.unwrap(); // reap-lint: allow(panic) -- fine here\n// reap-lint: allow(determinism) -- seeded\nlet b = HashMap::new();\n";
        let f = parse(text);
        assert_eq!(f.pragmas.len(), 2);
        assert_eq!(f.pragmas[0].target_line, 1);
        assert_eq!(f.pragmas[1].target_line, 3);
        assert!(f.allows_for(1, "panic", "unwrap").is_some());
        assert!(f.allows_for(3, "determinism", "hash-order").is_some());
        assert!(f.allows_for(3, "panic", "unwrap").is_none());
    }

    #[test]
    fn pragma_grammar() {
        assert_eq!(
            parse_directive("lock-rank(shard, 20)"),
            Some(PragmaKind::LockRank {
                name: "shard".into(),
                rank: 20
            })
        );
        assert_eq!(
            parse_directive("acquires(shard, ordered)"),
            Some(PragmaKind::Acquires {
                name: "shard".into(),
                ordered: true
            })
        );
        assert_eq!(
            parse_directive("holds(admission)"),
            Some(PragmaKind::Holds {
                name: "admission".into()
            })
        );
        // Justification is mandatory.
        assert_eq!(parse_directive("allow(panic)"), None);
        assert_eq!(parse_directive("allow(panic) --  "), None);
        assert_eq!(parse_directive("acquires(a, b)"), None);
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(word_occurrences("unsafe_code unsafe {", "unsafe"), vec![12]);
        assert_eq!(
            word_occurrences("x.unwrap().unwrap()", ".unwrap()"),
            vec![1, 10]
        );
        assert!(word_occurrences("MyHashMapLike", "HashMap").is_empty());
    }
}
