//! Rule U — unsafe & float-cast audit.
//!
//! `unsafe` anywhere in the workspace, and `as f64` / `as f32` casts in
//! the energy-ledger crates, must each carry a written justification.
//! Unsafe is self-explanatory; the cast audit exists because the energy
//! ledgers balance to 1e-9 J — a lossy integer-to-float (or
//! float-to-float) cast in a ledger path is exactly the kind of silent
//! bit-level drift the differential suites can only catch after the
//! fact. Lossless conversions should use `f64::from(...)` (which the
//! rule does not flag); everything else documents why the range is safe.

use crate::diag::Diagnostic;
use crate::source::{word_occurrences, SourceFile};

use super::{emit, in_scope, Config};

/// Runs rule U over the workspace (and the ledger-scope cast audit).
pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
    for file in files {
        let float_scope = in_scope(file, &cfg.float_crates, &cfg.float_files);
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if !word_occurrences(&line.code, "unsafe").is_empty() {
                emit(
                    file,
                    i + 1,
                    "unsafe",
                    "unsafe-block",
                    "`unsafe` requires a written justification".to_string(),
                    out,
                );
            }
            if float_scope {
                for cast in ["as f64", "as f32"] {
                    if !word_occurrences(&line.code, cast).is_empty() {
                        emit(
                            file,
                            i + 1,
                            "unsafe",
                            "float-cast",
                            format!(
                                "`{cast}` in ledger code; use f64::from for lossless widths or \
                                 justify the range"
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}
