//! Rule L — lock discipline.
//!
//! Deadlock freedom is enforced as a *declared total order*: every lock
//! in scope carries a `lock-rank(name, N)` declaration, every `.lock()`
//! site carries an `acquires(name)` label, and nesting must only ever go
//! rank-upward. The static side of the contract checked here:
//!
//! - no raw `Mutex`/`RwLock` outside the `OrderedLock` wrapper
//!   (`raw-lock`) — the wrapper is what asserts ranks at runtime, so
//!   bypassing it silently exits the discipline;
//! - every acquisition is labeled (`unlabeled-acquisition`) with a
//!   declared name (`unknown-lock`);
//! - the static lock graph — an edge A → B wherever B is acquired while
//!   a guard of A is live (tracked lexically through `let` bindings and
//!   brace depth, plus explicit `holds(...)` annotations) — is free of
//!   cycles (`lock-cycle`) and every edge goes strictly rank-upward
//!   (`rank-inversion` / `rank-equal`; same-rank classes like the shard
//!   stripe must mark sites `acquires(name, ordered)` and take members
//!   in ascending sub-order, which the runtime wrapper asserts).
//!
//! The runtime half lives in `reap-serve::locks::OrderedLock`: debug
//! builds keep a thread-local stack of held ranks and assert every
//! acquisition climbs, so the chaos e2e doubles as a dynamic
//! lock-order drill for whatever interleavings the schedule produces.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::source::{word_occurrences, PragmaKind, SourceFile};

use super::{emit, in_scope, Config};

/// One nesting edge: `to` acquired while `from` is held.
#[derive(Debug)]
struct Edge {
    from: String,
    to: String,
    file_idx: usize,
    line: usize,
}

/// Runs rule L: rank table, acquisition labels, graph, cycles.
pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
    // Pass 1: the rank table (and raw-lock findings).
    let mut ranks: BTreeMap<String, u32> = BTreeMap::new();
    for file in files {
        if !in_scope(file, &cfg.locks_crates, &[]) {
            continue;
        }
        for p in &file.pragmas {
            if let PragmaKind::LockRank { name, rank } = &p.kind {
                p.used.set(true);
                if let Some(prev) = ranks.get(name) {
                    if prev != rank {
                        emit(
                            file,
                            p.at_line,
                            "locks",
                            "rank-conflict",
                            format!("lock `{name}` declared with ranks {prev} and {rank}"),
                            out,
                        );
                    }
                } else {
                    ranks.insert(name.clone(), *rank);
                }
            }
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for raw in ["Mutex", "RwLock"] {
                if !word_occurrences(&line.code, raw).is_empty() {
                    emit(
                        file,
                        i + 1,
                        "locks",
                        "raw-lock",
                        format!("raw `{raw}` outside OrderedLock exits the rank discipline"),
                        out,
                    );
                }
            }
        }
    }

    // Pass 2: acquisition sites and the lexical guard-liveness walk.
    let mut edges: Vec<Edge> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !in_scope(file, &cfg.locks_crates, &[]) {
            continue;
        }
        // Live guards: (lock name, depth the binding lives at).
        let mut live: Vec<(String, i32)> = Vec::new();
        // Does the statement currently being scanned start with `let`?
        let mut stmt_has_let = false;
        let mut stmt_start_depth = 0i32;
        let mut prev_depth = 0i32;
        for (i, line) in file.lines.iter().enumerate() {
            let depth_start = prev_depth;
            prev_depth = line.depth_end;
            if line.in_test {
                live.clear();
                continue;
            }
            // Guards die when the block that bound them closes.
            live.retain(|(_, d)| line.depth_end >= *d && depth_start >= *d);

            let code_trim = line.code.trim();
            if !stmt_has_let {
                stmt_start_depth = depth_start;
            }
            if !word_occurrences(&line.code, "let").is_empty() {
                stmt_has_let = true;
                stmt_start_depth = depth_start;
            }

            let acquires_here = !word_occurrences(&line.code, ".lock()").is_empty();
            if acquires_here {
                let label = file.pragmas.iter().find(|p| {
                    p.target_line == i + 1 && matches!(p.kind, PragmaKind::Acquires { .. })
                });
                match label {
                    None => {
                        emit(
                            file,
                            i + 1,
                            "locks",
                            "unlabeled-acquisition",
                            "`.lock()` without an `acquires(<name>)` label".to_string(),
                            out,
                        );
                    }
                    Some(p) => {
                        p.used.set(true);
                        let PragmaKind::Acquires { name, .. } = &p.kind else {
                            unreachable!("filtered to Acquires above");
                        };
                        if !ranks.contains_key(name) {
                            emit(
                                file,
                                i + 1,
                                "locks",
                                "unknown-lock",
                                format!("`acquires({name})` names no declared lock-rank"),
                                out,
                            );
                        }
                        // Explicit holds(...) annotations add edges too.
                        for h in file.pragmas.iter().filter(|h| h.target_line == i + 1) {
                            if let PragmaKind::Holds { name: held } = &h.kind {
                                h.used.set(true);
                                edges.push(Edge {
                                    from: held.clone(),
                                    to: name.clone(),
                                    file_idx,
                                    line: i + 1,
                                });
                            }
                        }
                        for (held, _) in &live {
                            if held != name {
                                edges.push(Edge {
                                    from: held.clone(),
                                    to: name.clone(),
                                    file_idx,
                                    line: i + 1,
                                });
                            }
                        }
                        if stmt_has_let {
                            live.push((name.clone(), stmt_start_depth));
                        }
                    }
                }
            }

            // Statement boundary: `;` or a brace ends the current
            // statement (good enough lexically — method chains keep
            // statements open across lines).
            if code_trim.ends_with(';') || code_trim.ends_with('{') || code_trim.ends_with('}') {
                stmt_has_let = false;
            }
        }
    }

    // Pass 3: rank monotonicity per edge.
    for e in &edges {
        let file = &files[e.file_idx];
        let (Some(&from), Some(&to)) = (ranks.get(&e.from), ranks.get(&e.to)) else {
            continue; // unknown-lock already reported
        };
        if to < from {
            emit(
                file,
                e.line,
                "locks",
                "rank-inversion",
                format!(
                    "acquiring `{}` (rank {to}) while holding `{}` (rank {from}) inverts the \
                     declared order",
                    e.to, e.from
                ),
                out,
            );
        } else if to == from && e.from != e.to {
            emit(
                file,
                e.line,
                "locks",
                "rank-equal",
                format!(
                    "`{}` and `{}` share rank {to}; nesting same-rank locks needs an \
                     `ordered` class",
                    e.from, e.to
                ),
                out,
            );
        }
    }

    // Pass 4: cycle detection over the name-level graph.
    if let Some(cycle) = find_cycle(&edges) {
        // Report at the first edge participating in the cycle.
        if let Some(e) = edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to))
        {
            emit(
                &files[e.file_idx],
                e.line,
                "locks",
                "lock-cycle",
                format!("lock graph cycle: {}", cycle.join(" -> ")),
                out,
            );
        }
    }
}

/// DFS cycle detection; returns the node names on the first cycle found
/// (deterministic: adjacency is sorted).
fn find_cycle(edges: &[Edge]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    for targets in adj.values_mut() {
        targets.sort_unstable();
        targets.dedup();
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or_default() {
            match marks.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = dfs(next, adj, marks, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }
    for node in nodes {
        if marks.get(node).copied().unwrap_or(Mark::White) == Mark::White {
            let mut stack = Vec::new();
            if let Some(c) = dfs(node, &adj, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}
