//! Rule P — panic-freedom in the serving request path.
//!
//! A panic in a connection handler tears down a session mid-frame (or
//! poisons shared state) instead of producing a typed error frame. In
//! the scoped crates this rule flags every potential panic site:
//! `.unwrap()` / `.expect(...)`, the panicking macros, `assert!`
//! family (debug_assert is exempt — it compiles out of release), and
//! slice/array indexing (`x[i]` can panic out-of-bounds; prefer `.get`
//! or carry a pragma arguing the bound).

use crate::diag::Diagnostic;
use crate::source::{word_occurrences, SourceFile};

use super::{emit, in_scope, Config};

/// Runs rule P over every in-scope file.
pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
    for file in files {
        if !in_scope(file, &cfg.panic_crates, &[]) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            if !word_occurrences(code, ".unwrap()").is_empty() {
                emit(
                    file,
                    i + 1,
                    "panic",
                    "unwrap",
                    "`.unwrap()` in the serving path; return a typed error frame".to_string(),
                    out,
                );
            }
            if !word_occurrences(code, ".expect(").is_empty() {
                emit(
                    file,
                    i + 1,
                    "panic",
                    "expect",
                    "`.expect(...)` in the serving path; return a typed error frame".to_string(),
                    out,
                );
            }
            for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
                if !word_occurrences(code, mac).is_empty() {
                    emit(
                        file,
                        i + 1,
                        "panic",
                        "panic-macro",
                        format!("`{mac}...)` in the serving path"),
                        out,
                    );
                }
            }
            for mac in ["assert!(", "assert_eq!(", "assert_ne!("] {
                if !word_occurrences(code, mac).is_empty() {
                    emit(
                        file,
                        i + 1,
                        "panic",
                        "assert",
                        format!("`{mac}...)` panics in release; use debug_assert or an error"),
                        out,
                    );
                }
            }
            if has_index_expression(code) {
                emit(
                    file,
                    i + 1,
                    "panic",
                    "index",
                    "indexing can panic out-of-bounds; use .get()/.get_mut() or justify the bound"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// Detects index expressions `recv[...]` in masked code: a `[` directly
/// preceded by an identifier character, `)`, or `]`. Array/slice *types*
/// and literals (`[u8; 4]`, `&[...]`, `= [`) start after a non-ident
/// character and never match; macro invocations (`vec![`) are excluded
/// by walking the identifier chain back to a `!`; attribute lines
/// (`#[...]`) are skipped wholesale.
fn has_index_expression(code: &str) -> bool {
    let trimmed = code.trim_start();
    if trimmed.starts_with('#') {
        return false;
    }
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
        if !(is_ident(prev) || prev == b')' || prev == b']') {
            continue;
        }
        // Walk the identifier chain back; a `!` in front marks a macro.
        let mut j = i;
        while j > 0 && is_ident(bytes[j - 1]) {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b'!' {
            continue;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_heuristic() {
        assert!(has_index_expression("let x = arr[i];"));
        assert!(has_index_expression("f(bytes[n - 1])"));
        assert!(has_index_expression("matrix[r][c]"));
        assert!(has_index_expression("foo()[0]"));
        assert!(!has_index_expression("let a: [u8; 4] = x;"));
        assert!(!has_index_expression("let s: &[u8] = x;"));
        assert!(!has_index_expression("let v = vec![1, 2];"));
        assert!(!has_index_expression("#[derive(Debug)]"));
        assert!(!has_index_expression("let a = [0u8; 16];"));
    }
}
