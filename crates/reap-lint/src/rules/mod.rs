//! The rule registry.
//!
//! Each rule module is a pure function over the lexed workspace: it
//! never sees raw text (only masked code), never fires on test code, and
//! reports through [`emit`], which applies any `allow` pragma on the
//! line (recording the justification instead of a violation).

use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub mod determinism;
pub mod locks;
pub mod panic;
pub mod unsafe_float;

/// Every rule class id (the budget and pragma namespace).
pub const RULE_IDS: &[&str] = &["determinism", "panic", "locks", "unsafe", "pragma"];

/// Every check id a diagnostic can carry.
pub const CHECK_IDS: &[&str] = &[
    // determinism
    "wall-clock",
    "hash-order",
    "rng",
    "env",
    // panic
    "unwrap",
    "expect",
    "panic-macro",
    "assert",
    "index",
    // locks
    "raw-lock",
    "unlabeled-acquisition",
    "unknown-lock",
    "rank-conflict",
    "rank-inversion",
    "rank-equal",
    "lock-cycle",
    // unsafe
    "unsafe-block",
    "float-cast",
    // pragma hygiene
    "unused",
    "invalid",
];

/// Which files each rule class covers. Paths are workspace-relative
/// suffix matches; crates match [`SourceFile::crate_name`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose state feeds snapshots / reports: nondeterminism here
    /// breaks bit-identity.
    pub determinism_crates: Vec<String>,
    /// Extra single files under determinism (reap-serve's state-bearing
    /// paths).
    pub determinism_files: Vec<String>,
    /// Crates whose request path must be panic-free.
    pub panic_crates: Vec<String>,
    /// Crates under lock discipline.
    pub locks_crates: Vec<String>,
    /// Crates under the float-cast audit.
    pub float_crates: Vec<String>,
    /// Extra single files under the float-cast audit.
    pub float_files: Vec<String>,
}

impl Config {
    /// The committed scope for this repository.
    #[must_use]
    pub fn repo_default() -> Config {
        Config {
            determinism_crates: ["reap-core", "reap-sim", "reap-harvest", "reap-data"]
                .map(String::from)
                .to_vec(),
            determinism_files: [
                "crates/reap-serve/src/state.rs",
                "crates/reap-serve/src/snapshot.rs",
            ]
            .map(String::from)
            .to_vec(),
            panic_crates: vec!["reap-serve".to_string()],
            locks_crates: vec!["reap-serve".to_string()],
            float_crates: ["reap-units", "reap-harvest"].map(String::from).to_vec(),
            float_files: vec!["crates/reap-sim/src/clock.rs".to_string()],
        }
    }
}

/// Whether `file` falls under a crate-list + file-suffix-list scope.
#[must_use]
pub fn in_scope(file: &SourceFile, crates: &[String], files: &[String]) -> bool {
    crates.contains(&file.crate_name) || files.iter().any(|f| file.path.ends_with(f))
}

/// Records a finding at `line_no` (1-based), consulting `allow` pragmas.
pub fn emit(
    file: &SourceFile,
    line_no: usize,
    rule: &'static str,
    check: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let allowed = file.allows_for(line_no, rule, check).map(|p| {
        p.used.set(true);
        match &p.kind {
            crate::source::PragmaKind::Allow { justification, .. } => justification.clone(),
            _ => String::new(),
        }
    });
    let snippet = file
        .lines
        .get(line_no - 1)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default();
    out.push(Diagnostic {
        rule,
        check,
        file: file.path.clone(),
        line: line_no,
        message,
        snippet,
        allowed,
    });
}

/// Runs every rule over the workspace, then reports unused or malformed
/// pragmas (pragma hygiene keeps the allowlist honest: a pragma that
/// suppresses nothing must be deleted, not accumulated).
#[must_use]
pub fn run_all(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    determinism::check(files, cfg, &mut out);
    panic::check(files, cfg, &mut out);
    locks::check(files, cfg, &mut out);
    unsafe_float::check(files, cfg, &mut out);

    for file in files {
        for p in &file.pragmas {
            if p.used.get() {
                continue;
            }
            let target_in_test = file.lines.get(p.target_line - 1).is_some_and(|l| l.in_test);
            match &p.kind {
                crate::source::PragmaKind::Allow { rules, .. } if rules.is_empty() => {
                    emit(
                        file,
                        p.at_line,
                        "pragma",
                        "invalid",
                        "malformed reap-lint pragma (check the grammar in DESIGN.md)".to_string(),
                        &mut out,
                    );
                }
                _ if target_in_test => {}
                crate::source::PragmaKind::Allow { rules, .. } => {
                    emit(
                        file,
                        p.at_line,
                        "pragma",
                        "unused",
                        format!(
                            "allow({}) suppresses no finding; delete it",
                            rules.join(", ")
                        ),
                        &mut out,
                    );
                }
                crate::source::PragmaKind::Acquires { name, .. }
                | crate::source::PragmaKind::Holds { name } => {
                    emit(
                        file,
                        p.at_line,
                        "pragma",
                        "unused",
                        format!("lock pragma for `{name}` matches no acquisition; delete it"),
                        &mut out,
                    );
                }
                crate::source::PragmaKind::LockRank { .. } => {}
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule, a.check).cmp(&(&b.file, b.line, b.rule, b.check)));
    out
}
