//! Rule D — determinism.
//!
//! Snapshot bit-identity, SoA-vs-scalar equivalence, and the
//! killed-and-restored drills all assume state evolution is a pure
//! function of (seed, inputs). Inside the state-bearing crates this rule
//! bans every ambient source of nondeterminism:
//!
//! - wall clocks (`SystemTime`, `Instant`) — a stray timestamp in state
//!   silently breaks byte-identical snapshots;
//! - hash-order iteration (`HashMap`, `HashSet`, `RandomState`,
//!   `DefaultHasher`) — per-process SipHash seeding makes iteration
//!   order differ across runs; use `BTreeMap`/`BTreeSet`;
//! - ambient randomness (`thread_rng`, `OsRng`, `from_entropy`) — all
//!   randomness must flow from an explicit seed;
//! - environment reads (`env::var`, `temp_dir`, `process::id`) — state
//!   must not depend on where or how the process runs.

use crate::diag::Diagnostic;
use crate::source::{word_occurrences, SourceFile};

use super::{emit, in_scope, Config};

const NEEDLES: &[(&str, &str, &str)] = &[
    (
        "SystemTime",
        "wall-clock",
        "wall-clock time in state-bearing code",
    ),
    (
        "Instant",
        "wall-clock",
        "monotonic clock in state-bearing code",
    ),
    (
        "HashMap",
        "hash-order",
        "per-process hash seeding; use BTreeMap",
    ),
    (
        "HashSet",
        "hash-order",
        "per-process hash seeding; use BTreeSet",
    ),
    ("RandomState", "hash-order", "randomly seeded hasher"),
    ("DefaultHasher", "hash-order", "randomly seeded hasher"),
    (
        "thread_rng",
        "rng",
        "ambient RNG; thread randomness must come from an explicit seed",
    ),
    (
        "OsRng",
        "rng",
        "ambient RNG; randomness must come from an explicit seed",
    ),
    (
        "from_entropy",
        "rng",
        "ambient RNG seeding; seed explicitly",
    ),
    ("env::var", "env", "environment-dependent state"),
    ("env::vars", "env", "environment-dependent state"),
    ("temp_dir", "env", "environment-dependent path"),
    ("process::id", "env", "process-dependent value"),
];

/// Runs rule D over every in-scope file.
pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
    for file in files {
        if !in_scope(file, &cfg.determinism_crates, &cfg.determinism_files) {
            continue;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (needle, check, why) in NEEDLES {
                if !word_occurrences(&line.code, needle).is_empty() {
                    emit(
                        file,
                        i + 1,
                        "determinism",
                        check,
                        format!("`{needle}`: {why}"),
                        out,
                    );
                }
            }
        }
    }
}
