//! The committed allowlist budget: a per-rule ceiling on *justified*
//! (pragma'd) sites, so the number of exemptions can only ratchet down.
//!
//! Unjustified violations always fail the lint regardless of budget.
//! The budget governs the pragmas themselves: adding a new
//! `allow(...)` pragma without shrinking another fails CI until the
//! committed budget is deliberately re-ratcheted — growth is a reviewed
//! decision, never a drive-by.

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::Diagnostic;
use crate::json::{self, Value};

/// Per-rule-class ceilings on allowed (pragma'd) sites.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Budget {
    /// Rule class -> maximum allowed (pragma'd) sites.
    pub per_rule: BTreeMap<String, usize>,
}

impl Budget {
    /// Parses the committed budget file.
    ///
    /// # Errors
    ///
    /// Unreadable file or malformed JSON.
    pub fn load(path: &Path) -> Result<Budget, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Budget::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
    }

    /// Parses the JSON text form.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a non-numeric budget entry.
    pub fn parse(text: &str) -> Result<Budget, String> {
        let v = json::parse(text)?;
        let budgets = v.get("budgets").ok_or("missing budgets object")?;
        let Value::Obj(map) = budgets else {
            return Err("budgets must be an object".into());
        };
        let mut per_rule = BTreeMap::new();
        for (k, v) in map {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("budget {k} not a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("budget {k} must be a non-negative integer"));
            }
            per_rule.insert(k.clone(), n as usize);
        }
        Ok(Budget { per_rule })
    }

    /// Counts allowed sites per rule class.
    #[must_use]
    pub fn tally(diagnostics: &[Diagnostic]) -> BTreeMap<String, usize> {
        let mut tally: BTreeMap<String, usize> = BTreeMap::new();
        for d in diagnostics {
            if d.allowed.is_some() {
                *tally.entry(d.rule.to_string()).or_insert(0) += 1;
            }
        }
        tally
    }

    /// Checks the tally against the ceilings. Returns one message per
    /// over-budget rule (empty = within budget).
    #[must_use]
    pub fn check(&self, diagnostics: &[Diagnostic]) -> Vec<String> {
        let tally = Budget::tally(diagnostics);
        let mut failures = Vec::new();
        for (rule, count) in &tally {
            let ceiling = self.per_rule.get(rule).copied().unwrap_or(0);
            if *count > ceiling {
                failures.push(format!(
                    "rule {rule}: {count} allowed sites exceed the committed budget of {ceiling} \
                     (ratchet: remove a pragma or deliberately re-commit the budget)"
                ));
            }
        }
        failures
    }

    /// Serializes the current tally as a fresh budget file (the
    /// `--write-budget` ratchet).
    #[must_use]
    pub fn render(tally: &BTreeMap<String, usize>) -> String {
        let budgets: BTreeMap<String, Value> = tally
            .iter()
            .map(|(k, v)| (k.clone(), Value::num(*v as f64)))
            .collect();
        let doc = Value::obj(vec![
            ("version", Value::num(1.0)),
            ("budgets", Value::Obj(budgets)),
        ]);
        // Pretty-ish: one budget per line so diffs review cleanly.
        let mut out = String::from("{\n  \"version\": 1,\n  \"budgets\": {\n");
        let inner = doc.get("budgets");
        if let Some(Value::Obj(map)) = inner {
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str("    ");
                out.push_str(&Value::str(k.clone()).encode());
                out.push_str(": ");
                out.push_str(&v.encode());
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, allowed: bool) -> Diagnostic {
        Diagnostic {
            rule,
            check: "unwrap",
            file: "f.rs".into(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
            allowed: allowed.then(|| "why".to_string()),
        }
    }

    #[test]
    fn over_budget_fails_under_budget_passes() {
        let budget = Budget::parse(r#"{"version":1,"budgets":{"panic":1}}"#).unwrap();
        let ds = vec![diag("panic", true)];
        assert!(budget.check(&ds).is_empty());
        let ds = vec![diag("panic", true), diag("panic", true)];
        assert_eq!(budget.check(&ds).len(), 1);
        // Unknown rule class defaults to a zero ceiling.
        let ds = vec![diag("determinism", true)];
        assert_eq!(budget.check(&ds).len(), 1);
        // Violations (not allowed) don't count against the budget.
        let ds = vec![diag("panic", false), diag("panic", false)];
        assert!(budget.check(&ds).is_empty());
    }

    #[test]
    fn render_parses_back() {
        let mut tally = BTreeMap::new();
        tally.insert("panic".to_string(), 7usize);
        tally.insert("unsafe".to_string(), 2usize);
        let text = Budget::render(&tally);
        let parsed = Budget::parse(&text).unwrap();
        assert_eq!(parsed.per_rule.get("panic"), Some(&7));
        assert_eq!(parsed.per_rule.get("unsafe"), Some(&2));
    }
}
