//! Minimal JSON value model: enough to emit the diagnostics report,
//! parse it back (the schema round-trip tests), and read the committed
//! budget file. No external dependencies, like the rest of the
//! workspace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects are `BTreeMap`s so emission order is
/// deterministic — the linter's own output obeys the determinism rule
/// it enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a number value.
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }

    /// Object field lookup (`None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes with stable key order and `\n`-free escaping.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// A position-tagged message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => lit(bytes, pos, "null", Value::Null),
        Some(b't') => lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected , or ] at {pos}, got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected : at {pos}"));
                }
                *pos += 1;
                let val = parse_value(bytes, pos)?;
                map.insert(key, val);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => return Err(format!("expected , or }} at {pos}, got {other:?}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn lit(bytes: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at {pos}"))?;
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Value::obj(vec![
            ("a", Value::num(1.5)),
            ("b", Value::str("x \"quoted\" \n end")),
            ("c", Value::Arr(vec![Value::Null, Value::Bool(true)])),
        ]);
        let text = v.encode();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Value::num(42).encode(), "42");
        assert_eq!(Value::num(0.25).encode(), "0.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
