//! Findings and the machine-readable report.

use crate::json::Value;

/// One finding at one source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Rule class: `determinism`, `panic`, `locks`, `unsafe`, `pragma`.
    pub rule: &'static str,
    /// Specific check within the class (`hash-order`, `unwrap`, ...).
    pub check: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `Some(justification)` when a pragma allows the site.
    pub allowed: Option<String>,
}

impl Diagnostic {
    /// Whether this finding fails the lint (no pragma covers it).
    #[must_use]
    pub fn is_violation(&self) -> bool {
        self.allowed.is_none()
    }

    /// The diagnostic's JSON form (one element of the report arrays).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("rule", Value::str(self.rule)),
            ("check", Value::str(self.check)),
            ("file", Value::str(self.file.clone())),
            ("line", Value::num(self.line as f64)),
            ("message", Value::str(self.message.clone())),
            ("snippet", Value::str(self.snippet.clone())),
            (
                "allowed",
                match &self.allowed {
                    Some(j) => Value::str(j.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Rebuilds a diagnostic from its JSON form (schema round-trip
    /// testing; the strings referencing static rule ids are matched back
    /// against the registry).
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field.
    pub fn from_json(v: &Value) -> Result<Diagnostic, String> {
        let rule_s = v
            .get("rule")
            .and_then(Value::as_str)
            .ok_or("missing rule")?;
        let check_s = v
            .get("check")
            .and_then(Value::as_str)
            .ok_or("missing check")?;
        let rule = crate::rules::RULE_IDS
            .iter()
            .find(|r| **r == rule_s)
            .ok_or_else(|| format!("unknown rule {rule_s}"))?;
        let check = crate::rules::CHECK_IDS
            .iter()
            .find(|c| **c == check_s)
            .ok_or_else(|| format!("unknown check {check_s}"))?;
        Ok(Diagnostic {
            rule,
            check,
            file: v
                .get("file")
                .and_then(Value::as_str)
                .ok_or("missing file")?
                .to_string(),
            line: v
                .get("line")
                .and_then(Value::as_f64)
                .ok_or("missing line")? as usize,
            message: v
                .get("message")
                .and_then(Value::as_str)
                .ok_or("missing message")?
                .to_string(),
            snippet: v
                .get("snippet")
                .and_then(Value::as_str)
                .ok_or("missing snippet")?
                .to_string(),
            allowed: match v.get("allowed") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(_) => return Err("allowed must be string or null".into()),
            },
        })
    }
}
