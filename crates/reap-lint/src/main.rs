//! The `reap-lint` CLI: lint the workspace, enforce the pragma budget,
//! print text or JSON, exit nonzero on any unjustified violation.
//!
//! ```text
//! reap-lint [--root DIR] [--format text|json] [--budget FILE]
//!           [--no-budget] [--write-budget]
//! ```
//!
//! Exit codes: 0 clean, 1 violations or budget breach, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use reap_lint::{find_workspace_root, lint_workspace, Budget, Config};

struct Args {
    root: Option<PathBuf>,
    format_json: bool,
    budget_path: Option<PathBuf>,
    use_budget: bool,
    write_budget: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format_json: false,
        budget_path: None,
        use_budget: true,
        write_budget: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format_json = true,
                Some("text") => args.format_json = false,
                other => return Err(format!("--format text|json, got {other:?}")),
            },
            "--budget" => {
                args.budget_path = Some(PathBuf::from(it.next().ok_or("--budget needs a file")?));
            }
            "--no-budget" => args.use_budget = false,
            "--write-budget" => args.write_budget = true,
            "--help" | "-h" => {
                return Err(
                    "usage: reap-lint [--root DIR] [--format text|json] [--budget FILE] \
                     [--no-budget] [--write-budget]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("reap-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &Config::repo_default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reap-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let budget_path = args
        .budget_path
        .unwrap_or_else(|| root.join("reap-lint.budget.json"));

    if args.write_budget {
        let tally = Budget::tally(&report.diagnostics);
        let text = Budget::render(&tally);
        if let Err(e) = std::fs::write(&budget_path, text) {
            eprintln!("reap-lint: writing {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
        eprintln!("reap-lint: wrote {}", budget_path.display());
    }

    let budget_failures = if args.use_budget {
        match Budget::load(&budget_path) {
            Ok(b) => b.check(&report.diagnostics),
            Err(e) => {
                eprintln!("reap-lint: {e} (run with --write-budget to create it)");
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    // A closed pipe (`reap-lint | head`) is not a lint failure: ignore
    // write errors instead of panicking — this binary lints for
    // panic-freedom, it had better practice it.
    use std::io::Write as _;
    let out = if args.format_json {
        format!("{}\n", report.to_json(&budget_failures).encode())
    } else {
        report.render_text(&budget_failures)
    };
    let _ = std::io::stdout().write_all(out.as_bytes());

    if report.violations().is_empty() && budget_failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
