//! Bench-baseline regression checking.
//!
//! The repo commits machine-readable perf baselines (`BENCH_planner.json`,
//! `BENCH_fleet.json`, `BENCH_mpc.json`). CI regenerates each on every
//! commit; this module compares the fresh numbers against the committed
//! baseline and flags throughput regressions beyond a threshold — the
//! logic behind the `bench_check` binary.
//!
//! The bench JSON is hand-written (the workspace is offline and carries
//! no serde), so extraction is a deliberately small scanner over unique
//! top-level keys rather than a JSON parser.

/// Direction of a throughput metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is faster (e.g. `users_per_s`).
    HigherIsBetter,
    /// Smaller is faster (e.g. `matrix_ms`).
    LowerIsBetter,
}

/// One tracked throughput metric of a bench schema.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// The unique JSON key holding the metric.
    pub key: &'static str,
    /// Which way is faster.
    pub direction: Direction,
}

/// The throughput metrics tracked for a bench schema, or `None` for an
/// unknown schema.
#[must_use]
pub fn metrics_for_schema(schema: &str) -> Option<&'static [Metric]> {
    match schema {
        "reap-bench/planner-v1" => Some(&[
            Metric {
                key: "reap_run_ms",
                direction: Direction::LowerIsBetter,
            },
            Metric {
                key: "matrix_ms",
                direction: Direction::LowerIsBetter,
            },
        ]),
        // fleet-v2 (the SoA core) added `cohorts` and `soa_bytes_per_user`
        // alongside the same throughput metric; the v1 entry stays so a
        // stale committed baseline produces a clear schema-mismatch error
        // instead of an unknown-schema one.
        "reap-bench/fleet-v1" | "reap-bench/fleet-v2" => Some(&[Metric {
            key: "users_per_s",
            direction: Direction::HigherIsBetter,
        }]),
        "reap-bench/mpc-v1" => Some(&[Metric {
            key: "hours_per_s",
            direction: Direction::HigherIsBetter,
        }]),
        // The intermittent bench also records burst-completion statistics
        // (epochs/burst, commit ratio), but only event-core throughput is
        // gated: the completion numbers are pinned exactly by the
        // committed baseline diff, not a fuzzy perf threshold.
        "reap-bench/intermittent-v1" => Some(&[Metric {
            key: "events_per_s",
            direction: Direction::HigherIsBetter,
        }]),
        // The serve bench also records decide round-trip p50/p99, but only
        // throughput is gated: loopback tail latency on shared CI runners
        // is too noisy for a hard quantile gate. serve-v2 (the RetryClient
        // workload) added retry/reconnect/eviction/shed counters alongside
        // the same throughput metric; the v1 entry stays so a stale
        // committed baseline produces a clear schema-mismatch error
        // instead of an unknown-schema one.
        "reap-bench/serve-v1" | "reap-bench/serve-v2" => Some(&[Metric {
            key: "decisions_per_s",
            direction: Direction::HigherIsBetter,
        }]),
        _ => None,
    }
}

/// Discovers baseline/fresh bench pairs in `dir` by glob instead of a
/// hard-coded list: every committed `BENCH_<name>.json` baseline pairs
/// with a freshly regenerated `BENCH_<name>.ci.json` next to it.
///
/// Returns `(baseline, fresh)` path pairs sorted by file name.
///
/// # Errors
///
/// Returns a message when the directory cannot be read, when no baseline
/// matches the pattern (an empty gate would pass vacuously), or when a
/// baseline lacks its fresh counterpart — a bench that stopped running in
/// CI must fail the gate, not silently drop out of it.
pub fn discover_pairs(
    dir: &std::path::Path,
) -> Result<Vec<(std::path::PathBuf, std::path::PathBuf)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("BENCH_") && name.ends_with(".json") && !name.ends_with(".ci.json") {
            names.push(name.to_string());
        }
    }
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines found in {}",
            dir.display()
        ));
    }
    names.sort();
    let mut pairs = Vec::with_capacity(names.len());
    for name in names {
        let baseline = dir.join(&name);
        let fresh_name = format!("{}.ci.json", name.trim_end_matches(".json"));
        let fresh = dir.join(&fresh_name);
        if !fresh.is_file() {
            return Err(format!(
                "baseline {name} has no fresh run {fresh_name} — did its bench step run?"
            ));
        }
        pairs.push((baseline, fresh));
    }
    Ok(pairs)
}

/// Extracts the first number stored under `"key":` in `json`.
#[must_use]
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let rest = extract_raw(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the first string stored under `"key":` in `json`.
#[must_use]
pub fn extract_string<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let rest = extract_raw(json, key)?.strip_prefix('"')?;
    rest.split('"').next()
}

fn extract_raw<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let start = json.find(&needle)? + needle.len();
    json[start..]
        .trim_start()
        .strip_prefix(':')
        .map(str::trim_start)
}

/// Outcome of comparing one metric between baseline and fresh runs.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The metric's JSON key.
    pub key: &'static str,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
    /// Slowdown factor: `> 1` means the fresh run is slower, whatever the
    /// metric's direction (a 1.30 entry reads "30% slower than baseline").
    pub slowdown: f64,
    /// `true` when `slowdown` exceeds `1 + threshold`.
    pub regressed: bool,
}

/// Compares every tracked metric of a bench JSON pair.
///
/// `threshold` is the tolerated fractional slowdown (0.25 = fail beyond
/// 25% slower than the committed baseline).
///
/// # Errors
///
/// Returns a message when either document lacks a known `schema`, the
/// schemas disagree, or a tracked metric is missing or non-positive.
pub fn compare(
    baseline_json: &str,
    fresh_json: &str,
    threshold: f64,
) -> Result<Vec<Comparison>, String> {
    let schema = extract_string(baseline_json, "schema")
        .ok_or_else(|| "baseline has no schema field".to_string())?;
    let fresh_schema = extract_string(fresh_json, "schema")
        .ok_or_else(|| "fresh run has no schema field".to_string())?;
    if schema != fresh_schema {
        return Err(format!(
            "schema mismatch: baseline {schema} vs fresh {fresh_schema}"
        ));
    }
    let metrics =
        metrics_for_schema(schema).ok_or_else(|| format!("unknown bench schema {schema}"))?;
    let mut out = Vec::with_capacity(metrics.len());
    for metric in metrics {
        let baseline = extract_number(baseline_json, metric.key)
            .ok_or_else(|| format!("baseline lacks metric {}", metric.key))?;
        let fresh = extract_number(fresh_json, metric.key)
            .ok_or_else(|| format!("fresh run lacks metric {}", metric.key))?;
        if baseline <= 0.0 || fresh <= 0.0 {
            return Err(format!(
                "metric {} must be positive (baseline {baseline}, fresh {fresh})",
                metric.key
            ));
        }
        let slowdown = match metric.direction {
            Direction::LowerIsBetter => fresh / baseline,
            Direction::HigherIsBetter => baseline / fresh,
        };
        out.push(Comparison {
            key: metric.key,
            baseline,
            fresh,
            slowdown,
            regressed: slowdown > 1.0 + threshold,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLEET: &str = r#"{
  "schema": "reap-bench/fleet-v1",
  "users": 2000,
  "users_per_s": 6000
}"#;

    #[test]
    fn extracts_numbers_and_strings() {
        assert_eq!(extract_string(FLEET, "schema"), Some("reap-bench/fleet-v1"));
        assert_eq!(extract_number(FLEET, "users_per_s"), Some(6000.0));
        assert_eq!(extract_number(FLEET, "users"), Some(2000.0));
        assert_eq!(extract_number(FLEET, "absent"), None);
        assert_eq!(extract_number("{\"x\": -3.5e2}", "x"), Some(-350.0));
    }

    #[test]
    fn schemas_map_to_metrics() {
        assert_eq!(
            metrics_for_schema("reap-bench/planner-v1").unwrap().len(),
            2
        );
        assert_eq!(metrics_for_schema("reap-bench/fleet-v1").unwrap().len(), 1);
        assert_eq!(metrics_for_schema("reap-bench/mpc-v1").unwrap().len(), 1);
        assert!(metrics_for_schema("nope").is_none());
        let intermittent = metrics_for_schema("reap-bench/intermittent-v1").unwrap();
        assert_eq!(intermittent.len(), 1);
        assert_eq!(intermittent[0].key, "events_per_s");
        assert_eq!(intermittent[0].direction, Direction::HigherIsBetter);
        let serve = metrics_for_schema("reap-bench/serve-v1").unwrap();
        assert_eq!(serve.len(), 1);
        assert_eq!(serve[0].key, "decisions_per_s");
        assert_eq!(serve[0].direction, Direction::HigherIsBetter);
    }

    #[test]
    fn discovery_pairs_baselines_with_fresh_runs() {
        let dir = std::env::temp_dir().join(format!("reap_bench_discover_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // An empty directory is an error, not a vacuous pass.
        let err = discover_pairs(&dir).unwrap_err();
        assert!(err.contains("no BENCH_"), "got: {err}");

        // A baseline without its fresh counterpart fails loudly.
        std::fs::write(dir.join("BENCH_fleet.json"), "{}").unwrap();
        std::fs::write(dir.join("unrelated.json"), "{}").unwrap();
        let err = discover_pairs(&dir).unwrap_err();
        assert!(err.contains("BENCH_fleet.ci.json"), "got: {err}");

        // Complete pairs come back sorted; `.ci.json` files are never
        // themselves treated as baselines.
        std::fs::write(dir.join("BENCH_fleet.ci.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_serve.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_serve.ci.json"), "{}").unwrap();
        let pairs = discover_pairs(&dir).unwrap();
        let names: Vec<String> = pairs
            .iter()
            .map(|(b, f)| {
                format!(
                    "{}:{}",
                    b.file_name().unwrap().to_str().unwrap(),
                    f.file_name().unwrap().to_str().unwrap()
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "BENCH_fleet.json:BENCH_fleet.ci.json",
                "BENCH_serve.json:BENCH_serve.ci.json"
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn within_threshold_passes() {
        let fresh = FLEET.replace("6000", "5000");
        let cmp = compare(FLEET, &fresh, 0.25).unwrap();
        assert_eq!(cmp.len(), 1);
        assert!(!cmp[0].regressed, "20% slower is inside a 25% budget");
        assert!((cmp[0].slowdown - 1.2).abs() < 1e-12);
    }

    #[test]
    fn beyond_threshold_regresses() {
        let fresh = FLEET.replace("6000", "4000");
        let cmp = compare(FLEET, &fresh, 0.25).unwrap();
        assert!(cmp[0].regressed, "33% slower must trip a 25% budget");
    }

    #[test]
    fn lower_is_better_direction() {
        let base = r#"{"schema": "reap-bench/planner-v1", "reap_run_ms": 10.0, "matrix_ms": 20.0}"#;
        let fast = r#"{"schema": "reap-bench/planner-v1", "reap_run_ms": 9.0, "matrix_ms": 30.0}"#;
        let cmp = compare(base, fast, 0.25).unwrap();
        assert!(!cmp[0].regressed, "faster run must pass");
        assert!(cmp[1].regressed, "50% slower matrix must fail");
    }

    #[test]
    fn speedups_never_regress() {
        let fresh = FLEET.replace("6000", "9000");
        let cmp = compare(FLEET, &fresh, 0.25).unwrap();
        assert!(!cmp[0].regressed);
        assert!(cmp[0].slowdown < 1.0);
    }

    #[test]
    fn stale_fleet_baseline_schema_fails_loudly() {
        // The fleet bench now emits fleet-v2; a committed fleet-v1
        // baseline must produce a hard error (bench_check exits 1 on it),
        // not a silent pass.
        let fresh_v2 = r#"{
  "schema": "reap-bench/fleet-v2",
  "users": 2000,
  "users_per_s": 150000,
  "cohorts": 2000,
  "soa_bytes_per_user": 300
}"#;
        let err = compare(FLEET, fresh_v2, 0.25).unwrap_err();
        assert!(
            err.contains("schema mismatch"),
            "want a schema-mismatch error, got: {err}"
        );
        assert!(err.contains("fleet-v1") && err.contains("fleet-v2"));
        // Both schema generations resolve to tracked metrics on their own.
        assert!(metrics_for_schema("reap-bench/fleet-v2").is_some());
        let cmp = compare(fresh_v2, fresh_v2, 0.25).unwrap();
        assert!(!cmp[0].regressed);
    }

    #[test]
    fn stale_serve_baseline_schema_fails_loudly() {
        // Same protection for the serve bench: serve-v2 (RetryClient
        // workload + resilience counters) vs a stale committed serve-v1
        // baseline must be a hard schema-mismatch error.
        let stale_v1 = r#"{
  "schema": "reap-bench/serve-v1",
  "decisions": 200000,
  "decisions_per_s": 90000
}"#;
        let fresh_v2 = r#"{
  "schema": "reap-bench/serve-v2",
  "decisions": 200000,
  "decisions_per_s": 90000,
  "retries": 0,
  "reconnects": 0,
  "server_errors": 0,
  "evicted": 0,
  "shed": 0
}"#;
        let err = compare(stale_v1, fresh_v2, 0.25).unwrap_err();
        assert!(
            err.contains("schema mismatch"),
            "want a schema-mismatch error, got: {err}"
        );
        assert!(err.contains("serve-v1") && err.contains("serve-v2"));
        // The new schema resolves and self-compares cleanly.
        let cmp = compare(fresh_v2, fresh_v2, 0.25).unwrap();
        assert_eq!(cmp[0].key, "decisions_per_s");
        assert!(!cmp[0].regressed);
    }

    #[test]
    fn mismatched_or_missing_schemas_error() {
        assert!(compare(FLEET, r#"{"schema": "reap-bench/mpc-v1"}"#, 0.25).is_err());
        assert!(compare("{}", FLEET, 0.25).is_err());
        assert!(compare(FLEET, "{}", 0.25).is_err());
        let broken = FLEET.replace("users_per_s", "users_per_x");
        assert!(compare(FLEET, &broken, 0.25).is_err());
    }
}
