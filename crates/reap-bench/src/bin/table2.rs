//! Regenerates **Table 2**: accuracy, execution-time distribution, and
//! energy/power of the five Pareto-optimal design points.
//!
//! ```text
//! cargo run --release -p reap-bench --bin table2 [-- --char model --quick]
//! ```

use reap_bench::{pareto_characterization, parse_char_mode, row, rule, CharMode};

fn print_table(title: &str, rows: &[reap_device::CharacterizedDp]) {
    let widths = [4usize, 9, 10, 11, 8, 9, 9, 11, 11, 10];
    println!("\n{title}");
    println!(
        "{}",
        row(
            &[
                "DP".into(),
                "Acc. (%)".into(),
                "Accel (ms)".into(),
                "Stretch(ms)".into(),
                "NN (ms)".into(),
                "Total(ms)".into(),
                "MCU (mJ)".into(),
                "Sensor (mJ)".into(),
                "Energy (mJ)".into(),
                "Power (mW)".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for c in rows {
        println!(
            "{}",
            row(
                &[
                    format!("{}", c.point.id),
                    format!("{:.0}", c.point.accuracy * 100.0),
                    format!("{:.2}", c.times.accel_features.millis()),
                    format!("{:.2}", c.times.stretch_features.millis()),
                    format!("{:.2}", c.times.nn.millis()),
                    format!("{:.2}", c.times.total().millis()),
                    format!("{:.2}", c.mcu_energy.millijoules()),
                    format!("{:.2}", c.sensor_energy.millijoules()),
                    format!("{:.2}", c.total_energy().millijoules()),
                    format!("{:.2}", c.average_power.milliwatts()),
                ],
                &widths
            )
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_char_mode(&args);
    let quick = reap_bench::has_quick_flag(&args);

    println!("Table 2: Pareto-optimal design-point characterization");
    println!("======================================================");

    print_table(
        "Published (paper) characterization:",
        &pareto_characterization(CharMode::Paper, quick),
    );

    match mode {
        CharMode::Paper => {
            // Show the calibrated device model with paper accuracies so
            // the reader can compare the two characterizations directly.
            let modeled = reap_device::characterize_all(&reap_har::DesignPoint::paper_five());
            print_table(
                "Device-model characterization (paper accuracies):",
                &modeled,
            );
        }
        CharMode::Model => {
            println!("\ntraining classifiers on the synthetic user study...");
            let modeled = pareto_characterization(CharMode::Model, quick);
            print_table(
                "Device-model characterization (trained accuracies):",
                &modeled,
            );
        }
    }

    println!("\nDescriptions:");
    for (i, config) in reap_har::DpConfig::paper_pareto_5().iter().enumerate() {
        println!("  DP{}: {config}", i + 1);
    }
}
