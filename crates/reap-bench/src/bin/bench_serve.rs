//! Loopback load generator for the `reap-serve` daemon: measures the
//! served request path (real TCP, real protocol framing) rather than the
//! in-process library path, and writes a machine-readable baseline
//! (`BENCH_serve.json`) that `bench_check` gates in CI.
//!
//! ```text
//! cargo run --release -p reap-bench --bin bench_serve [-- <output.json>] [--quick]
//! ```
//!
//! An in-process server binds `127.0.0.1:0` (kernel-assigned port — no
//! hardcoded ports) holding the standard 2000-user bench fleet resident.
//! Eight client threads connect through the self-healing [`RetryClient`]
//! (the deployment path), stream one simulated day of seq-stamped
//! observations each to warm the resident EWMA/battery state, then
//! hammer `decide` — the cached-frontier lookup path — recording
//! client-side round-trip latencies in a merged histogram. Throughput is
//! the best of three measured rounds (the work is identical each round;
//! the minimum wall time isolates the request path from scheduler
//! noise). The `serve-v2` baseline also records the resilience counters
//! (client retries/reconnects, server errors/evictions/sheds) — all of
//! which must be zero on a fault-free loopback run, so a regression that
//! makes the healthy path retry shows up in the committed baseline.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use reap_bench::{has_quick_flag, CharMode};
use reap_serve::{
    Client, FleetState, LatencyHistogram, Request, Response, RetryClient, RetryConfig, Server,
    ServerConfig,
};
use reap_sim::Fleet;

/// Resident users — matches the fleet bench population.
const SERVE_USERS: u32 = 2000;
/// Concurrent client connections.
const CLIENT_THREADS: usize = 8;
/// Measured decide requests per thread per round.
const DECIDES_PER_THREAD: usize = 25_000;
/// Measured rounds; the fastest is reported.
const ROUNDS: usize = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let users = if quick { 64 } else { SERVE_USERS };
    let decides_per_thread = if quick { 500 } else { DECIDES_PER_THREAD };
    let rounds = if quick { 1 } else { ROUNDS };

    let fleet = Fleet::builder(reap_bench::operating_points(CharMode::Paper, true))
        .users(users)
        .seed(reap_bench::BENCH_SEED)
        .build()
        .expect("valid fleet");
    let state = FleetState::new(&fleet, 16).expect("fleet state builds");
    let server = Server::bind("127.0.0.1:0", state, ServerConfig::default()).expect("bind port 0");
    let addr = server.local_addr();
    let serving = std::thread::spawn(move || server.serve());

    println!(
        "serve bench: {users} resident users, {CLIENT_THREADS} client threads x \
         {decides_per_thread} decides x {rounds} round(s) against {addr} ({out_path})"
    );
    println!("=============================================================");

    let barrier = Arc::new(Barrier::new(CLIENT_THREADS));
    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client =
                    RetryClient::connect(addr, RetryConfig::default()).expect("client connects");
                let owned: Vec<u32> = (t as u32..users).step_by(CLIENT_THREADS).collect();
                // Warm the resident state: one simulated day per owned
                // user, seq-stamped (the idempotent replay-safe path).
                for hour in 0..24u32 {
                    for &user in &owned {
                        let harvest_j = f64::from((user * 7 + hour) % 6) * 0.45;
                        client
                            .observe(user, hour, harvest_j, Some(0.125))
                            .expect("observe");
                    }
                }
                let hist = LatencyHistogram::new();
                let mut walls = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    barrier.wait();
                    let round_start = Instant::now();
                    for i in 0..decides_per_thread {
                        let user = owned[i % owned.len()];
                        let sent = Instant::now();
                        match client.decide(user).expect("decide") {
                            Response::Decision { .. } => hist.record(sent.elapsed()),
                            other => panic!("unexpected decide reply: {other:?}"),
                        }
                    }
                    walls.push(round_start.elapsed().as_secs_f64());
                }
                (walls, hist, client.retries(), client.reconnects())
            })
        })
        .collect();

    let mut per_thread_walls = Vec::with_capacity(CLIENT_THREADS);
    let merged = LatencyHistogram::new();
    let mut retries = 0u64;
    let mut reconnects = 0u64;
    for worker in workers {
        let (walls, hist, r, rc) = worker.join().expect("client thread");
        merged.merge(&hist);
        per_thread_walls.push(walls);
        retries += r;
        reconnects += rc;
    }

    // A round isn't done until its slowest thread is: the aggregate rate
    // of round r uses the max wall across threads. Report the best round.
    let mut best_wall_s = f64::INFINITY;
    for r in 0..rounds {
        let wall = per_thread_walls.iter().map(|w| w[r]).fold(0.0f64, f64::max);
        best_wall_s = best_wall_s.min(wall);
    }
    let decisions = (CLIENT_THREADS * decides_per_thread) as f64;
    let decisions_per_s = decisions / best_wall_s;
    let p50_us = merged.quantile_us(0.50);
    let p99_us = merged.quantile_us(0.99);

    // Server-side view, for the log and the resilience counters.
    let mut client = Client::connect(addr).expect("stats client");
    let server_stats = match client.request(&Request::Stats).expect("stats") {
        Response::Stats { fleet, server } => {
            println!(
                "fleet   : {} users / {} cohorts, {} observations, digest {:016x}",
                fleet.users, fleet.cohorts, fleet.observations, fleet.state_digest
            );
            println!(
                "server  : {} requests over {} connections, decide handling p99 {:.0} us",
                server.requests, server.connections, server.decide_p99_us
            );
            server
        }
        other => panic!("unexpected stats reply: {other:?}"),
    };
    match client.request(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    serving.join().expect("server thread").expect("clean exit");

    println!(
        "decides : {decisions:.0} in {:.0} ms (best of {rounds}) = {decisions_per_s:.0}/s \
         aggregate",
        best_wall_s * 1e3
    );
    println!("latency : round-trip p50 {p50_us:.0} us, p99 {p99_us:.0} us");
    println!(
        "faults  : {retries} retries, {reconnects} reconnects, {} server errors, \
         {} evicted, {} shed (all should be 0 on healthy loopback)",
        server_stats.errors, server_stats.evicted, server_stats.shed
    );

    let json = format!(
        "{{\n  \"schema\": \"reap-bench/serve-v2\",\n  \"users\": {users},\n  \
         \"client_threads\": {CLIENT_THREADS},\n  \"decisions\": {decisions:.0},\n  \
         \"wall_ms\": {:.1},\n  \"decisions_per_s\": {decisions_per_s:.0},\n  \
         \"decide_p50_us\": {p50_us:.1},\n  \"decide_p99_us\": {p99_us:.1},\n  \
         \"retries\": {retries},\n  \"reconnects\": {reconnects},\n  \
         \"server_errors\": {},\n  \"evicted\": {},\n  \"shed\": {}\n}}\n",
        best_wall_s * 1e3,
        server_stats.errors,
        server_stats.evicted,
        server_stats.shed
    );
    std::fs::write(&out_path, json).expect("writable output");
    println!("wrote {out_path}");
}
