//! Regenerates **Fig. 6**: the objective J(t) of each static design point
//! normalized to REAP's, with alpha = 2 (accuracy-weighted).
//!
//! ```text
//! cargo run --release -p reap-bench --bin fig6 [-- --char model --quick]
//! ```

use reap_bench::{operating_points, parse_char_mode, row, rule};
use reap_core::{energy_sweep, linspace};
use reap_units::Energy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_char_mode(&args);
    let quick = reap_bench::has_quick_flag(&args);
    let alpha = 2.0;

    println!("Fig. 6: static design points normalized to REAP, alpha = 2");
    println!("===========================================================");

    let points = operating_points(mode, quick);
    let problem = reap_bench::standard_problem(points, alpha);
    let budgets: Vec<Energy> = linspace(3.0, 10.0, 36)
        .into_iter()
        .map(Energy::from_joules)
        .collect();
    let sweep = energy_sweep(&problem, &budgets).expect("sweep is solvable");

    let widths = [9usize, 7, 7, 7, 7, 7];
    println!(
        "\n{}",
        row(
            &[
                "Eb (J)".into(),
                "DP1".into(),
                "DP2".into(),
                "DP3".into(),
                "DP4".into(),
                "DP5".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for p in &sweep {
        let reap_j = p.reap.objective(alpha).max(1e-12);
        let mut cells = vec![format!("{:.2}", p.budget.joules())];
        for s in &p.statics {
            cells.push(format!("{:.3}", s.objective(alpha) / reap_j));
        }
        println!("{}", row(&cells, &widths));
    }

    println!("\ncheckpoints from the paper (Sec. 5.3):");
    let norm = |j: f64, idx: usize| -> f64 {
        let rows = energy_sweep(&problem, &[Energy::from_joules(j)]).expect("solvable");
        rows[0].statics[idx].objective(alpha) / rows[0].reap.objective(alpha)
    };
    println!(
        "  below 6 J, DP4 is the best static point and REAP matches it: DP4/REAP at 5 J = {:.3}",
        norm(5.0, 3)
    );
    println!(
        "  DP3 matches REAP near 6.5 J: DP3/REAP = {:.3} (paper: ~1.0)",
        norm(6.5, 2)
    );
    println!(
        "  beyond 6.5 J REAP pulls ahead of DP3: DP3/REAP at 8.5 J = {:.3}",
        norm(8.5, 2)
    );
    println!(
        "  beyond 9.9 J REAP reduces to DP1: DP1/REAP at 10 J = {:.3}",
        norm(10.0, 0)
    );
}
