//! Regenerates **Fig. 3**: the energy-accuracy scatter of all 24 design
//! points and the Pareto front connecting DP1..DP5.
//!
//! Accuracies come from classifiers trained on the synthetic user study
//! (the paper never published the 19 dominated points), energies from the
//! calibrated device model.
//!
//! ```text
//! cargo run --release -p reap-bench --bin fig3 [-- --quick]
//! ```

use reap_bench::{characterize_all_24, has_quick_flag, row, rule};
use reap_har::pareto_front;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);

    println!("Fig. 3: energy-accuracy trade-off of the 24 design points");
    println!("==========================================================");
    println!(
        "training 24 classifiers on the synthetic user study{}...",
        if quick { " (quick mode)" } else { "" }
    );

    let all = characterize_all_24(quick);
    let points: Vec<(f64, f64)> = all
        .iter()
        .map(|c| (c.total_energy().millijoules(), c.point.accuracy))
        .collect();
    let front = pareto_front(&points);

    let widths = [4usize, 13, 13, 8, 42];
    println!(
        "\n{}",
        row(
            &[
                "DP".into(),
                "Energy (mJ)".into(),
                "Accuracy (%)".into(),
                "Pareto".into(),
                "Configuration".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for (i, c) in all.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    format!("{}", c.point.id),
                    format!("{:.2}", c.total_energy().millijoules()),
                    format!("{:.1}", c.point.accuracy * 100.0),
                    if front.contains(&i) {
                        "*".into()
                    } else {
                        "".into()
                    },
                    format!("{}", c.point.config),
                ],
                &widths
            )
        );
    }

    println!(
        "\nPareto-optimal points: {:?}",
        front.iter().map(|&i| all[i].point.id).collect::<Vec<_>>()
    );

    // ASCII scatter: energy on x (1.5-5 mJ), accuracy on y.
    println!("\nascii scatter (x: energy/activity mJ, y: accuracy %):");
    let rows = 16;
    let cols = 60;
    let (e_min, e_max) = (1.5, 5.0);
    let (a_min, a_max) = (0.45, 1.0);
    let mut grid = vec![vec![' '; cols]; rows];
    for (i, &(e, a)) in points.iter().enumerate() {
        let x = (((e - e_min) / (e_max - e_min)) * (cols - 1) as f64).clamp(0.0, (cols - 1) as f64)
            as usize;
        let y = (((a - a_min) / (a_max - a_min)) * (rows - 1) as f64).clamp(0.0, (rows - 1) as f64)
            as usize;
        let marker = if front.contains(&i) { '#' } else { 'o' };
        grid[rows - 1 - y][x] = marker;
    }
    for (r, line) in grid.iter().enumerate() {
        let acc = a_max - (r as f64 / (rows - 1) as f64) * (a_max - a_min);
        println!("{:>5.1} |{}", acc * 100.0, line.iter().collect::<String>());
    }
    println!("      +{}", "-".repeat(cols));
    println!(
        "       {:<28}{:>28}",
        format!("{e_min} mJ"),
        format!("{e_max} mJ")
    );
    println!("\n('#' = Pareto-optimal, 'o' = dominated)");
}
