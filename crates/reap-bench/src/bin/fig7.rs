//! Regenerates **Fig. 7**: REAP's objective normalized to DP1, DP3, and
//! DP5 over a September-like month of harvested solar energy, as a
//! function of alpha. Error bars (min/max over days) mirror the paper's.
//!
//! ```text
//! cargo run --release -p reap-bench --bin fig7 [-- --char model --quick]
//! ```

use reap_bench::{operating_points, parse_char_mode, row, rule};
use reap_harvest::HarvestTrace;
use reap_sim::{run_matrix, BudgetMode, Policy, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_char_mode(&args);
    let quick = reap_bench::has_quick_flag(&args);
    let budget_mode = if args.iter().any(|a| a == "--closed-loop") {
        BudgetMode::ClosedLoop
    } else {
        BudgetMode::OpenLoop
    };

    println!("Fig. 7: REAP normalized to DP1/DP3/DP5 over a September-like month");
    println!("===================================================================");
    println!("budget mode: {budget_mode:?} (open-loop = the paper's protocol; --closed-loop for the ablation)");

    let points = operating_points(mode, quick);
    let trace = HarvestTrace::september_like(reap_bench::BENCH_SEED);
    println!(
        "\ntrace: {} days, total harvest {:.1} J, peak hour {:.2} J",
        trace.days(),
        trace.total().joules(),
        trace.peak().joules()
    );

    let alphas = [0.5, 1.0, 2.0, 4.0, 8.0];
    let baselines: [(usize, u8); 3] = [(0, 1), (2, 3), (4, 5)]; // (index, id)

    let widths = [7usize, 22, 22, 22];
    println!(
        "\n{}",
        row(
            &[
                "alpha".into(),
                "vs DP1 min/mean/max".into(),
                "vs DP3 min/mean/max".into(),
                "vs DP5 min/mean/max".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    // One scenario per alpha; the 5 x 4 (scenario, policy) matrix runs in
    // parallel with each scenario's open-loop budgets computed once.
    let scenarios: Vec<Scenario> = alphas
        .iter()
        .map(|&alpha| {
            Scenario::builder(trace.clone())
                .points(points.clone())
                .alpha(alpha)
                .budget_mode(budget_mode)
                .build()
                .expect("valid scenario")
        })
        .collect();
    let policies: Vec<Policy> = std::iter::once(Policy::Reap)
        .chain(baselines.iter().map(|&(_, id)| Policy::Static(id)))
        .collect();
    let matrix = run_matrix(&scenarios, &policies).expect("sim runs");

    for (&alpha, reports) in alphas.iter().zip(&matrix) {
        let (reap, stats) = (&reports[0], &reports[1..]);
        let mut cells = vec![format!("{alpha}")];
        for stat in stats {
            match reap.normalized_daily(stat, alpha) {
                Some((min, mean, max)) => {
                    cells.push(format!("{min:.2} / {mean:.2} / {max:.2}"));
                }
                None => cells.push("n/a".into()),
            }
        }
        println!("{}", row(&cells, &widths));
    }

    println!("\nexpected qualitative shape (paper, Sec. 5.4):");
    println!(
        "  vs DP1: ~1.6x mean at alpha = 0.5 (range 1.4-2.2), declining to 1.1-1.3x at alpha = 8"
    );
    println!("  vs DP3: 1.1-1.4x at alpha = 0.5, declining with alpha (best-trade-off baseline)");
    println!("  vs DP5: near 1x at alpha = 0.5, growing steeply with alpha");
}
