//! Ablation: weight-quantized deployment. Trains the five Pareto design
//! points and measures how test accuracy degrades as classifier weights
//! are quantized for MCU flash storage.
//!
//! ```text
//! cargo run --release -p reap-bench --bin ablation_quantization [-- --quick]
//! ```

use reap_bench::{bench_dataset, bench_train_config, has_quick_flag, row, rule};
use reap_har::{extract_features, train_classifier, DpConfig, QuantizedMlp, Standardizer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);

    println!("Ablation: classifier weight quantization (flash-image size vs accuracy)");
    println!("========================================================================");
    println!(
        "training on the synthetic user study{}...",
        if quick { " (quick)" } else { "" }
    );

    let dataset = bench_dataset(quick);
    let train_config = bench_train_config(quick);
    let split = dataset.split(train_config.seed);

    let widths = [4usize, 10, 9, 9, 9, 9, 12];
    println!(
        "\n{}",
        row(
            &[
                "DP".into(),
                "float".into(),
                "16-bit".into(),
                "8-bit".into(),
                "6-bit".into(),
                "4-bit".into(),
                "8b bytes".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    for (i, config) in DpConfig::paper_pareto_5().iter().enumerate() {
        let trained = train_classifier(&dataset, config, &train_config).expect("trains");

        // Re-extract standardized test features so we can drive the raw
        // networks directly.
        let test_raw: Vec<Vec<f64>> = split
            .test
            .iter()
            .map(|w| extract_features(config, w).expect("extracts"))
            .collect();
        let train_raw: Vec<Vec<f64>> = split
            .train
            .iter()
            .map(|w| extract_features(config, w).expect("extracts"))
            .collect();
        let standardizer = Standardizer::fit(&train_raw).expect("fits");
        let test_x = standardizer.apply_all(&test_raw).expect("applies");
        let test_y: Vec<usize> = split.test.iter().map(|w| w.label.index()).collect();

        let accuracy_of = |predict: &dyn Fn(&[f64]) -> usize| -> f64 {
            let correct = test_x
                .iter()
                .zip(&test_y)
                .filter(|(x, &y)| predict(x) == y)
                .count();
            correct as f64 / test_x.len() as f64
        };

        let float_net = trained.network();
        let float_acc = accuracy_of(&|x| float_net.predict(x));
        let mut cells = vec![format!("{}", i + 1), format!("{:.1}%", float_acc * 100.0)];
        let mut bytes8 = 0usize;
        for bits in [16u8, 8, 6, 4] {
            let q = QuantizedMlp::from_mlp(float_net, bits).expect("valid width");
            if bits == 8 {
                bytes8 = q.storage_bytes();
            }
            let acc = accuracy_of(&|x| q.predict(x));
            cells.push(format!("{:.1}%", acc * 100.0));
        }
        cells.push(format!("{bytes8}"));
        println!("{}", row(&cells, &widths));
    }

    println!("\nreading: 8-bit weights cost well under a point of accuracy while");
    println!("shrinking the flash image 8x — the standard MCU deployment choice.");
}
