//! Regenerates the **Sec. 4.2 offloading comparison**: sending raw sensor
//! data to a host (5.5 mJ/activity for the full sensor set) vs.
//! transmitting just the recognized activity (0.38 mJ).
//!
//! ```text
//! cargo run --release -p reap-bench --bin offload
//! ```

use reap_bench::{row, rule};
use reap_device::{energy, radio};
use reap_har::DpConfig;

fn main() {
    println!("Sec. 4.2: raw-data offloading vs on-device classification");
    println!("==========================================================");

    let widths = [4usize, 12, 14, 16, 16, 9];
    println!(
        "\n{}",
        row(
            &[
                "DP".into(),
                "Raw bytes".into(),
                "Offload (mJ)".into(),
                "On-device (mJ)".into(),
                "+result TX (mJ)".into(),
                "Winner".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    for (i, config) in DpConfig::paper_pareto_5().iter().enumerate() {
        let (raw, result_tx) = radio::offload_comparison(config);
        let on_device = energy::activity_energy(config);
        let total_local = on_device + result_tx;
        // Offloading still pays for sensing.
        let total_offload = raw + energy::sensor_energy(config);
        println!(
            "{}",
            row(
                &[
                    format!("{}", i + 1),
                    format!("{}", radio::raw_payload_bytes(config)),
                    format!("{:.2}", total_offload.millijoules()),
                    format!("{:.2}", on_device.millijoules()),
                    format!("{:.2}", total_local.millijoules()),
                    if total_local < total_offload {
                        "local"
                    } else {
                        "offload"
                    }
                    .into(),
                ],
                &widths
            )
        );
    }

    let dp1 = &DpConfig::paper_pareto_5()[0];
    let (raw, result) = radio::offload_comparison(dp1);
    println!("\nchecks against the paper:");
    println!(
        "  raw offload (full sensor set): {:.2} mJ (paper: 5.5 mJ)",
        raw.millijoules()
    );
    println!(
        "  recognized-activity TX:        {:.2} mJ (paper: ~0.38 mJ)",
        result.millijoules()
    );
    println!(
        "  conclusion: offloading is {:.1}x costlier than result TX -> classify on-device",
        raw / result
    );
}
