//! Regenerates **Fig. 4**: the energy-consumption distribution of DP1
//! over a one-hour activity period (paper total: 9.9 J, sensors ~47%).
//!
//! ```text
//! cargo run --release -p reap-bench --bin fig4
//! ```

use reap_device::hourly_breakdown;
use reap_har::DesignPoint;

fn main() {
    println!("Fig. 4: DP1 energy distribution over a one-hour activity period");
    println!("================================================================");

    let dp1 = &DesignPoint::paper_five()[0];
    let b = hourly_breakdown(dp1);
    let total = b.total();

    println!("\ncomponent breakdown (device model):");
    for (label, e) in b.components() {
        let frac = e / total;
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!(
            "  {label:<24} {:>7.3} J  {:>5.1}%  {bar}",
            e.joules(),
            frac * 100.0
        );
    }
    println!("  {:<24} {:>7.3} J", "total", total.joules());

    println!("\nchecks against the paper:");
    println!(
        "  total ~ 9.9 J        -> model {:.2} J (paper: 9.9 J)",
        total.joules()
    );
    println!(
        "  sensor share ~ 47%   -> model {:.1}% (paper: ~47%)",
        b.sensor_fraction() * 100.0
    );

    // The same breakdown for the other Pareto points, for context.
    println!("\nhourly totals of all five Pareto DPs:");
    for dp in DesignPoint::paper_five() {
        let hb = hourly_breakdown(&dp);
        println!(
            "  DP{}: {:>6.2} J/h  (sensors {:>4.1}%)",
            dp.id,
            hb.total().joules(),
            hb.sensor_fraction() * 100.0
        );
    }
}
