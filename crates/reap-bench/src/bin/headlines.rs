//! Regenerates the paper's **headline claims** (abstract & Sec. 6):
//!
//! * "46% higher expected accuracy and 66% longer active time compared to
//!   the highest performance design point (DP1)",
//! * "22% to 29% higher accuracy than low-power design points without
//!   sacrificing the active time",
//! * solver runtime that stays in the milliseconds up to 100 DPs.
//!
//! ```text
//! cargo run --release -p reap-bench --bin headlines [-- --char model --quick]
//! ```

use reap_bench::{operating_points, parse_char_mode};
use reap_core::{energy_sweep, linspace, static_schedule};
use reap_units::Energy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_char_mode(&args);
    let quick = reap_bench::has_quick_flag(&args);

    println!("Headline claims");
    println!("===============");

    let points = operating_points(mode, quick);
    let problem = reap_bench::standard_problem(points, 1.0);

    // Sweep the energy-constrained regime (between the floor and DP1
    // saturation), the region where the paper's gains live.
    let budgets: Vec<Energy> = linspace(0.5, problem.saturation_budget().joules(), 80)
        .into_iter()
        .map(Energy::from_joules)
        .collect();
    let sweep = energy_sweep(&problem, &budgets).expect("solvable");

    // --- vs DP1 (highest performance point).
    let mut acc_ratio = 0.0;
    let mut time_ratio = 0.0;
    let mut n = 0usize;
    for p in &sweep {
        let dp1 = &p.statics[0];
        if dp1.expected_accuracy() > 1e-9 {
            acc_ratio += p.reap.expected_accuracy() / dp1.expected_accuracy();
            time_ratio += p.reap.active_time() / dp1.active_time();
            n += 1;
        }
    }
    acc_ratio /= n as f64;
    time_ratio /= n as f64;
    println!("\nvs DP1 (mean over the {n}-point energy sweep):");
    println!(
        "  expected accuracy: {:.0}% higher (paper: 46% higher)",
        (acc_ratio - 1.0) * 100.0
    );
    println!(
        "  active time:       {:.0}% longer (paper: 66% longer)",
        (time_ratio - 1.0) * 100.0
    );

    // --- vs the low-power points (DP4, DP5) in the regime where they are
    // fully active but accuracy-starved.
    println!("\nvs low-power design points (budgets where they saturate):");
    for (idx, id) in [(3usize, 4u8), (4, 5)] {
        let saturation = problem.point(id).expect("exists").power() * problem.period();
        let budgets: Vec<Energy> = linspace(
            saturation.joules(),
            problem.saturation_budget().joules(),
            40,
        )
        .into_iter()
        .map(Energy::from_joules)
        .collect();
        let mut gain = Vec::new();
        let mut time_loss = Vec::new();
        let reaps = problem.solve_many(&budgets).expect("solvable");
        for (b, reap) in budgets.into_iter().zip(reaps) {
            let stat = static_schedule(&problem, id, b).expect("solvable");
            gain.push(reap.expected_accuracy() / stat.expected_accuracy() - 1.0);
            time_loss.push(reap.active_time() / stat.active_time());
        }
        let mean_gain = gain.iter().sum::<f64>() / gain.len() as f64;
        let min_time = time_loss.iter().cloned().fold(f64::MAX, f64::min);
        let _ = idx;
        println!(
            "  vs DP{id}: {:.0}% higher accuracy, active-time ratio never below {:.2}",
            mean_gain * 100.0,
            min_time
        );
    }
    println!("  (paper: 22%-29% higher accuracy without sacrificing active time)");

    // --- Solver runtime scaling (Sec. 3.3: 1.5 ms at 5 DPs, 8 ms at 100
    // DPs on the MCU; we report host-side times and the scaling shape).
    println!("\nsolver runtime scaling (host, single solve, mean of 100 runs):");
    for n_points in [5usize, 10, 25, 50, 100] {
        let prob = reap_bench::synthetic_problem(n_points);
        let budget = Energy::from_joules(5.0);
        let runs = 100;
        let start = std::time::Instant::now();
        for _ in 0..runs {
            let _ = prob.solve(budget).expect("solvable");
        }
        let per_solve = start.elapsed().as_secs_f64() * 1e3 / runs as f64;
        let frontier = prob.frontier();
        let start = std::time::Instant::now();
        for _ in 0..runs {
            let _ = frontier.solve(budget).expect("solvable");
        }
        let per_frontier = start.elapsed().as_secs_f64() * 1e3 / runs as f64;
        println!("  N = {n_points:>3}: {per_solve:.3} ms/solve simplex, {per_frontier:.5} ms/solve frontier");
    }
    println!(
        "  (paper, 47 MHz MCU: 1.5 ms at N=5, 8 ms at N=100 — shape should be mildly super-linear)"
    );
}
