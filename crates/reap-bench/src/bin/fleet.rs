//! Fleet-scale simulation baseline: thousands of seeded synthetic users
//! sharded across all four harvest sources, reduced to population
//! percentiles and written as machine-readable JSON (`BENCH_fleet.json`)
//! so CI tracks both the population statistics and the fleet throughput.
//!
//! ```text
//! cargo run --release -p reap-bench --bin fleet [-- <output.json>] [--quick]
//! ```
//!
//! The committed `BENCH_fleet.json` at the repo root is the baseline
//! recorded when the fleet simulator landed; regenerate it with the
//! command above after any harvest-source, engine, or aggregation change.
//! `--quick` shrinks the population for smoke runs (CI still uses the
//! full 2000 users).

use reap_bench::{has_quick_flag, CharMode};
use reap_sim::{Fleet, FleetReport, Percentiles};

/// Users in the baseline fleet. Two thousand keeps the run under a couple
/// of seconds in release while giving percentiles a stable tail.
const FLEET_USERS: u32 = 2000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let users = if quick { 64 } else { FLEET_USERS };

    let fleet = Fleet::builder(reap_bench::operating_points(CharMode::Paper, true))
        .users(users)
        .seed(reap_bench::BENCH_SEED)
        .build()
        .expect("valid fleet");

    println!(
        "fleet baseline: {} users x {} days across {} harvest sources ({out_path})",
        fleet.users(),
        fleet.days(),
        fleet.sources().len()
    );
    println!("=============================================================");

    // Throughput is the fastest of several repetitions: the simulation
    // is deterministic, so every run does identical work and the
    // minimum wall time isolates the kernels from scheduler noise on
    // shared runners (each repetition must also reproduce the same
    // report). Nine reps span ~200 ms, long enough to straddle brief
    // frequency-throttle windows that would bias a smaller sample.
    let runs = if quick { 1 } else { 9 };
    let report = fleet.run().expect("fleet runs");
    let mut wall_ms = f64::INFINITY;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        let again = fleet.run().expect("fleet runs");
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(again, report, "fleet run is not deterministic");
    }
    let users_per_s = f64::from(report.users()) / (wall_ms / 1e3);

    // The determinism guarantee the fleet tests pin down, re-asserted on
    // the full population: a single-threaded run must reproduce the
    // parallel aggregate bit for bit.
    let single = fleet
        .run_with_threads(Some(std::num::NonZeroUsize::MIN))
        .expect("fleet runs single-threaded");
    assert_eq!(
        single, report,
        "single-threaded fleet diverged from parallel run"
    );

    println!("accuracy        : {}", report.accuracy());
    println!("active fraction : {}", report.active_fraction());
    println!(
        "cohorts         : {} ({} SoA bytes/user)",
        report.cohorts(),
        report.soa_bytes_per_user()
    );
    for slice in report.per_source() {
        println!(
            "{:>14} : {:>4} users, mean accuracy {:.3}, mean active {:.3}, {:>7.1} J harvested",
            slice.kind.label(),
            slice.users,
            slice.mean_accuracy,
            slice.mean_active_fraction,
            slice.mean_harvested_j
        );
    }
    println!(
        "wall time {wall_ms:.0} ms ({users_per_s:.0} users/s), {} brownout hours fleet-wide",
        report.brownout_hours()
    );

    std::fs::write(&out_path, to_json(&report, wall_ms, users_per_s)).expect("writable output");
    println!("wrote {out_path}");
}

fn percentiles_json(p: Percentiles) -> String {
    format!(
        "{{\"p5\": {:.4}, \"p50\": {:.4}, \"p95\": {:.4}}}",
        p.p5, p.p50, p.p95
    )
}

fn to_json(report: &FleetReport, wall_ms: f64, users_per_s: f64) -> String {
    let mut json = format!(
        "{{\n  \"schema\": \"reap-bench/fleet-v2\",\n  \"users\": {},\n  \"days\": {},\n  \
         \"cohorts\": {},\n  \"soa_bytes_per_user\": {},\n  \
         \"accuracy\": {},\n  \"active_fraction\": {},\n  \"mean_accuracy\": {:.4},\n  \
         \"mean_active_fraction\": {:.4},\n  \"brownout_hours\": {},\n  \"per_source\": [\n",
        report.users(),
        report.days(),
        report.cohorts(),
        report.soa_bytes_per_user(),
        percentiles_json(report.accuracy()),
        percentiles_json(report.active_fraction()),
        report.mean_accuracy(),
        report.mean_active_fraction(),
        report.brownout_hours(),
    );
    let slices = report.per_source();
    for (i, s) in slices.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"source\": \"{}\", \"users\": {}, \"mean_accuracy\": {:.4}, \
             \"mean_active_fraction\": {:.4}, \"mean_harvested_j\": {:.1}}}{}\n",
            s.kind.label(),
            s.users,
            s.mean_accuracy,
            s.mean_active_fraction,
            s.mean_harvested_j,
            if i + 1 < slices.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"wall_ms\": {wall_ms:.0},\n  \"users_per_s\": {users_per_s:.0}\n}}\n"
    ));
    json
}
