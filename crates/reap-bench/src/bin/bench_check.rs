//! Bench-baseline regression gate: compares freshly generated bench JSON
//! against the committed baselines and fails (exit 1) on a throughput
//! regression beyond the threshold.
//!
//! ```text
//! cargo run --release -p reap-bench --bin bench_check -- \
//!     [--threshold 0.25] --discover <dir>
//! cargo run --release -p reap-bench --bin bench_check -- \
//!     [--threshold 0.25] <baseline.json> <fresh.json> [<baseline> <fresh> ...]
//! ```
//!
//! `--discover <dir>` finds every committed `BENCH_<name>.json` baseline
//! in the directory and pairs it with its regenerated
//! `BENCH_<name>.ci.json` — a new bench joins the gate by existing, and a
//! bench whose CI step stopped producing fresh numbers fails loudly
//! instead of silently dropping out. Explicit pairs remain for local use.
//!
//! Each pair must share a known bench schema (`reap-bench/planner-v1`,
//! `reap-bench/fleet-v2`, `reap-bench/mpc-v1`, `reap-bench/serve-v2`);
//! the tracked throughput metrics per schema live in
//! [`reap_bench::regression`]. The default threshold tolerates a 25%
//! slowdown — wide enough for shared-runner noise, tight enough to catch
//! a hot path falling off a cliff.

use reap_bench::regression::{compare, discover_pairs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.25f64;
    let mut discover: Option<String> = None;
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("--threshold needs a value"));
            threshold = value
                .parse()
                .unwrap_or_else(|_| panic!("--threshold expects a number, got {value:?}"));
        } else if arg == "--discover" {
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("--discover needs a directory"));
            discover = Some(value.clone());
        } else {
            paths.push(arg.clone());
        }
    }
    if let Some(dir) = discover {
        assert!(
            paths.is_empty(),
            "--discover and explicit pairs are mutually exclusive"
        );
        match discover_pairs(std::path::Path::new(&dir)) {
            Ok(pairs) => {
                for (baseline, fresh) in pairs {
                    paths.push(baseline.display().to_string());
                    paths.push(fresh.display().to_string());
                }
            }
            Err(message) => {
                println!("bench discovery in {dir}: {message} .. FAILED");
                std::process::exit(1);
            }
        }
    }
    assert!(
        !paths.is_empty() && paths.len() % 2 == 0,
        "usage: bench_check [--threshold 0.25] --discover <dir> | <baseline.json> <fresh.json> ..."
    );

    println!(
        "bench regression gate: {} pair(s), threshold {:.0}%",
        paths.len() / 2,
        threshold * 100.0
    );
    let mut failed = false;
    for pair in paths.chunks(2) {
        let (base_path, fresh_path) = (&pair[0], &pair[1]);
        let baseline = std::fs::read_to_string(base_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {base_path}: {e}"));
        let fresh = std::fs::read_to_string(fresh_path)
            .unwrap_or_else(|e| panic!("cannot read fresh run {fresh_path}: {e}"));
        match compare(&baseline, &fresh, threshold) {
            Ok(comparisons) => {
                for c in comparisons {
                    let verdict = if c.regressed { "REGRESSED" } else { "ok" };
                    println!(
                        "  {fresh_path} {}: baseline {:.1}, fresh {:.1} ({:+.0}% slowdown) \
                         .. {verdict}",
                        c.key,
                        c.baseline,
                        c.fresh,
                        (c.slowdown - 1.0) * 100.0
                    );
                    failed |= c.regressed;
                }
            }
            Err(message) => {
                println!("  {fresh_path}: {message} .. FAILED");
                failed = true;
            }
        }
    }
    if failed {
        println!(
            "bench regression gate FAILED (>{:.0}% slowdown)",
            threshold * 100.0
        );
        std::process::exit(1);
    }
    println!("bench regression gate passed");
}
