//! Regenerates **Fig. 5**: (a) expected accuracy of REAP and the five
//! static design points as a function of the allocated energy (alpha = 1),
//! and (b) active time of each DP normalized to REAP.
//!
//! ```text
//! cargo run --release -p reap-bench --bin fig5 [-- --char model --quick]
//! ```

use reap_bench::{operating_points, parse_char_mode, row, rule};
use reap_core::{energy_sweep, linspace};
use reap_units::Energy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_char_mode(&args);
    let quick = reap_bench::has_quick_flag(&args);

    println!("Fig. 5: expected accuracy and active time vs allocated energy (alpha = 1)");
    println!("==========================================================================");

    let points = operating_points(mode, quick);
    let problem = reap_bench::standard_problem(points, 1.0);
    let budgets: Vec<Energy> = linspace(problem.min_budget().joules(), 10.5, 42)
        .into_iter()
        .map(Energy::from_joules)
        .collect();
    let sweep = energy_sweep(&problem, &budgets).expect("sweep is solvable");

    let widths = [9usize, 7, 7, 7, 7, 7, 7];
    println!("\n(a) expected accuracy (%):");
    println!(
        "{}",
        row(
            &[
                "Eb (J)".into(),
                "REAP".into(),
                "DP1".into(),
                "DP2".into(),
                "DP3".into(),
                "DP4".into(),
                "DP5".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for p in &sweep {
        let mut cells = vec![
            format!("{:.2}", p.budget.joules()),
            format!("{:.1}", p.reap.expected_accuracy() * 100.0),
        ];
        for s in &p.statics {
            cells.push(format!("{:.1}", s.expected_accuracy() * 100.0));
        }
        println!("{}", row(&cells, &widths));
    }

    println!("\n(b) active time normalized to REAP:");
    println!(
        "{}",
        row(
            &[
                "Eb (J)".into(),
                "REAP".into(),
                "DP1".into(),
                "DP2".into(),
                "DP3".into(),
                "DP4".into(),
                "DP5".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for p in &sweep {
        let reap_active = p.reap.active_time().seconds().max(1e-9);
        let mut cells = vec![format!("{:.2}", p.budget.joules()), "1.00".to_string()];
        for s in &p.statics {
            cells.push(format!("{:.2}", s.active_time().seconds() / reap_active));
        }
        println!("{}", row(&cells, &widths));
    }

    // The checkpoints the paper calls out in Sec. 5.2.
    println!("\ncheckpoints from the paper:");
    let at = |j: f64| problem.solve(Energy::from_joules(j)).expect("solvable");
    let s5 = at(5.0);
    println!(
        "  Eb = 5 J: REAP uses DP4 {:.0}% / DP5 {:.0}% of the hour (paper: 42% / 58%)",
        s5.fraction_for(4) * 100.0,
        s5.fraction_for(5) * 100.0
    );
    let s3 = at(3.0);
    let dp1_static =
        reap_core::static_schedule(&problem, 1, Energy::from_joules(3.0)).expect("solvable");
    println!(
        "  Eb = 3 J (Region 1): REAP active time is {:.1}x DP1's (paper: ~2.3x)",
        s3.active_time() / dp1_static.active_time()
    );
    let s43 = at(4.32);
    println!(
        "  Eb = 4.32 J: DP5 saturates; REAP expected accuracy {:.1}%",
        s43.expected_accuracy() * 100.0
    );
    let s99 = at(9.94);
    println!(
        "  Eb = 9.94 J: REAP reduces to DP1 (fraction {:.2}, accuracy {:.1}%)",
        s99.fraction_for(1),
        s99.expected_accuracy() * 100.0
    );
}
