//! Intermittent-fleet baseline: a 2000-user body-heat-TEG fleet with 30%
//! of every day blacked out, every node on the wearable supercapacitor
//! under [`Policy::Intermittent`], stepped by the event-driven core at
//! 300 s epochs. Written as machine-readable JSON
//! (`BENCH_intermittent.json`) so CI tracks event-core throughput
//! (events/s) and the burst-completion statistics alongside it.
//!
//! ```text
//! cargo run --release -p reap-bench --bin bench_intermittent [-- <output.json>] [--quick]
//! ```
//!
//! The committed `BENCH_intermittent.json` at the repo root is the
//! baseline recorded when the event core landed; regenerate it with the
//! command above after any clock, capacitor, or blackout change.
//! `--quick` shrinks the population for smoke runs (CI still uses the
//! full 2000 users).

use reap_bench::{has_quick_flag, CharMode};
use reap_harvest::SourceKind;
use reap_sim::{Fleet, IntermittentConfig, Policy, Scenario};

/// Users in the baseline fleet, matching the fleet bench's population.
const FLEET_USERS: u32 = 2000;
/// Simulated days per user: a week keeps the run in bench territory
/// while crossing enough harvest diurnals to exercise charge/brownout.
const FLEET_DAYS: u32 = 7;
/// Epoch granularity: the finest dt at which the wearable capacitor's
/// usable burst (~0.23 J) still fits whole epochs at full power.
const DT_SECONDS: u32 = 300;
/// Blackout seed/fraction shared with the blackout degradation tests.
const BLACKOUT_SEED: u64 = 21;
const BLACKOUT_FRACTION: f64 = 0.30;

/// Fleet-wide totals of the per-user [`reap_sim::ClockStats`].
#[derive(Default, PartialEq, Debug)]
struct Totals {
    events: u64,
    bursts: u64,
    epochs_committed: u64,
    epochs_lost: u64,
    brownouts: u64,
    sleeps: u64,
    committed_objective: f64,
    committed_active_s: f64,
    harvest_offered_j: f64,
    spilled_j: f64,
    consumed_j: f64,
    leaked_j: f64,
    checkpoint_j: f64,
    restore_j: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_intermittent.json".to_string());
    let users = if quick { 64 } else { FLEET_USERS };

    let fleet = Fleet::builder(reap_bench::operating_points(CharMode::Paper, true))
        .users(users)
        .days(FLEET_DAYS)
        .seed(reap_bench::BENCH_SEED)
        .sources(vec![SourceKind::BodyHeat])
        .blackout(BLACKOUT_SEED, BLACKOUT_FRACTION)
        .policy(Policy::Intermittent)
        .intermittent(IntermittentConfig::wearable_default())
        .dt_seconds(DT_SECONDS)
        .build()
        .expect("valid intermittent fleet");

    println!(
        "intermittent baseline: {} users x {} days, dt {} s, {:.0}% blackout ({out_path})",
        fleet.users(),
        fleet.days(),
        DT_SECONDS,
        BLACKOUT_FRACTION * 100.0
    );
    println!("=============================================================");

    // The aggregate report goes through the fleet layer (and must stay
    // thread-count deterministic), but the gated throughput metric times
    // the event core itself: every user's scenario stepped front to back,
    // measured as heap events retired per second. Prebuilt scenarios keep
    // trace synthesis out of the timed region.
    let report = fleet.run().expect("fleet runs");
    let single = fleet
        .run_with_threads(Some(std::num::NonZeroUsize::MIN))
        .expect("fleet runs single-threaded");
    assert_eq!(
        single, report,
        "single-threaded intermittent fleet diverged from parallel run"
    );

    let scenarios: Vec<Scenario> = (0..users)
        .map(|u| fleet.user_scenario(u).expect("replayable user"))
        .collect();
    let runs = if quick { 1 } else { 9 };
    let mut wall_ms = f64::INFINITY;
    let mut totals = Totals::default();
    for rep in 0..runs {
        let start = std::time::Instant::now();
        let mut t = Totals::default();
        for scenario in &scenarios {
            let run = scenario
                .run_event_driven(Policy::Intermittent)
                .expect("event core runs");
            let s = &run.stats;
            assert!(
                s.ledger_drift().abs() <= 1e-9,
                "ledger drift {} J",
                s.ledger_drift()
            );
            t.events += s.events;
            t.bursts += s.bursts;
            t.epochs_committed += s.epochs_committed;
            t.epochs_lost += s.epochs_lost;
            t.brownouts += s.brownouts;
            t.sleeps += s.sleeps;
            t.committed_objective += s.committed_objective;
            t.committed_active_s += s.committed_active_s;
            t.harvest_offered_j += s.harvest_offered_j;
            t.spilled_j += s.spilled_j;
            t.consumed_j += s.consumed_j;
            t.leaked_j += s.leaked_j;
            t.checkpoint_j += s.checkpoint_j;
            t.restore_j += s.restore_j;
        }
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if rep == 0 {
            totals = t;
        } else {
            assert_eq!(t, totals, "event core is not deterministic");
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let events_per_s = totals.events as f64 / (wall_ms / 1e3);
    #[allow(clippy::cast_precision_loss)]
    let epochs_per_burst = totals.epochs_committed as f64 / totals.bursts.max(1) as f64;
    #[allow(clippy::cast_precision_loss)]
    let commit_ratio = totals.epochs_committed as f64
        / (totals.epochs_committed + totals.epochs_lost).max(1) as f64;

    println!("accuracy        : {}", report.accuracy());
    println!("active fraction : {}", report.active_fraction());
    println!(
        "bursts          : {} ({epochs_per_burst:.2} epochs/burst, commit ratio {commit_ratio:.4})",
        totals.bursts
    );
    println!(
        "brownouts       : {} mid-epoch, {} epochs lost, {} voluntary sleeps",
        totals.brownouts, totals.epochs_lost, totals.sleeps
    );
    println!(
        "energy          : {:.0} J offered, {:.0} J consumed, {:.0} J spilled, \
         {:.1} J leaked, {:.1} J checkpoint, {:.1} J restore",
        totals.harvest_offered_j,
        totals.consumed_j,
        totals.spilled_j,
        totals.leaked_j,
        totals.checkpoint_j,
        totals.restore_j
    );
    println!(
        "wall time {wall_ms:.0} ms ({events_per_s:.0} events/s, {} events fleet-wide)",
        totals.events
    );

    let json = format!(
        "{{\n  \"schema\": \"reap-bench/intermittent-v1\",\n  \"users\": {},\n  \"days\": {},\n  \
         \"dt_seconds\": {},\n  \"blackout_fraction\": {:.2},\n  \
         \"events\": {},\n  \"bursts\": {},\n  \"epochs_committed\": {},\n  \
         \"epochs_lost\": {},\n  \"brownouts\": {},\n  \"sleeps\": {},\n  \
         \"epochs_per_burst\": {:.3},\n  \"commit_ratio\": {:.4},\n  \
         \"committed_objective\": {:.1},\n  \"committed_active_s\": {:.0},\n  \
         \"harvest_offered_j\": {:.1},\n  \"consumed_j\": {:.1},\n  \"spilled_j\": {:.1},\n  \
         \"leaked_j\": {:.2},\n  \"checkpoint_j\": {:.2},\n  \"restore_j\": {:.2},\n  \
         \"mean_accuracy\": {:.4},\n  \"mean_active_fraction\": {:.4},\n  \
         \"wall_ms\": {wall_ms:.0},\n  \"events_per_s\": {events_per_s:.0}\n}}\n",
        report.users(),
        report.days(),
        DT_SECONDS,
        BLACKOUT_FRACTION,
        totals.events,
        totals.bursts,
        totals.epochs_committed,
        totals.epochs_lost,
        totals.brownouts,
        totals.sleeps,
        epochs_per_burst,
        commit_ratio,
        totals.committed_objective,
        totals.committed_active_s,
        totals.harvest_offered_j,
        totals.consumed_j,
        totals.spilled_j,
        totals.leaked_j,
        totals.checkpoint_j,
        totals.restore_j,
        report.mean_accuracy(),
        report.mean_active_fraction(),
    );
    std::fs::write(&out_path, json).expect("writable output");
    println!("wrote {out_path}");
}
