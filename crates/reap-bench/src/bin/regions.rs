//! Prints the operating-region structure underlying Fig. 5: budget
//! intervals over which the optimal policy keeps the same active design
//! points, plus the energy shadow price in each region.
//!
//! ```text
//! cargo run --release -p reap-bench --bin regions [-- --char model --quick]
//! ```

use reap_bench::{operating_points, parse_char_mode};
use reap_core::{detect_regions, energy_shadow_price};
use reap_units::Energy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = parse_char_mode(&args);
    let quick = reap_bench::has_quick_flag(&args);

    for alpha in [1.0, 2.0] {
        let problem = reap_bench::standard_problem(operating_points(mode, quick), alpha);
        let map = detect_regions(&problem, 2000).expect("detects");
        println!("\noperating regions at alpha = {alpha}:");
        println!(
            "  {:<22} {:<18} {:<14} shadow price (J^-1)",
            "budget range (J)", "active points", "fully active"
        );
        for (k, region) in map.regions.iter().enumerate() {
            let lo = map.bounds[k];
            let hi = map.bounds[k + 1];
            let mid = Energy::from_joules((lo.joules() + hi.joules()) / 2.0);
            let price = energy_shadow_price(&problem, mid).unwrap_or(f64::NAN);
            let ids: Vec<String> = region
                .active_ids
                .iter()
                .map(|id| format!("DP{id}"))
                .collect();
            println!(
                "  {:<22} {:<18} {:<14} {:.4}",
                format!("{:.2} .. {:.2}", lo.joules(), hi.joules()),
                if ids.is_empty() {
                    "(off)".to_string()
                } else {
                    ids.join("+")
                },
                region.fully_active,
                price
            );
        }
    }
    println!("\nreading: the shadow price falls monotonically across regions (the");
    println!("objective is concave in the budget) and hits zero at saturation —");
    println!("the signal an allocation layer uses to decide whether to bank energy.");
}
