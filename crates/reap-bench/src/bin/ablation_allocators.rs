//! Ablation: how much does the budget-allocation policy (the layer the
//! paper delegates to Kansal-style techniques) matter? Runs REAP over the
//! September month under each allocator, in both open-loop (paper
//! protocol) and closed-loop (reactive) budget modes, and against the
//! perfect-forecast lookahead upper bound.
//!
//! ```text
//! cargo run --release -p reap-bench --bin ablation_allocators
//! ```

use reap_bench::{row, rule};
use reap_core::plan_horizon;
use reap_harvest::{Battery, HarvestTrace};
use reap_sim::{run_matrix, AllocatorKind, BudgetMode, Policy, Scenario};
use reap_units::Energy;

fn main() {
    println!("Ablation: budget allocation policies (alpha = 1, September month)");
    println!("==================================================================");

    let trace = HarvestTrace::september_like(reap_bench::BENCH_SEED);
    let points = reap_device::paper_table2_operating_points();

    let widths = [14usize, 12, 10, 12, 12, 11];
    println!(
        "\n{}",
        row(
            &[
                "allocator".into(),
                "mode".into(),
                "J total".into(),
                "accuracy".into(),
                "active (h)".into(),
                "brownouts".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    // All six (allocator, mode) scenarios execute in one parallel matrix.
    let mut labels = Vec::new();
    let mut scenarios = Vec::new();
    for allocator in [
        AllocatorKind::Ewma,
        AllocatorKind::Greedy,
        AllocatorKind::UniformDaily,
    ] {
        for mode in [BudgetMode::OpenLoop, BudgetMode::ClosedLoop] {
            labels.push((allocator, mode));
            scenarios.push(
                Scenario::builder(trace.clone())
                    .points(points.clone())
                    .allocator(allocator)
                    .budget_mode(mode)
                    .build()
                    .expect("valid scenario"),
            );
        }
    }
    let matrix = run_matrix(&scenarios, &[Policy::Reap]).expect("runs");
    for ((allocator, mode), reports) in labels.into_iter().zip(&matrix) {
        let report = &reports[0];
        println!(
            "{}",
            row(
                &[
                    format!("{allocator:?}"),
                    format!("{mode:?}"),
                    format!("{:.1}", report.total_objective(1.0)),
                    format!("{:.1}%", report.mean_accuracy() * 100.0),
                    format!("{:.1}", report.total_active_time().hours()),
                    format!("{}", report.brownout_hours()),
                ],
                &widths
            )
        );
    }

    // Perfect-forecast lookahead: the upper bound on what ANY allocation
    // policy could achieve with this trace and battery.
    let problem = reap_bench::standard_problem(points, 1.0);
    let battery = Battery::small_wearable();
    let forecast: Vec<Energy> = trace.iter().collect();
    let plan =
        plan_horizon(&problem, &forecast, battery.level(), battery.capacity()).expect("plannable");
    println!(
        "\nperfect-forecast lookahead upper bound: J = {:.1}, active {:.1} h, spilled {:.1} J",
        plan.total_objective(1.0),
        plan.total_active_time().hours(),
        plan.spills.iter().map(|s| s.joules()).sum::<f64>()
    );
    println!("\nreading: smoothing harder helps — uniform-daily > ewma > greedy, because");
    println!("REAP's objective is concave in the budget, so spreading energy across hours");
    println!("beats chasing the harvest; the lookahead bound shows the remaining headroom.");
}
