//! Planner perf baseline: per-solve timings for the three REAP solvers
//! and wall time for month-long simulations, written as machine-readable
//! JSON (`BENCH_planner.json`) so CI tracks the perf trajectory.
//!
//! ```text
//! cargo run --release -p reap-bench --bin bench_planner [-- <output.json>]
//! ```
//!
//! The committed `BENCH_planner.json` at the repo root is the baseline
//! recorded when the frontier planner landed; regenerate it with the
//! command above after any solver or sim-engine change.

use criterion::{measure, Measurement};
use reap_bench::{synthetic_problem, CharMode};
use reap_harvest::HarvestTrace;
use reap_sim::{run_matrix, Policy, Scenario};
use reap_units::Energy;
use std::hint::black_box;

struct SolverRow {
    n: usize,
    simplex: Measurement,
    closed_form: Measurement,
    frontier: Measurement,
    frontier_build: Measurement,
}

fn main() {
    // First non-flag argument is the output path (the shared bin flags
    // like `--quick` are ignored here: the measurement is already fast).
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_planner.json".to_string());
    let budget = Energy::from_joules(5.0);

    println!("planner perf baseline (release, {out_path})");
    println!("===========================================");

    let mut rows = Vec::new();
    for n in [5usize, 20, 100] {
        let problem = synthetic_problem(n);
        let frontier = problem.frontier();
        let row = SolverRow {
            n,
            simplex: measure(format!("simplex/{n}"), || {
                black_box(problem.solve(black_box(budget)).expect("solvable"))
            }),
            closed_form: measure(format!("closed_form/{n}"), || {
                black_box(
                    problem
                        .solve_closed_form(black_box(budget))
                        .expect("solvable"),
                )
            }),
            frontier: measure(format!("frontier/{n}"), || {
                black_box(frontier.solve(black_box(budget)).expect("solvable"))
            }),
            frontier_build: measure(format!("frontier_build/{n}"), || {
                black_box(problem.frontier())
            }),
        };
        println!(
            "N = {:>3}: simplex {:>9.1} ns  closed-form {:>9.1} ns  frontier {:>7.1} ns  (build {:>8.1} ns)",
            n, row.simplex.mean_ns, row.closed_form.mean_ns, row.frontier.mean_ns,
            row.frontier_build.mean_ns
        );
        rows.push(row);
    }

    let speedup_n5 = rows[0].simplex.mean_ns / rows[0].frontier.mean_ns.max(1e-9);
    println!("frontier speedup over simplex at N = 5: {speedup_n5:.0}x");

    // Month-long simulation wall time: one September trace, REAP alone
    // (sequential engine) and the full REAP + 5-statics policy matrix
    // (parallel executor, shared open-loop budgets).
    let scenario = Scenario::builder(HarvestTrace::september_like(reap_bench::BENCH_SEED))
        .points(reap_bench::operating_points(CharMode::Paper, true))
        .build()
        .expect("valid scenario");
    let hours = scenario.trace().len_hours();
    // Sub-millisecond runs are dominated by scheduler noise, and the CI
    // regression gate compares these numbers across machines — report
    // the min over several repetitions (the same best-case estimator the
    // criterion shim uses) at microsecond precision.
    const SIM_REPS: u32 = 20;
    let mut reap_run_ms = f64::INFINITY;
    let mut reap_report = None;
    for _ in 0..SIM_REPS {
        let start = std::time::Instant::now();
        reap_report = Some(scenario.run(Policy::Reap).expect("runs"));
        reap_run_ms = reap_run_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let reap_report = reap_report.expect("at least one rep");
    let policies: Vec<Policy> = std::iter::once(Policy::Reap)
        .chain((1u8..=5).map(Policy::Static))
        .collect();
    let mut matrix_ms = f64::INFINITY;
    for _ in 0..SIM_REPS {
        let start = std::time::Instant::now();
        let matrix = run_matrix(std::slice::from_ref(&scenario), &policies).expect("runs");
        matrix_ms = matrix_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(matrix[0][0], reap_report, "matrix must match sequential");
    }
    let n_policies = policies.len();
    println!(
        "month sim ({hours} h, min of {SIM_REPS}): REAP run {reap_run_ms:.3} ms, {n_policies}-policy matrix {matrix_ms:.3} ms"
    );

    let mut json = String::from(
        "{\n  \"schema\": \"reap-bench/planner-v1\",\n  \"budget_j\": 5.0,\n  \"solvers\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"simplex_ns\": {:.1}, \"closed_form_ns\": {:.1}, \"frontier_ns\": {:.1}, \"frontier_build_ns\": {:.1}}}{}\n",
            row.n,
            row.simplex.mean_ns,
            row.closed_form.mean_ns,
            row.frontier.mean_ns,
            row.frontier_build.mean_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"frontier_speedup_n5\": {speedup_n5:.1},\n  \"month_sim\": {{\"hours\": {hours}, \"reap_run_ms\": {reap_run_ms:.3}, \"matrix_policies\": {}, \"matrix_ms\": {matrix_ms:.3}}}\n}}\n",
        policies.len()
    ));
    std::fs::write(&out_path, json).expect("writable output path");
    println!("wrote {out_path}");
}
