//! Ablation: pooled 60/20/20 split (the paper's protocol) vs
//! leave-one-user-out cross-validation for the five Pareto design points.
//! Quantifies how much of the measured accuracy depends on having seen
//! the wearer during training.
//!
//! ```text
//! cargo run --release -p reap-bench --bin ablation_louo [-- --quick]
//! ```

use reap_bench::{bench_dataset, bench_train_config, has_quick_flag, row, rule};
use reap_har::{leave_one_user_out, pooled_accuracy, DpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);

    println!("Ablation: pooled split vs leave-one-user-out generalization");
    println!("============================================================");
    let dataset = bench_dataset(quick);
    let train_config = bench_train_config(quick);
    println!(
        "dataset: {} windows, {} users{}\n",
        dataset.len(),
        dataset.num_users(),
        if quick { " (quick mode)" } else { "" }
    );

    let widths = [4usize, 12, 12, 9, 22];
    println!(
        "{}",
        row(
            &[
                "DP".into(),
                "pooled".into(),
                "LOUO".into(),
                "gap".into(),
                "hardest unseen user".into(),
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    for (i, config) in DpConfig::paper_pareto_5().iter().enumerate() {
        let pooled = pooled_accuracy(&dataset, config, &train_config).expect("trains");
        let louo = leave_one_user_out(&dataset, config, &train_config).expect("trains");
        let worst = louo.worst_fold().expect("folds exist");
        println!(
            "{}",
            row(
                &[
                    format!("{}", i + 1),
                    format!("{:.1}%", pooled * 100.0),
                    format!("{:.1}%", louo.mean_accuracy() * 100.0),
                    format!("{:+.1}pp", (louo.mean_accuracy() - pooled) * 100.0),
                    format!("user {} @ {:.1}%", worst.user_id, worst.accuracy * 100.0),
                ],
                &widths
            )
        );
    }

    println!("\nreading: the pooled protocol (used by the paper) overstates accuracy on");
    println!("unseen wearers; the gap is the personalization headroom. REAP itself is");
    println!("agnostic — it consumes whichever accuracy estimate the deployment trusts.");
}
