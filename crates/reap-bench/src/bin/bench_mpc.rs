//! Receding-horizon (MPC) policy baseline: lookahead sweep and
//! forecast-error robustness across all four harvest sources, written as
//! machine-readable JSON (`BENCH_mpc.json`) so CI tracks both the policy
//! quality and the MPC simulation throughput.
//!
//! ```text
//! cargo run --release -p reap-bench --bin bench_mpc [-- <output.json>] [--quick]
//! ```
//!
//! Protocol: per source, a 14-day trace (seed [`reap_bench::BENCH_SEED`])
//! is simulated under `Policy::Horizon` with lookahead ∈ {1, 4, 12, 24}
//! against a ±20% noisy-oracle forecast, alongside three myopic
//! baselines — REAP open-loop, REAP closed-loop, and static DP1. A
//! robustness sweep re-runs lookahead 24 at forecast errors
//! {0%, 10%, 20%, 40%}. The committed `BENCH_mpc.json` at the repo root
//! is the recorded baseline; regenerate with the command above after any
//! engine, forecaster, or horizon-LP change (`--quick` shrinks the traces
//! for smoke runs; CI uses the full protocol).

use reap_bench::{has_quick_flag, CharMode};
use reap_harvest::SourceKind;
use reap_sim::{ForecasterKind, Policy, Scenario, SimReport};

/// Days per trace in the full protocol.
const DAYS: u32 = 14;
/// Forecast error of the headline MPC runs.
const REL_ERROR: f64 = 0.2;
/// Lookahead window lengths swept per source.
const LOOKAHEADS: [usize; 4] = [1, 4, 12, 24];
/// Forecast errors of the robustness sweep (at lookahead 24).
const ERRORS: [f64; 4] = [0.0, 0.1, 0.2, 0.4];

struct Run {
    label: String,
    mean_accuracy: f64,
    active_fraction: f64,
    objective: f64,
    brownout_hours: usize,
}

fn run_metrics(label: String, report: &SimReport, hours: f64) -> Run {
    Run {
        label,
        mean_accuracy: report.mean_accuracy(),
        active_fraction: report.total_active_time().hours() / hours,
        objective: report.total_objective(1.0),
        brownout_hours: report.brownout_hours(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_quick_flag(&args);
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_mpc.json".to_string());
    let days = if quick { 3 } else { DAYS };
    let hours = f64::from(days) * 24.0;
    let points = reap_bench::operating_points(CharMode::Paper, true);

    println!(
        "MPC baseline: lookahead {LOOKAHEADS:?} at ±{:.0}% forecast error, {days} days per \
         source ({out_path})",
        REL_ERROR * 100.0
    );
    println!("=====================================================================");

    let start = std::time::Instant::now();
    let mut mpc_hours = 0usize;
    let mut source_jsons = Vec::new();
    for kind in SourceKind::ALL {
        let trace = kind
            .instantiate(reap_bench::BENCH_SEED)
            .generate(244, days)
            .expect("bundled sources generate");
        let noisy = ForecasterKind::Oracle {
            rel_error: REL_ERROR,
            seed: reap_bench::BENCH_SEED,
        };
        let build = |forecaster, budget_mode| {
            Scenario::builder(trace.clone())
                .points(points.clone())
                .forecaster(forecaster)
                .budget_mode(budget_mode)
                .build()
                .expect("valid scenario")
        };

        let mut runs = Vec::new();
        for lookahead in LOOKAHEADS {
            let report = build(noisy, reap_sim::BudgetMode::OpenLoop)
                .run(Policy::Horizon { lookahead })
                .expect("mpc runs");
            mpc_hours += report.hours().len();
            runs.push(run_metrics(format!("MPC{lookahead}"), &report, hours));
        }
        let open = build(noisy, reap_sim::BudgetMode::OpenLoop)
            .run(Policy::Reap)
            .expect("reap runs");
        runs.push(run_metrics("REAP-open".into(), &open, hours));
        let closed = build(noisy, reap_sim::BudgetMode::ClosedLoop)
            .run(Policy::Reap)
            .expect("reap runs");
        runs.push(run_metrics("REAP-closed".into(), &closed, hours));
        let dp1 = build(noisy, reap_sim::BudgetMode::OpenLoop)
            .run(Policy::Static(1))
            .expect("static runs");
        runs.push(run_metrics("DP1".into(), &dp1, hours));

        let mut robustness = Vec::new();
        for rel_error in ERRORS {
            let report = build(
                ForecasterKind::Oracle {
                    rel_error,
                    seed: reap_bench::BENCH_SEED,
                },
                reap_sim::BudgetMode::OpenLoop,
            )
            .run(Policy::Horizon { lookahead: 24 })
            .expect("mpc runs");
            mpc_hours += report.hours().len();
            robustness.push((rel_error, run_metrics(String::new(), &report, hours)));
        }

        println!("{}:", kind.label());
        for r in &runs {
            println!(
                "  {:>11}: accuracy {:.3}, active {:.3}, J = {:>7.1}, {} brownouts",
                r.label, r.mean_accuracy, r.active_fraction, r.objective, r.brownout_hours
            );
        }
        let rob = robustness
            .iter()
            .map(|(e, r)| format!("{:.0}%→{:.3}", e * 100.0, r.mean_accuracy))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  MPC24 accuracy vs forecast error: {rob}");

        source_jsons.push(source_json(kind, &runs, &robustness));
    }

    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let hours_per_s = mpc_hours as f64 / (wall_ms / 1e3);
    println!(
        "wall time {wall_ms:.0} ms for {mpc_hours} MPC-simulated hours ({hours_per_s:.0} hours/s)"
    );

    let mut json = format!(
        "{{\n  \"schema\": \"reap-bench/mpc-v1\",\n  \"days\": {days},\n  \"rel_error\": \
         {REL_ERROR},\n  \"sources\": [\n"
    );
    json.push_str(&source_jsons.join(",\n"));
    json.push_str(&format!(
        "\n  ],\n  \"wall_ms\": {wall_ms:.0},\n  \"hours_per_s\": {hours_per_s:.0}\n}}\n"
    ));
    std::fs::write(&out_path, json).expect("writable output");
    println!("wrote {out_path}");
}

fn run_json(r: &Run) -> String {
    format!(
        "{{\"policy\": \"{}\", \"mean_accuracy\": {:.4}, \"active_fraction\": {:.4}, \
         \"objective\": {:.2}, \"brownout_hours\": {}}}",
        r.label, r.mean_accuracy, r.active_fraction, r.objective, r.brownout_hours
    )
}

fn source_json(kind: SourceKind, runs: &[Run], robustness: &[(f64, Run)]) -> String {
    let mut out = format!(
        "    {{\n      \"source\": \"{}\",\n      \"runs\": [\n",
        kind.label()
    );
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "        {}{}\n",
            run_json(r),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("      ],\n      \"mpc24_robustness\": [\n");
    for (i, (rel_error, r)) in robustness.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"rel_error\": {rel_error}, \"mean_accuracy\": {:.4}, \"objective\": \
             {:.2}}}{}\n",
            r.mean_accuracy,
            r.objective,
            if i + 1 < robustness.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }");
    out
}
