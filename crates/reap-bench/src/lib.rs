//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every evaluation artifact of the paper has a binary in `src/bin/`:
//!
//! | artifact | binary | what it prints |
//! |----------|--------|----------------|
//! | Table 2  | `table2` | per-DP accuracy, timing split, energies, power |
//! | Fig. 3   | `fig3` | energy/accuracy of all 24 DPs + Pareto front |
//! | Fig. 4   | `fig4` | DP1 hourly energy breakdown |
//! | Fig. 5   | `fig5` | expected accuracy + normalized active time sweep |
//! | Fig. 6   | `fig6` | normalized J(t) at alpha = 2 |
//! | Fig. 7   | `fig7` | month-long solar case study vs alpha |
//! | Sec. 4.2 | `offload` | BLE raw offload vs on-device result TX |
//! | headlines | `headlines` | the abstract's 46% / 66% claims |
//!
//! Binaries accept `--char paper` (default: published Table 2 numbers) or
//! `--char model` (device model + classifiers trained on the synthetic
//! user study), plus `--quick` to shrink training for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regression;

use reap_core::{OperatingPoint, ReapProblem};
use reap_device::{characterize, CharacterizedDp};
use reap_har::{train_classifier, DesignPoint, DpConfig, TrainConfig};

/// Which characterization backs the operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CharMode {
    /// The paper's published Table 2 rows, verbatim.
    #[default]
    Paper,
    /// The calibrated device model plus classifiers trained on the
    /// synthetic user study.
    Model,
}

/// Parses `--char {paper|model}` from CLI args (defaults to paper).
///
/// # Panics
///
/// Panics with a usage message on an unknown mode string.
#[must_use]
pub fn parse_char_mode(args: &[String]) -> CharMode {
    match args.iter().position(|a| a == "--char") {
        None => CharMode::default(),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("paper") => CharMode::Paper,
            Some("model") => CharMode::Model,
            other => panic!("--char expects 'paper' or 'model', got {other:?}"),
        },
    }
}

/// `true` when `--quick` was passed (smaller dataset, fewer epochs).
#[must_use]
pub fn has_quick_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
}

/// Deterministic seed shared by every binary so results are reproducible
/// run to run.
pub const BENCH_SEED: u64 = 2019;

/// The dataset used for model-mode accuracy measurement.
#[must_use]
pub fn bench_dataset(quick: bool) -> reap_data::Dataset {
    if quick {
        reap_data::Dataset::generate(6, 700, BENCH_SEED)
    } else {
        reap_data::Dataset::user_study(BENCH_SEED)
    }
}

/// The training configuration used for model-mode accuracy measurement.
#[must_use]
pub fn bench_train_config(quick: bool) -> TrainConfig {
    if quick {
        TrainConfig::fast(BENCH_SEED)
    } else {
        TrainConfig {
            seed: BENCH_SEED,
            ..TrainConfig::default()
        }
    }
}

/// Characterizes the five Pareto design points under a mode.
///
/// # Panics
///
/// Panics if model-mode training fails (cannot happen for the bundled
/// dataset generator).
#[must_use]
pub fn pareto_characterization(mode: CharMode, quick: bool) -> Vec<CharacterizedDp> {
    match mode {
        CharMode::Paper => reap_device::paper_table2(),
        CharMode::Model => {
            let dataset = bench_dataset(quick);
            let config = bench_train_config(quick);
            DpConfig::paper_pareto_5()
                .into_iter()
                .enumerate()
                .map(|(i, dp_config)| {
                    let trained = train_classifier(&dataset, &dp_config, &config)
                        .expect("training the bundled configs succeeds");
                    let point = DesignPoint::new(i as u8 + 1, dp_config, trained.test_accuracy)
                        .expect("accuracy is in [0,1]");
                    characterize(&point)
                })
                .collect()
        }
    }
}

/// The five Pareto operating points under a mode.
#[must_use]
pub fn operating_points(mode: CharMode, quick: bool) -> Vec<OperatingPoint> {
    pareto_characterization(mode, quick)
        .iter()
        .map(CharacterizedDp::operating_point)
        .collect()
}

/// Characterizes (accuracy via training + energy via the device model)
/// all 24 candidate design points — the data behind Fig. 3.
///
/// # Panics
///
/// Panics if training fails (cannot happen for the bundled generator).
#[must_use]
pub fn characterize_all_24(quick: bool) -> Vec<CharacterizedDp> {
    let dataset = bench_dataset(quick);
    let config = bench_train_config(quick);
    DpConfig::standard_24()
        .into_iter()
        .enumerate()
        .map(|(i, dp_config)| {
            let trained = train_classifier(&dataset, &dp_config, &config)
                .expect("training the bundled configs succeeds");
            let point = DesignPoint::new(i as u8 + 1, dp_config, trained.test_accuracy)
                .expect("accuracy is in [0,1]");
            characterize(&point)
        })
        .collect()
}

/// Builds the standard one-hour, 50 µW-off problem over `points`.
///
/// # Panics
///
/// Panics if `points` is invalid (the bundled sets never are).
#[must_use]
pub fn standard_problem(points: Vec<OperatingPoint>, alpha: f64) -> ReapProblem {
    ReapProblem::builder()
        .alpha(alpha)
        .points(points)
        .build()
        .expect("bundled operating points are valid")
}

/// The synthetic `n`-point solver-scaling workload shared by the
/// `simplex_scaling` bench, the `headlines` runtime section, and
/// `bench_planner`: accuracies `0.5 + 0.45*i/n`, powers
/// `1 + 2*i/n` mW, standard period and off power, `alpha = 1`.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds 255 (point ids are `u8`).
#[must_use]
pub fn synthetic_problem(n: usize) -> ReapProblem {
    let points: Vec<OperatingPoint> = (0..n)
        .map(|i| {
            let frac = i as f64 / n as f64;
            OperatingPoint::new(
                u8::try_from(i + 1).expect("at most 255 points"),
                format!("P{i}"),
                0.5 + 0.45 * frac,
                reap_units::Power::from_milliwatts(1.0 + 2.0 * frac),
            )
            .expect("valid point")
        })
        .collect();
    standard_problem(points, 1.0)
}

/// Formats one fixed-width table row.
#[must_use]
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a rule line matching `widths`.
#[must_use]
pub fn rule(widths: &[usize]) -> String {
    widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("--")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_mode_parsing() {
        let none: Vec<String> = vec![];
        assert_eq!(parse_char_mode(&none), CharMode::Paper);
        let paper = vec!["--char".to_string(), "paper".to_string()];
        assert_eq!(parse_char_mode(&paper), CharMode::Paper);
        let model = vec!["--char".to_string(), "model".to_string()];
        assert_eq!(parse_char_mode(&model), CharMode::Model);
    }

    #[test]
    #[should_panic(expected = "--char expects")]
    fn bad_char_mode_panics() {
        let bad = vec!["--char".to_string(), "nope".to_string()];
        let _ = parse_char_mode(&bad);
    }

    #[test]
    fn quick_flag() {
        assert!(has_quick_flag(&["--quick".to_string()]));
        assert!(!has_quick_flag(&[]));
    }

    #[test]
    fn paper_points_are_the_table2_five() {
        let pts = operating_points(CharMode::Paper, true);
        assert_eq!(pts.len(), 5);
        assert!((pts[0].accuracy() - 0.94).abs() < 1e-12);
        assert!((pts[4].power().milliwatts() - 1.20).abs() < 1e-12);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
        assert_eq!(rule(&[2, 3]), "-------");
    }
}
