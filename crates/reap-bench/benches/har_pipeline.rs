//! Criterion benches for the end-to-end HAR pipeline: feature extraction
//! per design point, NN inference, and a full plan-execute simulation
//! hour. These quantify the relative costs the paper's Fig. 2 knobs trade
//! against accuracy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reap_data::{Activity, ActivityWindow, Dataset, UserProfile};
use reap_har::{extract_features, train_classifier, DpConfig, TrainConfig};
use reap_sim::{Policy, Scenario};
use std::hint::black_box;

fn window() -> ActivityWindow {
    let profile = UserProfile::generate(0, 42);
    let mut rng = StdRng::seed_from_u64(7);
    ActivityWindow::synthesize(&profile, Activity::Walk, &mut rng)
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(50);
    let w = window();
    for (label, idx) in [("dp1_full", 0usize), ("dp3_half", 2), ("dp5_stretch", 4)] {
        let config = DpConfig::paper_pareto_5()[idx].clone();
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| black_box(extract_features(black_box(cfg), &w).expect("valid config")));
        });
    }
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    // Train once outside the measured loop; measure inference.
    let dataset = Dataset::generate(4, 350, 42);
    let dp1 = DpConfig::paper_pareto_5()[0].clone();
    let classifier =
        train_classifier(&dataset, &dp1, &TrainConfig::fast(1)).expect("training succeeds");
    let w = window();
    c.bench_function("classify_window_dp1", |b| {
        b.iter(|| black_box(classifier.classify(black_box(&w)).expect("classifies")));
    });
}

fn bench_simulated_day(c: &mut Criterion) {
    // One simulated day under REAP: 24 plan+execute steps.
    let scenario = Scenario::builder(reap_harvest::HarvestTrace::september_like(1))
        .points(reap_device::paper_table2_operating_points())
        .build()
        .expect("valid scenario");
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    group.bench_function("september_month_reap", |b| {
        b.iter(|| black_box(scenario.run(Policy::Reap).expect("runs")));
    });
    group.bench_function("september_month_static_dp1", |b| {
        b.iter(|| black_box(scenario.run(Policy::Static(1)).expect("runs")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_classification,
    bench_simulated_day
);
criterion_main!(benches);
