//! Criterion benches for the DSP kernels behind the design points' MCU
//! execution-time model: the 16-point stretch FFT, statistical features,
//! and the DWT. These are the building blocks Table 2's timing column is
//! made of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reap_dsp::{decimate, dwt, fft, stats};
use std::hint::black_box;

fn sample_window(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37).sin() + 0.25 * (i as f64 * 1.7).cos())
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(50);
    for n in [16usize, 64, 256] {
        let signal = sample_window(n);
        group.bench_with_input(BenchmarkId::new("magnitudes", n), &signal, |b, s| {
            b.iter(|| black_box(fft::fft_magnitudes(black_box(s)).expect("power of two")));
        });
    }
    group.finish();
}

fn bench_stretch_feature_path(c: &mut Criterion) {
    // The exact per-window stretch pipeline: 160 samples -> decimate to
    // 16 -> FFT magnitudes.
    let signal = sample_window(160);
    c.bench_function("stretch_fft16_pipeline", |b| {
        b.iter(|| {
            let d = decimate::decimate_to(black_box(&signal), 16).expect("160 >= 16");
            black_box(fft::fft_magnitudes(&d).expect("16 is a power of two"))
        });
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_summary");
    group.sample_size(50);
    for n in [60usize, 160] {
        let signal = sample_window(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| black_box(stats::Summary::of(black_box(s)).expect("non-empty")));
        });
    }
    group.finish();
}

fn bench_dwt(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwt");
    group.sample_size(50);
    let signal = sample_window(128);
    for wavelet in [dwt::Wavelet::Haar, dwt::Wavelet::Db4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{wavelet:?}")),
            &signal,
            |b, s| {
                b.iter(|| {
                    black_box(dwt::subband_energies(black_box(s), wavelet, 3).expect("128 is ok"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_stretch_feature_path,
    bench_stats,
    bench_dwt
);
criterion_main!(benches);
