//! Criterion bench for the Sec. 3.3 timing claim: the REAP solver takes
//! 1.5 ms at 5 design points and only 8 ms at 100 on the 47 MHz MCU —
//! i.e. runtime grows mildly with N. We verify that *shape* on the host
//! and compare the simplex against the closed-form solver (an ablation
//! this reproduction adds) and Bland's pivot rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reap_bench::synthetic_problem;
use reap_units::Energy;
use std::hint::black_box;

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_scaling");
    group.sample_size(30);
    let budget = Energy::from_joules(5.0);
    for n in [5usize, 10, 25, 50, 100] {
        let problem = synthetic_problem(n);
        group.bench_with_input(BenchmarkId::new("simplex", n), &problem, |b, p| {
            b.iter(|| black_box(p.solve(black_box(budget)).expect("solvable")));
        });
        group.bench_with_input(BenchmarkId::new("closed_form", n), &problem, |b, p| {
            b.iter(|| black_box(p.solve_closed_form(black_box(budget)).expect("solvable")));
        });
        // The cached-frontier path the runtime controller and sweeps use:
        // build once, then O(log K) per solve.
        let frontier = problem.frontier();
        group.bench_with_input(BenchmarkId::new("frontier", n), &frontier, |b, f| {
            b.iter(|| black_box(f.solve(black_box(budget)).expect("solvable")));
        });
        group.bench_with_input(BenchmarkId::new("frontier_build", n), &problem, |b, p| {
            b.iter(|| black_box(p.frontier()));
        });
    }
    group.finish();
}

fn bench_budget_regimes(c: &mut Criterion) {
    // Pivot counts differ by regime: energy-limited (single point),
    // mixed (two points), saturated (time-limited).
    let mut group = c.benchmark_group("simplex_budget_regimes");
    group.sample_size(30);
    let problem = synthetic_problem(5);
    for (label, joules) in [("starved", 0.5), ("mixed", 5.0), ("saturated", 12.0)] {
        group.bench_function(label, |b| {
            let budget = Energy::from_joules(joules);
            b.iter(|| black_box(problem.solve(black_box(budget)).expect("solvable")));
        });
    }
    group.finish();
}

fn bench_horizon_planning(c: &mut Criterion) {
    // The 24-hour lookahead LP (24 * (N+3) variables) from the
    // `reap-core` horizon planner: how much does joint planning cost
    // compared to 24 independent solves?
    use reap_core::plan_horizon;
    let mut group = c.benchmark_group("horizon_planning");
    group.sample_size(20);
    let problem = synthetic_problem(5);
    // A day/night forecast.
    let forecast: Vec<Energy> = (0..24)
        .map(|h| {
            if (7..19).contains(&h) {
                Energy::from_joules(6.0)
            } else {
                Energy::ZERO
            }
        })
        .collect();
    group.bench_function("joint_24h", |b| {
        b.iter(|| {
            black_box(
                plan_horizon(
                    &problem,
                    black_box(&forecast),
                    Energy::from_joules(30.0),
                    Energy::from_joules(60.0),
                )
                .expect("plannable"),
            )
        });
    });
    group.bench_function("myopic_24h", |b| {
        b.iter(|| {
            for &e in &forecast {
                let budget = e.max(problem.min_budget());
                black_box(problem.solve(black_box(budget)).expect("solvable"));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex_scaling,
    bench_budget_regimes,
    bench_horizon_planning
);
criterion_main!(benches);
