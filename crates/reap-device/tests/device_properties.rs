//! Property tests for the device model: physical monotonicity and
//! consistency laws that must hold for *every* design-point
//! configuration, not just the Table 2 five.

use proptest::prelude::*;
use reap_device::{characterize, energy, radio, timing};
use reap_har::{
    AccelAxes, AccelFeatures, DesignPoint, DpConfig, NnStructure, SensingPeriod, StretchFeatures,
};

fn arb_config() -> impl Strategy<Value = DpConfig> {
    let axes = prop_oneof![
        Just(AccelAxes::Xyz),
        Just(AccelAxes::Xy),
        Just(AccelAxes::X),
        Just(AccelAxes::Y),
        Just(AccelAxes::Off),
    ];
    let sensing = prop_oneof![
        Just(SensingPeriod::Full),
        Just(SensingPeriod::P75),
        Just(SensingPeriod::P50),
        Just(SensingPeriod::P40),
    ];
    let accel_features = prop_oneof![Just(AccelFeatures::Statistical), Just(AccelFeatures::Dwt),];
    let stretch = prop_oneof![
        Just(StretchFeatures::Fft16),
        Just(StretchFeatures::Statistical),
        Just(StretchFeatures::Off),
    ];
    let nn = prop_oneof![
        Just(NnStructure::Hidden12),
        Just(NnStructure::Hidden8),
        Just(NnStructure::Direct),
    ];
    (axes, sensing, accel_features, stretch, nn).prop_filter_map(
        "valid combination",
        |(axes, sensing, accel_features, stretch_features, nn)| {
            let accel_features = if axes == AccelAxes::Off {
                AccelFeatures::Off
            } else {
                accel_features
            };
            let config = DpConfig {
                axes,
                sensing,
                accel_features,
                stretch_features,
                nn,
            };
            config.validate().ok().map(|()| config)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn energies_and_times_are_physical(config in arb_config()) {
        let t = timing::total_exec_time(&config);
        prop_assert!(t.millis() > 0.0 && t.millis() < 20.0, "exec time {t}");
        let e = energy::activity_energy(&config);
        prop_assert!(
            e.millijoules() > 0.1 && e.millijoules() < 10.0,
            "activity energy {e}"
        );
        prop_assert!(energy::mcu_energy(&config).millijoules() > 0.0);
        prop_assert!(energy::sensor_energy(&config).millijoules() >= 0.0);
    }

    #[test]
    fn longer_sensing_never_costs_less(config in arb_config()) {
        prop_assume!(config.axes != AccelAxes::Off);
        let mut shorter = config.clone();
        shorter.sensing = SensingPeriod::P40;
        let mut longer = config.clone();
        longer.sensing = SensingPeriod::Full;
        prop_assert!(energy::sensor_energy(&longer) >= energy::sensor_energy(&shorter));
        prop_assert!(energy::mcu_energy(&longer) >= energy::mcu_energy(&shorter));
    }

    #[test]
    fn more_axes_never_cost_less(config in arb_config()) {
        prop_assume!(config.axes != AccelAxes::Off);
        let mut one = config.clone();
        one.axes = AccelAxes::Y;
        let mut three = config.clone();
        three.axes = AccelAxes::Xyz;
        prop_assert!(energy::sensor_energy(&three) > energy::sensor_energy(&one));
        prop_assert!(timing::accel_feature_time(&three) > timing::accel_feature_time(&one));
        prop_assert!(radio::raw_payload_bytes(&three) > radio::raw_payload_bytes(&one));
    }

    #[test]
    fn characterization_is_internally_consistent(config in arb_config(), acc in 0.3f64..1.0) {
        let point = DesignPoint::new(7, config, acc).expect("valid");
        let c = characterize(&point);
        // Total = MCU + sensor.
        prop_assert!(
            (c.total_energy().millijoules()
                - c.mcu_energy.millijoules()
                - c.sensor_energy.millijoules()).abs() < 1e-12
        );
        // Power * window = total energy.
        let window = reap_data::WINDOW_SECONDS;
        prop_assert!(
            (c.average_power.watts() * window - c.total_energy().joules()).abs() < 1e-12
        );
        // Times add up.
        let t = c.times;
        prop_assert!(
            (t.total().millis()
                - t.accel_features.millis()
                - t.stretch_features.millis()
                - t.nn.millis()).abs() < 1e-12
        );
        // The operating-point view preserves identity.
        let op = c.operating_point();
        prop_assert_eq!(op.id(), 7);
        prop_assert!((op.accuracy() - acc).abs() < 1e-12);
        prop_assert!((op.power().watts() - c.average_power.watts()).abs() < 1e-15);
    }

    #[test]
    fn offloading_always_loses(config in arb_config()) {
        let (raw, result) = radio::offload_comparison(&config);
        // Raw offload (which still pays for sensing) must beat the full
        // on-device pipeline plus result TX in no configuration.
        let local_total = energy::activity_energy(&config) + result;
        let offload_total = raw + energy::sensor_energy(&config);
        prop_assert!(
            offload_total > local_total,
            "{config}: offload {offload_total} <= local {local_total}"
        );
    }
}
