//! BLE radio energy model: result transmission vs. raw-data offloading.
//!
//! Sec. 4.2 of the paper evaluates sending raw sensor data to a host for
//! remote classification: 5.5 mJ per activity, versus 0.38 mJ for just the
//! recognized label — the observation that justifies on-device inference.

use reap_har::{DpConfig, StretchFeatures};
use reap_units::Energy;

use crate::constants::{
    BLE_OFFLOAD_OVERHEAD_MJ, BLE_PER_BYTE_MJ, BLE_RESULT_TX_MJ, BYTES_PER_SAMPLE,
};
use crate::timing;

/// Energy to transmit one recognized activity label over BLE.
#[must_use]
pub fn result_tx_energy() -> Energy {
    Energy::from_millijoules(BLE_RESULT_TX_MJ)
}

/// Raw payload bytes one window produces under `config` (16-bit samples
/// from every powered channel).
#[must_use]
pub fn raw_payload_bytes(config: &DpConfig) -> usize {
    let accel = timing::accel_samples_per_axis(config) * config.axes.count();
    let stretch = if config.stretch_features == StretchFeatures::Off {
        0
    } else {
        reap_data::WINDOW_SAMPLES
    };
    ((accel + stretch) as f64 * BYTES_PER_SAMPLE) as usize
}

/// Energy to offload one window's raw samples over BLE instead of
/// classifying on-device.
#[must_use]
pub fn raw_offload_energy(config: &DpConfig) -> Energy {
    Energy::from_millijoules(
        BLE_OFFLOAD_OVERHEAD_MJ + BLE_PER_BYTE_MJ * raw_payload_bytes(config) as f64,
    )
}

/// The offloading comparison of Sec. 4.2 for a configuration: `(raw
/// offload, on-device result TX)` energies. Offloading always loses for
/// any non-trivial sensor set.
#[must_use]
pub fn offload_comparison(config: &DpConfig) -> (Energy, Energy) {
    (raw_offload_energy(config), result_tx_energy())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_har::DpConfig;

    #[test]
    fn full_sensor_set_offload_costs_5_5_mj() {
        let dp1 = &DpConfig::paper_pareto_5()[0];
        assert_eq!(raw_payload_bytes(dp1), 1280);
        let (raw, result) = offload_comparison(dp1);
        assert!((raw.millijoules() - 5.5).abs() < 1e-9);
        assert!((result.millijoules() - 0.38).abs() < 1e-12);
    }

    #[test]
    fn offloading_always_loses_on_device_classification() {
        for config in DpConfig::standard_24() {
            let (raw, result) = offload_comparison(&config);
            assert!(
                raw > result,
                "{config}: raw {raw} should exceed result {result}"
            );
            // Offloading even exceeds the whole on-device pipeline energy.
            let on_device = crate::energy::activity_energy(&config) + result;
            assert!(
                raw + crate::energy::sensor_energy(&config) > on_device * 0.5,
                "{config}: sanity"
            );
        }
    }

    #[test]
    fn fewer_channels_shrink_the_payload() {
        let dps = DpConfig::paper_pareto_5();
        assert!(raw_payload_bytes(&dps[0]) > raw_payload_bytes(&dps[1]));
        assert!(raw_payload_bytes(&dps[1]) > raw_payload_bytes(&dps[4]));
        assert_eq!(raw_payload_bytes(&dps[4]), 320); // stretch only
    }
}
