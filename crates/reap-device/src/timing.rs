//! Execution-time model: how long each pipeline stage takes on the MCU.

use reap_har::{AccelFeatures, DpConfig, StretchFeatures};
use reap_units::TimeSpan;

use crate::constants::{
    DWT_FEATURE_BASE_MS, DWT_FEATURE_PER_SAMPLE_MS, NN_BASE_MS, NN_PER_MAC_MS,
    STAT_FEATURE_BASE_MS, STAT_FEATURE_PER_SAMPLE_MS, STRETCH_FFT_MS,
};

/// Samples the accelerometer delivers per axis for this configuration.
#[must_use]
pub fn accel_samples_per_axis(config: &DpConfig) -> usize {
    (reap_data::WINDOW_SAMPLES as f64 * config.sensing.fraction()).round() as usize
}

/// Total sensor samples the MCU handles per window (all accel axes plus
/// the stretch channel when its features are enabled).
#[must_use]
pub fn total_samples(config: &DpConfig) -> usize {
    let accel = accel_samples_per_axis(config) * config.axes.count();
    let stretch = if config.stretch_features == StretchFeatures::Off {
        0
    } else {
        reap_data::WINDOW_SAMPLES
    };
    accel + stretch
}

/// Time to compute the accelerometer features of one window.
#[must_use]
pub fn accel_feature_time(config: &DpConfig) -> TimeSpan {
    let samples = accel_samples_per_axis(config) as f64;
    let per_axis_ms = match config.accel_features {
        AccelFeatures::Statistical => STAT_FEATURE_BASE_MS + STAT_FEATURE_PER_SAMPLE_MS * samples,
        AccelFeatures::Dwt => {
            // The DWT runs on the largest power-of-two prefix.
            let pow2 = prev_power_of_two(samples as usize) as f64;
            DWT_FEATURE_BASE_MS + DWT_FEATURE_PER_SAMPLE_MS * pow2
        }
        AccelFeatures::Off => 0.0,
    };
    TimeSpan::from_millis(per_axis_ms * config.axes.count() as f64)
}

/// Time to compute the stretch features of one window.
#[must_use]
pub fn stretch_feature_time(config: &DpConfig) -> TimeSpan {
    let ms = match config.stretch_features {
        StretchFeatures::Fft16 => STRETCH_FFT_MS,
        StretchFeatures::Statistical => {
            STAT_FEATURE_BASE_MS + STAT_FEATURE_PER_SAMPLE_MS * reap_data::WINDOW_SAMPLES as f64
        }
        StretchFeatures::Off => 0.0,
    };
    TimeSpan::from_millis(ms)
}

/// Time for one neural-network inference.
#[must_use]
pub fn nn_time(config: &DpConfig) -> TimeSpan {
    let macs = config
        .nn
        .mac_count(config.feature_dim(), reap_data::Activity::COUNT);
    TimeSpan::from_millis(NN_BASE_MS + NN_PER_MAC_MS * macs as f64)
}

/// Total MCU execution time per activity window.
#[must_use]
pub fn total_exec_time(config: &DpConfig) -> TimeSpan {
    accel_feature_time(config) + stretch_feature_time(config) + nn_time(config)
}

fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_har::DpConfig;

    /// Table 2 "MCU exec. time distribution" (ms):
    /// (accel features, stretch features, NN, total).
    const TABLE2_TIMES: [(f64, f64, f64, f64); 5] = [
        (0.83, 3.83, 1.05, 5.71),
        (0.27, 3.83, 1.00, 5.10),
        (0.27, 3.83, 0.90, 5.00),
        (0.14, 3.83, 1.00, 4.97),
        (0.00, 3.83, 0.88, 4.71),
    ];

    fn rel_err(model: f64, paper: f64) -> f64 {
        if paper == 0.0 {
            model.abs()
        } else {
            (model - paper).abs() / paper
        }
    }

    #[test]
    fn model_reproduces_table2_totals_within_3_percent() {
        for (config, &(_, _, _, total)) in
            DpConfig::paper_pareto_5().iter().zip(TABLE2_TIMES.iter())
        {
            let t = total_exec_time(config).millis();
            assert!(
                rel_err(t, total) < 0.03,
                "{config}: model {t:.3} ms vs paper {total} ms"
            );
        }
    }

    #[test]
    fn model_reproduces_table2_components_within_tolerance() {
        for (config, &(accel, stretch, nn, _)) in
            DpConfig::paper_pareto_5().iter().zip(TABLE2_TIMES.iter())
        {
            assert!(
                rel_err(accel_feature_time(config).millis(), accel) < 0.30,
                "{config}: accel {} vs {accel}",
                accel_feature_time(config).millis()
            );
            assert!(
                rel_err(stretch_feature_time(config).millis(), stretch) < 0.01,
                "{config}: stretch"
            );
            assert!(
                rel_err(nn_time(config).millis(), nn) < 0.08,
                "{config}: nn {} vs {nn}",
                nn_time(config).millis()
            );
        }
    }

    #[test]
    fn sample_counts() {
        let dps = DpConfig::paper_pareto_5();
        assert_eq!(accel_samples_per_axis(&dps[0]), 160);
        assert_eq!(accel_samples_per_axis(&dps[2]), 80);
        assert_eq!(accel_samples_per_axis(&dps[3]), 60);
        assert_eq!(total_samples(&dps[0]), 3 * 160 + 160);
        assert_eq!(total_samples(&dps[4]), 160);
    }

    #[test]
    fn more_axes_or_longer_sensing_never_runs_faster() {
        let dps = DpConfig::paper_pareto_5();
        // DP1 (3 axes, full window) vs DP2 (1 axis, full window).
        assert!(accel_feature_time(&dps[0]) > accel_feature_time(&dps[1]));
        // DP2 (full window) vs DP4 (40%).
        assert!(accel_feature_time(&dps[1]) > accel_feature_time(&dps[3]));
    }

    #[test]
    fn dwt_costs_more_than_stats() {
        let mut stats = DpConfig::paper_pareto_5()[0].clone();
        let mut dwt = stats.clone();
        stats.accel_features = reap_har::AccelFeatures::Statistical;
        dwt.accel_features = reap_har::AccelFeatures::Dwt;
        assert!(accel_feature_time(&dwt) > accel_feature_time(&stats));
    }

    #[test]
    fn every_standard_config_has_positive_time() {
        for config in DpConfig::standard_24() {
            let t = total_exec_time(&config);
            assert!(t.millis() > 0.5, "{config}: {t}");
            assert!(t.millis() < 10.0, "{config}: {t}");
        }
    }
}
