//! Calibrated model constants.
//!
//! Every constant in this module was fitted against the five Pareto
//! design-point rows of the paper's Table 2 (see `DESIGN.md` for the
//! fitting procedure and residuals). They are *effective* quantities — the
//! paper's measurements fold peripheral rails, interrupt handling, and the
//! radio core into its "MCU energy" column, so the effective compute power
//! here is far above a bare Cortex-M3's datasheet number. That is
//! intentional: the model must reproduce the measurements, not the
//! datasheet.

use reap_units::{Power, TimeSpan};

/// MCU clock frequency (the paper runs the CC2650 at 47 MHz).
pub const MCU_CLOCK_MHZ: f64 = 47.0;

/// Off-state power of the harvesting and battery-charging circuitry:
/// 0.18 J per hour = 50 µW (Sec. 5.2).
#[must_use]
pub fn off_power() -> Power {
    Power::from_microwatts(50.0)
}

/// Activity window length (1.6 s).
#[must_use]
pub fn window() -> TimeSpan {
    TimeSpan::from_seconds(reap_data::WINDOW_SECONDS)
}

/// Activity windows per one-hour activity period (2250).
#[must_use]
pub fn windows_per_hour() -> f64 {
    3600.0 / reap_data::WINDOW_SECONDS
}

// ---------------------------------------------------------------------
// Execution-time model (milliseconds), fitted to Table 2's "MCU exec.
// time distribution" columns.
// ---------------------------------------------------------------------

/// Fixed cost of statistical features, per axis (ms).
pub const STAT_FEATURE_BASE_MS: f64 = 0.062;

/// Per-sample cost of statistical features (ms/sample).
pub const STAT_FEATURE_PER_SAMPLE_MS: f64 = 0.0013;

/// Fixed cost of the 16-point stretch FFT feature (ms). Constant across
/// all five Table 2 rows (3.83 ms): decimation of 160 samples plus the
/// FFT and magnitudes in software floating point.
pub const STRETCH_FFT_MS: f64 = 3.83;

/// Fixed cost of DWT features, per axis (ms).
pub const DWT_FEATURE_BASE_MS: f64 = 0.10;

/// Per-sample cost of DWT features (ms/sample).
pub const DWT_FEATURE_PER_SAMPLE_MS: f64 = 0.004;

/// Fixed cost of one NN inference (ms): activation functions and softmax
/// in software floating point dominate the tiny matrix products.
pub const NN_BASE_MS: f64 = 0.80;

/// Per-multiply-accumulate cost of one NN inference (ms/MAC).
pub const NN_PER_MAC_MS: f64 = 0.0006;

// ---------------------------------------------------------------------
// MCU energy model, fitted to Table 2's "MCU energy" column.
// ---------------------------------------------------------------------

/// Effective MCU power while executing the pipeline (mW). Includes the
/// peripheral and radio rails the paper's measurement captured.
pub const MCU_COMPUTE_MW: f64 = 380.0;

/// Per-sample energy of sampling interrupt handling (mJ/sample).
pub const MCU_SAMPLE_HANDLING_MJ: f64 = 0.000_376;

// ---------------------------------------------------------------------
// Sensor energy model, fitted to Table 2's "Sensor energy" column.
// ---------------------------------------------------------------------

/// Base power of the powered accelerometer (mW), independent of the
/// number of enabled axes.
pub const ACCEL_BASE_MW: f64 = 0.634;

/// Additional power per enabled accelerometer axis (mW).
pub const ACCEL_PER_AXIS_MW: f64 = 0.209;

/// Power of the passive stretch sensor's ADC chain (mW): 0.08 mJ per
/// 1.6 s window.
pub const STRETCH_MW: f64 = 0.05;

// ---------------------------------------------------------------------
// Radio model (Sec. 4.2's offloading comparison).
// ---------------------------------------------------------------------

/// BLE energy for transmitting one recognized activity (mJ).
pub const BLE_RESULT_TX_MJ: f64 = 0.38;

/// BLE connection-event overhead for a raw-data offload burst (mJ):
/// radio wakeup, advertising/connection events, and protocol headers for
/// a multi-packet burst.
pub const BLE_OFFLOAD_OVERHEAD_MJ: f64 = 1.50;

/// BLE energy per raw payload byte (mJ/byte), calibrated so a full
/// 4-channel window (1280 bytes) costs the paper's 5.5 mJ.
pub const BLE_PER_BYTE_MJ: f64 = (5.5 - BLE_OFFLOAD_OVERHEAD_MJ) / 1280.0;

/// Bytes per raw sensor sample (16-bit ADC words).
pub const BYTES_PER_SAMPLE: f64 = 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_state_floor_is_0_18_joules_per_hour() {
        let hourly = off_power() * TimeSpan::from_hours(1.0);
        assert!((hourly.joules() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn window_counts() {
        assert!((window().seconds() - 1.6).abs() < 1e-12);
        assert!((windows_per_hour() - 2250.0).abs() < 1e-9);
    }

    #[test]
    fn ble_per_byte_reproduces_5_5_mj_offload() {
        let full_bytes = 4.0 * 160.0 * BYTES_PER_SAMPLE;
        let total = BLE_OFFLOAD_OVERHEAD_MJ + BLE_PER_BYTE_MJ * full_bytes;
        assert!((total - 5.5).abs() < 1e-12);
    }
}
