//! Device energy and timing model for the REAP prototype.
//!
//! The paper measures execution time and power on a custom TI-Sensortag
//! prototype (CC2650 MCU @ 47 MHz, Invensense MPU-9250 accelerometer,
//! passive stretch sensor, BLE radio) through test pads. This crate
//! replaces that hardware with a **component energy/timing model whose
//! constants are calibrated against the paper's Table 2**:
//!
//! * feature/classifier execution times scale with sample counts and
//!   neural-network multiply-accumulates ([`timing`]);
//! * MCU energy scales with execution time plus per-sample handling
//!   overhead; sensor energy with powered axes and sensing period
//!   ([`energy`]);
//! * BLE costs for transmitting a recognized activity vs. offloading raw
//!   samples ([`radio`]).
//!
//! [`characterize`] turns any of the 24 design-point configurations into a
//! `(times, energies, power)` characterization; the five Table 2 rows are
//! reproduced within a few percent (see the calibration tests). For exact
//! figure reproduction, [`paper_table2`] ships the published numbers
//! verbatim.
//!
//! # Examples
//!
//! ```
//! use reap_device::{characterize, paper_table2};
//! use reap_har::DesignPoint;
//!
//! // Model-based characterization of DP5 (stretch only).
//! let dp5 = DesignPoint::paper_five().remove(4);
//! let c = characterize(&dp5);
//! assert!((c.total_energy().millijoules() - 1.93).abs() < 0.15);
//!
//! // Or the published Table 2 row, exact.
//! let t2 = paper_table2();
//! assert!((t2[4].total_energy().millijoules() - 1.93).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod energy;
pub mod radio;
pub mod timing;

mod breakdown;
mod characterize;

pub use breakdown::{hourly_breakdown, EnergyBreakdown};
pub use characterize::{
    characterize, characterize_all, paper_table2, paper_table2_operating_points, CharacterizedDp,
    ExecTimes,
};
