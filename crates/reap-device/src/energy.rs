//! Energy model: MCU and sensor energy per activity window.

use reap_har::{DpConfig, StretchFeatures};
use reap_units::Energy;

use crate::constants::{
    ACCEL_BASE_MW, ACCEL_PER_AXIS_MW, MCU_COMPUTE_MW, MCU_SAMPLE_HANDLING_MJ, STRETCH_MW,
};
use crate::timing;

/// MCU energy per activity window: compute power over the execution time
/// plus per-sample interrupt-handling overhead.
#[must_use]
pub fn mcu_energy(config: &DpConfig) -> Energy {
    let exec_ms = timing::total_exec_time(config).millis();
    let compute = MCU_COMPUTE_MW * exec_ms / 1000.0; // mW * ms / 1000 = mJ
    let handling = MCU_SAMPLE_HANDLING_MJ * timing::total_samples(config) as f64;
    Energy::from_millijoules(compute + handling)
}

/// Sensor energy per activity window: accelerometer (base plus per-axis
/// power over the sensing period) and the stretch ADC chain (always the
/// full window when enabled).
#[must_use]
pub fn sensor_energy(config: &DpConfig) -> Energy {
    let accel = if config.axes.count() > 0 {
        let power_mw = ACCEL_BASE_MW + ACCEL_PER_AXIS_MW * config.axes.count() as f64;
        power_mw * config.sensing.seconds()
    } else {
        0.0
    };
    let stretch = if config.stretch_features == StretchFeatures::Off {
        0.0
    } else {
        STRETCH_MW * reap_data::WINDOW_SECONDS
    };
    Energy::from_millijoules(accel + stretch)
}

/// Total energy per activity window (MCU + sensors), the paper's "Energy
/// (mJ)" column.
#[must_use]
pub fn activity_energy(config: &DpConfig) -> Energy {
    mcu_energy(config) + sensor_energy(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_har::DpConfig;

    /// Table 2 energies (mJ): (MCU, sensor, total).
    const TABLE2_ENERGY: [(f64, f64, f64); 5] = [
        (2.38, 2.10, 4.48),
        (2.29, 1.43, 3.72),
        (2.10, 0.84, 2.94),
        (2.09, 0.57, 2.66),
        (1.85, 0.08, 1.93),
    ];

    fn rel_err(model: f64, paper: f64) -> f64 {
        (model - paper).abs() / paper.abs().max(1e-9)
    }

    #[test]
    fn mcu_energy_within_12_percent_of_table2() {
        for (config, &(mcu, _, _)) in DpConfig::paper_pareto_5().iter().zip(TABLE2_ENERGY.iter()) {
            let e = mcu_energy(config).millijoules();
            assert!(
                rel_err(e, mcu) < 0.12,
                "{config}: model {e:.3} mJ vs paper {mcu} mJ"
            );
        }
    }

    #[test]
    fn sensor_energy_within_12_percent_of_table2() {
        for (config, &(_, sensor, _)) in DpConfig::paper_pareto_5().iter().zip(TABLE2_ENERGY.iter())
        {
            let e = sensor_energy(config).millijoules();
            assert!(
                rel_err(e, sensor) < 0.12,
                "{config}: model {e:.3} mJ vs paper {sensor} mJ"
            );
        }
    }

    #[test]
    fn total_energy_within_8_percent_of_table2() {
        for (config, &(_, _, total)) in DpConfig::paper_pareto_5().iter().zip(TABLE2_ENERGY.iter())
        {
            let e = activity_energy(config).millijoules();
            assert!(
                rel_err(e, total) < 0.08,
                "{config}: model {e:.3} mJ vs paper {total} mJ"
            );
        }
    }

    #[test]
    fn energy_ordering_matches_table2() {
        let energies: Vec<f64> = DpConfig::paper_pareto_5()
            .iter()
            .map(|c| activity_energy(c).millijoules())
            .collect();
        for w in energies.windows(2) {
            assert!(w[0] > w[1], "DP ordering violated: {energies:?}");
        }
    }

    #[test]
    fn more_axes_cost_more_sensor_energy() {
        let dps = DpConfig::paper_pareto_5();
        assert!(sensor_energy(&dps[0]) > sensor_energy(&dps[1])); // 3 axes > 1
        assert!(sensor_energy(&dps[1]) > sensor_energy(&dps[4])); // accel > none
    }

    #[test]
    fn shorter_sensing_costs_less() {
        let mut full = DpConfig::paper_pareto_5()[1].clone();
        let mut short = full.clone();
        full.sensing = reap_har::SensingPeriod::Full;
        short.sensing = reap_har::SensingPeriod::P40;
        assert!(sensor_energy(&full) > sensor_energy(&short));
        assert!(mcu_energy(&full) > mcu_energy(&short)); // fewer samples handled
    }

    #[test]
    fn every_standard_config_is_within_physical_bounds() {
        for config in DpConfig::standard_24() {
            let e = activity_energy(&config).millijoules();
            assert!(e > 0.5 && e < 6.0, "{config}: {e} mJ per activity");
        }
    }
}
