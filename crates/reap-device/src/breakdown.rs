//! Hourly energy breakdown (the paper's Fig. 4).
//!
//! Fig. 4 shows where DP1's 9.9 J go over a one-hour activity period:
//! about 47% is sensor energy, the rest MCU compute split across feature
//! generation, classification, and sample handling.

use std::fmt;

use reap_har::{DesignPoint, StretchFeatures};
use reap_units::Energy;

use crate::constants::{
    windows_per_hour, ACCEL_BASE_MW, ACCEL_PER_AXIS_MW, MCU_COMPUTE_MW, MCU_SAMPLE_HANDLING_MJ,
    STRETCH_MW,
};
use crate::timing;

/// Energy consumed by each subsystem over one hour of continuous
/// operation at a design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Accelerometer sensing energy.
    pub accel_sensor: Energy,
    /// Stretch-sensor ADC energy.
    pub stretch_sensor: Energy,
    /// MCU energy spent on accelerometer features.
    pub mcu_accel_features: Energy,
    /// MCU energy spent on stretch features.
    pub mcu_stretch_features: Energy,
    /// MCU energy spent on NN inference.
    pub mcu_nn: Energy,
    /// MCU energy spent handling sampling interrupts.
    pub mcu_sampling: Energy,
}

impl EnergyBreakdown {
    /// Total hourly energy.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.accel_sensor
            + self.stretch_sensor
            + self.mcu_accel_features
            + self.mcu_stretch_features
            + self.mcu_nn
            + self.mcu_sampling
    }

    /// Sensor share of the total, in `[0, 1]` (the paper reports ~47% for
    /// DP1).
    #[must_use]
    pub fn sensor_fraction(&self) -> f64 {
        (self.accel_sensor + self.stretch_sensor) / self.total()
    }

    /// `(label, energy)` pairs for reporting, in display order.
    #[must_use]
    pub fn components(&self) -> [(&'static str, Energy); 6] {
        [
            ("accelerometer sensing", self.accel_sensor),
            ("stretch sensing", self.stretch_sensor),
            ("mcu accel features", self.mcu_accel_features),
            ("mcu stretch features", self.mcu_stretch_features),
            ("mcu nn inference", self.mcu_nn),
            ("mcu sample handling", self.mcu_sampling),
        ]
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (label, e) in self.components() {
            writeln!(
                f,
                "  {label:<24} {:>8.3} J  ({:>4.1}%)",
                e.joules(),
                e / total * 100.0
            )?;
        }
        write!(f, "  {:<24} {:>8.3} J", "total", total.joules())
    }
}

/// Computes the hourly energy breakdown of a design point running
/// continuously (one classification per 1.6 s window).
#[must_use]
pub fn hourly_breakdown(point: &DesignPoint) -> EnergyBreakdown {
    let config = &point.config;
    let n = windows_per_hour();
    let mj = Energy::from_millijoules;

    let accel_sensor = if config.axes.count() > 0 {
        let power_mw = ACCEL_BASE_MW + ACCEL_PER_AXIS_MW * config.axes.count() as f64;
        mj(power_mw * config.sensing.seconds() * n)
    } else {
        Energy::ZERO
    };
    let stretch_sensor = if config.stretch_features == StretchFeatures::Off {
        Energy::ZERO
    } else {
        mj(STRETCH_MW * reap_data::WINDOW_SECONDS * n)
    };
    let per_ms = MCU_COMPUTE_MW / 1000.0;
    EnergyBreakdown {
        accel_sensor,
        stretch_sensor,
        mcu_accel_features: mj(per_ms * timing::accel_feature_time(config).millis() * n),
        mcu_stretch_features: mj(per_ms * timing::stretch_feature_time(config).millis() * n),
        mcu_nn: mj(per_ms * timing::nn_time(config).millis() * n),
        mcu_sampling: mj(MCU_SAMPLE_HANDLING_MJ * timing::total_samples(config) as f64 * n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp1_breakdown_totals_about_9_9_joules() {
        let dp1 = &DesignPoint::paper_five()[0];
        let b = hourly_breakdown(dp1);
        let total = b.total().joules();
        assert!(
            (total - 9.9).abs() < 0.5,
            "DP1 hourly total {total} J, paper says 9.9 J"
        );
    }

    #[test]
    fn dp1_sensor_share_is_about_47_percent() {
        // Fig. 4: "about 47% of the energy consumption is due to the
        // sensors".
        let dp1 = &DesignPoint::paper_five()[0];
        let b = hourly_breakdown(dp1);
        let frac = b.sensor_fraction();
        assert!(
            (0.40..=0.55).contains(&frac),
            "sensor fraction {frac}, paper says ~0.47"
        );
    }

    #[test]
    fn breakdown_total_matches_characterization() {
        for point in DesignPoint::paper_five() {
            let b = hourly_breakdown(&point);
            let c = crate::characterize(&point);
            let per_window = c.total_energy().millijoules() * windows_per_hour();
            assert!(
                (b.total().millijoules() - per_window).abs() < 1.0,
                "DP{} breakdown disagrees with characterization",
                point.id
            );
        }
    }

    #[test]
    fn dp5_has_no_accel_component() {
        let dp5 = &DesignPoint::paper_five()[4];
        let b = hourly_breakdown(dp5);
        assert_eq!(b.accel_sensor, Energy::ZERO);
        assert_eq!(b.mcu_accel_features, Energy::ZERO);
        assert!(b.stretch_sensor.joules() > 0.0);
    }

    #[test]
    fn display_lists_components_and_total() {
        let b = hourly_breakdown(&DesignPoint::paper_five()[0]);
        let s = b.to_string();
        assert!(s.contains("accelerometer sensing"));
        assert!(s.contains("total"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7);
    }
}
