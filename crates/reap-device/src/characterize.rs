//! Full design-point characterization: the model-based equivalent of the
//! paper's Table 2.

use std::fmt;

use reap_core::OperatingPoint;
use reap_har::DesignPoint;
use reap_units::{Energy, Power, TimeSpan};

use crate::{energy, timing};

/// Per-stage MCU execution times of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecTimes {
    /// Accelerometer feature generation.
    pub accel_features: TimeSpan,
    /// Stretch feature generation.
    pub stretch_features: TimeSpan,
    /// Neural-network inference.
    pub nn: TimeSpan,
}

impl ExecTimes {
    /// Total execution time per activity window.
    #[must_use]
    pub fn total(&self) -> TimeSpan {
        self.accel_features + self.stretch_features + self.nn
    }
}

/// A design point with its complete energy/timing characterization — one
/// row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizedDp {
    /// The design point (configuration + accuracy).
    pub point: DesignPoint,
    /// MCU execution-time breakdown.
    pub times: ExecTimes,
    /// MCU energy per activity window.
    pub mcu_energy: Energy,
    /// Sensor energy per activity window.
    pub sensor_energy: Energy,
    /// Average power while this design point is active.
    pub average_power: Power,
}

impl CharacterizedDp {
    /// Total energy per activity window (MCU + sensors).
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.mcu_energy + self.sensor_energy
    }

    /// Converts to the optimizer's [`OperatingPoint`] view.
    ///
    /// # Panics
    ///
    /// Panics if the stored accuracy/power are invalid — impossible for
    /// values produced by [`characterize`] or [`paper_table2`].
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::new(
            self.point.id,
            format!("DP{}", self.point.id),
            self.point.accuracy,
            self.average_power,
        )
        .expect("characterized design points are valid operating points")
    }
}

impl fmt::Display for CharacterizedDp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DP{}: {:.0}% | exec {:.2} ms | mcu {:.2} mJ | sensor {:.2} mJ | {:.2} mJ total | {:.2} mW",
            self.point.id,
            self.point.accuracy * 100.0,
            self.times.total().millis(),
            self.mcu_energy.millijoules(),
            self.sensor_energy.millijoules(),
            self.total_energy().millijoules(),
            self.average_power.milliwatts(),
        )
    }
}

/// Characterizes one design point with the calibrated device model.
#[must_use]
pub fn characterize(point: &DesignPoint) -> CharacterizedDp {
    let config = &point.config;
    let times = ExecTimes {
        accel_features: timing::accel_feature_time(config),
        stretch_features: timing::stretch_feature_time(config),
        nn: timing::nn_time(config),
    };
    let mcu = energy::mcu_energy(config);
    let sensor = energy::sensor_energy(config);
    let window = crate::constants::window();
    CharacterizedDp {
        point: point.clone(),
        times,
        mcu_energy: mcu,
        sensor_energy: sensor,
        average_power: (mcu + sensor) / window,
    }
}

/// Characterizes a whole design-point set.
#[must_use]
pub fn characterize_all(points: &[DesignPoint]) -> Vec<CharacterizedDp> {
    points.iter().map(characterize).collect()
}

/// The five Pareto-optimal design points with the paper's **published**
/// Table 2 numbers, verbatim (times in ms, energies in mJ, power in mW).
///
/// Use this for exact figure reproduction; use [`characterize`] for the
/// model-based (endogenous) characterization.
#[must_use]
pub fn paper_table2() -> Vec<CharacterizedDp> {
    // (accel ms, stretch ms, nn ms, mcu mJ, sensor mJ, power mW)
    const ROWS: [(f64, f64, f64, f64, f64, f64); 5] = [
        (0.83, 3.83, 1.05, 2.38, 2.10, 2.76),
        (0.27, 3.83, 1.00, 2.29, 1.43, 2.30),
        (0.27, 3.83, 0.90, 2.10, 0.84, 1.82),
        (0.14, 3.83, 1.00, 2.09, 0.57, 1.64),
        (0.00, 3.83, 0.88, 1.85, 0.08, 1.20),
    ];
    DesignPoint::paper_five()
        .into_iter()
        .zip(ROWS)
        .map(
            |(point, (accel, stretch, nn, mcu, sensor, power))| CharacterizedDp {
                point,
                times: ExecTimes {
                    accel_features: TimeSpan::from_millis(accel),
                    stretch_features: TimeSpan::from_millis(stretch),
                    nn: TimeSpan::from_millis(nn),
                },
                mcu_energy: Energy::from_millijoules(mcu),
                sensor_energy: Energy::from_millijoules(sensor),
                average_power: Power::from_milliwatts(power),
            },
        )
        .collect()
}

/// The paper's five design points as ready-to-optimize
/// [`OperatingPoint`]s (published accuracies and powers).
#[must_use]
pub fn paper_table2_operating_points() -> Vec<OperatingPoint> {
    paper_table2()
        .iter()
        .map(CharacterizedDp::operating_point)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_is_verbatim() {
        let rows = paper_table2();
        assert_eq!(rows.len(), 5);
        assert!((rows[0].total_energy().millijoules() - 4.48).abs() < 1e-12);
        assert!((rows[0].average_power.milliwatts() - 2.76).abs() < 1e-12);
        assert!((rows[4].total_energy().millijoules() - 1.93).abs() < 1e-12);
        assert!((rows[0].times.total().millis() - 5.71).abs() < 1e-12);
        assert!((rows[3].times.total().millis() - 4.97).abs() < 1e-12);
    }

    #[test]
    fn model_power_tracks_paper_power_within_8_percent() {
        let modeled = characterize_all(&DesignPoint::paper_five());
        let paper = paper_table2();
        for (m, p) in modeled.iter().zip(&paper) {
            let err = (m.average_power.milliwatts() - p.average_power.milliwatts()).abs()
                / p.average_power.milliwatts();
            assert!(
                err < 0.08,
                "DP{}: model {:.2} mW vs paper {:.2} mW",
                m.point.id,
                m.average_power.milliwatts(),
                p.average_power.milliwatts()
            );
        }
    }

    #[test]
    fn operating_points_preserve_identity() {
        let ops = paper_table2_operating_points();
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[0].id(), 1);
        assert!((ops[0].accuracy() - 0.94).abs() < 1e-12);
        assert!((ops[0].power().milliwatts() - 2.76).abs() < 1e-12);
        assert_eq!(ops[4].label(), "DP5");
    }

    #[test]
    fn dp1_hourly_energy_is_9_9_joules() {
        // Sec. 5.2: "9.9 J energy is sufficient to run DP1 throughout TP".
        let dp1 = &paper_table2()[0];
        let hourly = dp1.average_power * TimeSpan::from_hours(1.0);
        assert!((hourly.joules() - 9.936).abs() < 0.01);
    }

    #[test]
    fn display_shows_all_columns() {
        let row = &paper_table2()[0];
        let s = row.to_string();
        assert!(s.contains("DP1"));
        assert!(s.contains("94%"));
        assert!(s.contains("4.48"));
        assert!(s.contains("2.76"));
    }

    #[test]
    fn characterize_all_covers_the_24_point_set() {
        use reap_har::DpConfig;
        let points: Vec<DesignPoint> = DpConfig::standard_24()
            .into_iter()
            .enumerate()
            .map(|(i, c)| DesignPoint::new(i as u8 + 1, c, 0.5).unwrap())
            .collect();
        let chars = characterize_all(&points);
        assert_eq!(chars.len(), 24);
        for c in &chars {
            assert!(c.average_power.milliwatts() > 0.3);
            assert!(c.average_power.milliwatts() < 4.0);
        }
    }
}
