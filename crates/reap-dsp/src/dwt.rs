//! Discrete wavelet transforms (Haar and Daubechies-4).
//!
//! The highest-accuracy candidate design points in the REAP paper's Fig. 2
//! use a DWT of the accelerometer signal as a feature. The MCU-friendly
//! choice is a few levels of an orthogonal wavelet; we implement the Haar
//! and DB4 filter banks with periodic boundary handling.

use crate::DspError;

/// Wavelet family for [`dwt_forward`] / [`idwt_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wavelet {
    /// Haar (2-tap) wavelet: cheapest, what a Cortex-M class MCU would run.
    #[default]
    Haar,
    /// Daubechies-4 (4-tap) wavelet: smoother subbands, slightly costlier.
    Db4,
}

impl Wavelet {
    /// Low-pass analysis filter taps (orthonormal).
    #[must_use]
    pub fn low_pass(self) -> &'static [f64] {
        const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;
        // DB4 taps: (1±sqrt(3)) family normalized by 4*sqrt(2).
        const DB4: [f64; 4] = [
            0.482_962_913_144_690_2,
            0.836_516_303_737_469,
            0.224_143_868_041_857_36,
            -0.129_409_522_550_921_44,
        ];
        match self {
            Wavelet::Haar => {
                const HAAR: [f64; 2] = [SQRT2_INV, SQRT2_INV];
                &HAAR
            }
            Wavelet::Db4 => &DB4,
        }
    }

    /// Number of filter taps.
    #[must_use]
    pub fn taps(self) -> usize {
        self.low_pass().len()
    }
}

/// One analysis level: splits `signal` into `(approximation, detail)`
/// halves using the wavelet's quadrature-mirror filter pair with periodic
/// extension.
///
/// # Errors
///
/// * [`DspError::NotPowerOfTwo`] if the length is not a power of two.
/// * [`DspError::TooShort`] if the length is smaller than the filter.
pub fn dwt_level(signal: &[f64], wavelet: Wavelet) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    let n = signal.len();
    if !n.is_power_of_two() || n == 0 {
        return Err(DspError::NotPowerOfTwo { len: n });
    }
    let taps = wavelet.taps();
    if n < taps {
        return Err(DspError::TooShort { len: n, min: taps });
    }
    let low = wavelet.low_pass();
    let half = n / 2;
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    for i in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for (k, &h) in low.iter().enumerate() {
            let idx = (2 * i + k) % n;
            a += h * signal[idx];
            // High-pass taps: g[k] = (-1)^k * h[taps-1-k].
            let g = if k % 2 == 0 { 1.0 } else { -1.0 } * low[taps - 1 - k];
            d += g * signal[idx];
        }
        approx[i] = a;
        detail[i] = d;
    }
    Ok((approx, detail))
}

/// Multi-level DWT decomposition.
///
/// Returns `[detail_1, detail_2, ..., detail_L, approx_L]` — the detail
/// coefficients of each level (finest first) followed by the final
/// approximation. The concatenated coefficient count equals the input
/// length.
///
/// # Errors
///
/// Propagates [`dwt_level`] errors; additionally [`DspError::TooShort`] if
/// `levels` would shrink the signal below the filter length.
pub fn dwt_forward(
    signal: &[f64],
    wavelet: Wavelet,
    levels: usize,
) -> Result<Vec<Vec<f64>>, DspError> {
    let mut out = Vec::with_capacity(levels + 1);
    let mut current = signal.to_vec();
    for _ in 0..levels {
        let (approx, detail) = dwt_level(&current, wavelet)?;
        out.push(detail);
        current = approx;
    }
    out.push(current);
    Ok(out)
}

/// One synthesis level: reconstructs a signal from `(approximation,
/// detail)` halves. Inverse of [`dwt_level`].
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the halves are empty.
///
/// # Panics
///
/// Panics if the two halves have different lengths (caller bug).
pub fn idwt_level(approx: &[f64], detail: &[f64], wavelet: Wavelet) -> Result<Vec<f64>, DspError> {
    assert_eq!(
        approx.len(),
        detail.len(),
        "approximation and detail lengths differ"
    );
    let half = approx.len();
    if half == 0 {
        return Err(DspError::EmptyInput);
    }
    let n = half * 2;
    let low = wavelet.low_pass();
    let taps = wavelet.taps();
    let mut out = vec![0.0; n];
    for i in 0..half {
        for (k, &h) in low.iter().enumerate() {
            let idx = (2 * i + k) % n;
            let g = if k % 2 == 0 { 1.0 } else { -1.0 } * low[taps - 1 - k];
            out[idx] += h * approx[i] + g * detail[i];
        }
    }
    Ok(out)
}

/// Per-subband energies of a multi-level decomposition, normalized by the
/// subband length. This is the compact DWT feature vector used by the HAR
/// pipeline: `levels + 1` numbers summarizing how signal energy distributes
/// across scales.
///
/// # Errors
///
/// Propagates [`dwt_forward`] errors.
pub fn subband_energies(
    signal: &[f64],
    wavelet: Wavelet,
    levels: usize,
) -> Result<Vec<f64>, DspError> {
    let bands = dwt_forward(signal, wavelet, levels)?;
    Ok(bands
        .iter()
        .map(|band| band.iter().map(|c| c * c).sum::<f64>() / band.len() as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b}");
    }

    #[test]
    fn haar_level_of_constant_signal() {
        // A constant signal is pure approximation; details vanish.
        let x = vec![2.0; 8];
        let (a, d) = dwt_level(&x, Wavelet::Haar).unwrap();
        for v in &a {
            assert_close(*v, 2.0 * std::f64::consts::SQRT_2, 1e-12);
        }
        for v in &d {
            assert_close(*v, 0.0, 1e-12);
        }
    }

    #[test]
    fn db4_kills_constant_details_too() {
        let x = vec![1.5; 16];
        let (_, d) = dwt_level(&x, Wavelet::Db4).unwrap();
        for v in &d {
            assert_close(*v, 0.0, 1e-9);
        }
    }

    #[test]
    fn energy_is_preserved_by_one_level() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 13 + 5) % 9) as f64 - 4.0).collect();
        for w in [Wavelet::Haar, Wavelet::Db4] {
            let (a, d) = dwt_level(&x, w).unwrap();
            let e_in: f64 = x.iter().map(|v| v * v).sum();
            let e_out: f64 =
                a.iter().map(|v| v * v).sum::<f64>() + d.iter().map(|v| v * v).sum::<f64>();
            assert_close(e_in, e_out, 1e-9);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        for w in [Wavelet::Haar, Wavelet::Db4] {
            let (a, d) = dwt_level(&x, w).unwrap();
            let back = idwt_level(&a, &d, w).unwrap();
            for (orig, rec) in x.iter().zip(&back) {
                assert_close(*orig, *rec, 1e-9);
            }
        }
    }

    #[test]
    fn multi_level_structure() {
        let x = vec![1.0; 16];
        let bands = dwt_forward(&x, Wavelet::Haar, 3).unwrap();
        assert_eq!(bands.len(), 4); // 3 details + 1 approx
        assert_eq!(bands[0].len(), 8);
        assert_eq!(bands[1].len(), 4);
        assert_eq!(bands[2].len(), 2);
        assert_eq!(bands[3].len(), 2);
        let total: usize = bands.iter().map(Vec::len).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn subband_energy_separates_scales() {
        // A fast alternating signal puts its energy in the finest detail
        // band; a slow signal puts it in the approximation band.
        let fast: Vec<f64> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let e_fast = subband_energies(&fast, Wavelet::Haar, 2).unwrap();
        assert!(e_fast[0] > 10.0 * e_fast[2], "fast: {e_fast:?}");

        let slow = vec![1.0; 32];
        let e_slow = subband_energies(&slow, Wavelet::Haar, 2).unwrap();
        assert!(
            e_slow[2] > 10.0 * (e_slow[0] + e_slow[1]).max(1e-30),
            "slow: {e_slow:?}"
        );
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(
            dwt_level(&[1.0, 2.0, 3.0], Wavelet::Haar),
            Err(DspError::NotPowerOfTwo { len: 3 })
        );
        assert_eq!(
            dwt_level(&[1.0, 2.0], Wavelet::Db4),
            Err(DspError::TooShort { len: 2, min: 4 })
        );
        assert_eq!(
            idwt_level(&[], &[], Wavelet::Haar),
            Err(DspError::EmptyInput)
        );
    }

    #[test]
    fn too_many_levels_is_an_error() {
        // 8 samples can take at most 2 DB4 levels (8 -> 4 -> 2 < 4 taps).
        let x = vec![0.0; 8];
        assert!(dwt_forward(&x, Wavelet::Db4, 3).is_err());
        assert!(dwt_forward(&x, Wavelet::Db4, 2).is_ok());
    }
}
