//! Window functions and spectral-shape features.
//!
//! Rectangular windows leak badly when a gait tone falls between FFT bins;
//! a Hann window trades a little resolution for much lower sidelobes. The
//! spectral centroid/entropy summarize where a window's energy lives — the
//! kind of one-number features an MCU design point can afford.

use crate::fft;
use crate::DspError;

/// Multiplies `signal` by a Hann window in place.
pub fn hann_in_place(signal: &mut [f64]) {
    let n = signal.len();
    if n <= 1 {
        return;
    }
    for (i, x) in signal.iter_mut().enumerate() {
        let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64).cos();
        *x *= w;
    }
}

/// Returns a Hann-windowed copy of `signal`.
#[must_use]
pub fn hann(signal: &[f64]) -> Vec<f64> {
    let mut out = signal.to_vec();
    hann_in_place(&mut out);
    out
}

/// Spectral centroid of a real signal in *bin* units (0 = DC,
/// `n/2` = Nyquist), excluding the DC bin so constant offsets do not
/// dominate.
///
/// # Errors
///
/// Propagates FFT errors; additionally [`DspError::TooShort`] for signals
/// with fewer than 4 samples.
pub fn spectral_centroid(signal: &[f64]) -> Result<f64, DspError> {
    if signal.len() < 4 {
        return Err(DspError::TooShort {
            len: signal.len(),
            min: 4,
        });
    }
    let mags = fft::fft_magnitudes(signal)?;
    let mut num = 0.0;
    let mut den = 0.0;
    for (k, &m) in mags.iter().enumerate().skip(1) {
        num += k as f64 * m;
        den += m;
    }
    if den <= 0.0 {
        // A perfectly DC signal has no AC centroid; report the lowest bin.
        return Ok(1.0);
    }
    Ok(num / den)
}

/// Normalized spectral entropy in `[0, 1]` over the non-DC bins: 0 for a
/// pure tone, 1 for a flat (white) spectrum.
///
/// # Errors
///
/// Same conditions as [`spectral_centroid`].
pub fn spectral_entropy(signal: &[f64]) -> Result<f64, DspError> {
    if signal.len() < 4 {
        return Err(DspError::TooShort {
            len: signal.len(),
            min: 4,
        });
    }
    let mags = fft::fft_magnitudes(signal)?;
    let powers: Vec<f64> = mags.iter().skip(1).map(|m| m * m).collect();
    let total: f64 = powers.iter().sum();
    if total <= 0.0 {
        return Ok(0.0);
    }
    let mut entropy = 0.0;
    for p in &powers {
        let q = p / total;
        if q > 0.0 {
            entropy -= q * q.ln();
        }
    }
    Ok(entropy / (powers.len() as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = 2.0 * std::f64::consts::PI;

    #[test]
    fn hann_endpoints_are_zero_and_peak_is_centered() {
        let w = hann(&vec![1.0; 33]);
        assert!(w[0].abs() < 1e-12);
        assert!(w[32].abs() < 1e-12);
        assert!((w[16] - 1.0).abs() < 1e-12);
        // Symmetric.
        for i in 0..16 {
            assert!((w[i] - w[32 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hann_of_short_signals_is_identity() {
        let mut one = [2.0];
        hann_in_place(&mut one);
        assert_eq!(one, [2.0]);
    }

    #[test]
    fn hann_reduces_leakage_for_off_bin_tones() {
        // A tone at bin 4.5 leaks everywhere with a rectangular window;
        // Hann concentrates it.
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|i| (TAU * 4.5 * i as f64 / n as f64).sin())
            .collect();
        let rect = fft::fft_magnitudes(&signal).unwrap();
        let windowed = fft::fft_magnitudes(&hann(&signal)).unwrap();
        // Compare energy far from the tone (bins 12..) relative to peak.
        let far =
            |m: &[f64]| m[12..].iter().sum::<f64>() / m.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            far(&windowed) < 0.3 * far(&rect),
            "hann {} vs rect {}",
            far(&windowed),
            far(&rect)
        );
    }

    #[test]
    fn centroid_tracks_tone_position() {
        let n = 64;
        let low: Vec<f64> = (0..n)
            .map(|i| (TAU * 3.0 * i as f64 / n as f64).sin())
            .collect();
        let high: Vec<f64> = (0..n)
            .map(|i| (TAU * 20.0 * i as f64 / n as f64).sin())
            .collect();
        let cl = spectral_centroid(&low).unwrap();
        let ch = spectral_centroid(&high).unwrap();
        assert!((cl - 3.0).abs() < 0.5, "low centroid {cl}");
        assert!((ch - 20.0).abs() < 0.5, "high centroid {ch}");
    }

    #[test]
    fn entropy_separates_tone_from_noise() {
        let n = 128;
        let tone: Vec<f64> = (0..n)
            .map(|i| (TAU * 5.0 * i as f64 / n as f64).sin())
            .collect();
        // Deterministic pseudo-noise.
        let noise: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let et = spectral_entropy(&tone).unwrap();
        let en = spectral_entropy(&noise).unwrap();
        assert!(et < 0.2, "tone entropy {et}");
        assert!(en > 0.5, "noise entropy {en}");
        assert!((0.0..=1.0).contains(&et));
        assert!((0.0..=1.0).contains(&en));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(spectral_centroid(&[1.0, 2.0]).is_err());
        assert!(spectral_entropy(&[1.0, 2.0]).is_err());
        // Constant signal: centroid falls back to bin 1, entropy 0.
        let flat = vec![3.0; 16];
        assert_eq!(spectral_centroid(&flat).unwrap(), 1.0);
        assert_eq!(spectral_entropy(&flat).unwrap(), 0.0);
    }
}
