//! Decimation (sample-rate reduction) helpers.
//!
//! The stretch sensor is sampled at 100 Hz, giving 160 samples per 1.6 s
//! activity window, but the paper's design points feed a **16-point** FFT.
//! The MCU implementation averages blocks of 10 samples (a cheap anti-alias
//! low-pass) before the FFT; [`decimate_to`] reproduces that behaviour.

use crate::DspError;

/// Reduces `signal` to exactly `target_len` samples by averaging equal
/// blocks of consecutive samples.
///
/// When `signal.len()` is not a multiple of `target_len`, block boundaries
/// are distributed as evenly as possible (the first `len % target`
/// blocks get one extra sample).
///
/// # Errors
///
/// * [`DspError::EmptyInput`] if the signal is empty or `target_len == 0`.
/// * [`DspError::TooShort`] if `signal.len() < target_len`.
pub fn decimate_to(signal: &[f64], target_len: usize) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() || target_len == 0 {
        return Err(DspError::EmptyInput);
    }
    if signal.len() < target_len {
        return Err(DspError::TooShort {
            len: signal.len(),
            min: target_len,
        });
    }
    let n = signal.len();
    let base = n / target_len;
    let extra = n % target_len;
    let mut out = Vec::with_capacity(target_len);
    let mut start = 0;
    for block in 0..target_len {
        let len = base + usize::from(block < extra);
        let sum: f64 = signal[start..start + len].iter().sum();
        out.push(sum / len as f64);
        start += len;
    }
    debug_assert_eq!(start, n);
    Ok(out)
}

/// Averages consecutive pairs, halving the sample count.
///
/// # Errors
///
/// [`DspError::TooShort`] if the signal has fewer than 2 samples.
pub fn halve(signal: &[f64]) -> Result<Vec<f64>, DspError> {
    if signal.len() < 2 {
        return Err(DspError::TooShort {
            len: signal.len(),
            min: 2,
        });
    }
    Ok(signal
        .chunks(2)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_to_fft16_is_block_mean() {
        // 160 -> 16 with blocks of 10.
        let signal: Vec<f64> = (0..160).map(|i| (i / 10) as f64).collect();
        let out = decimate_to(&signal, 16).unwrap();
        assert_eq!(out.len(), 16);
        for (k, v) in out.iter().enumerate() {
            assert!((v - k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn uneven_lengths_distribute_blocks() {
        let signal: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let out = decimate_to(&signal, 3).unwrap();
        assert_eq!(out.len(), 3);
        // Blocks: [0,1,2,3], [4,5,6], [7,8,9].
        assert!((out[0] - 1.5).abs() < 1e-12);
        assert!((out[1] - 5.0).abs() < 1e-12);
        assert!((out[2] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn identity_when_lengths_match() {
        let signal = [1.0, 2.0, 3.0];
        assert_eq!(decimate_to(&signal, 3).unwrap(), signal.to_vec());
    }

    #[test]
    fn preserves_dc_level() {
        let signal = vec![0.7; 123];
        let out = decimate_to(&signal, 16).unwrap();
        for v in out {
            assert!((v - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(decimate_to(&[], 4), Err(DspError::EmptyInput));
        assert_eq!(decimate_to(&[1.0], 0), Err(DspError::EmptyInput));
        assert_eq!(
            decimate_to(&[1.0, 2.0], 4),
            Err(DspError::TooShort { len: 2, min: 4 })
        );
    }

    #[test]
    fn halving() {
        assert_eq!(halve(&[1.0, 3.0, 5.0, 7.0]).unwrap(), vec![2.0, 6.0]);
        // Odd tail becomes its own block.
        assert_eq!(halve(&[1.0, 3.0, 9.0]).unwrap(), vec![2.0, 9.0]);
        assert!(halve(&[1.0]).is_err());
    }
}
