//! Statistical signal features.
//!
//! The low-energy design points of the REAP paper replace spectral features
//! with "statistics of the acceleration" — mean, standard deviation, and
//! similar scalars that an MCU computes in a single pass. This module
//! provides those kernels plus a [`Summary`] convenience that computes all
//! of them at once (single pass where possible).

use crate::DspError;

/// Arithmetic mean.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn mean(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(x.iter().sum::<f64>() / x.len() as f64)
}

/// Population variance (divides by `n`), computed with Welford's
/// numerically stable one-pass update.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn variance(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut m = 0.0;
    let mut m2 = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let delta = v - m;
        m += delta / (i + 1) as f64;
        m2 += delta * (v - m);
    }
    Ok(m2 / x.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn std_dev(x: &[f64]) -> Result<f64, DspError> {
    variance(x).map(f64::sqrt)
}

/// Root-mean-square value.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn rms(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok((x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt())
}

/// Minimum value.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn min(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(x.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum value.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn max(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    Ok(x.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Peak-to-peak range (`max - min`).
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn range(x: &[f64]) -> Result<f64, DspError> {
    Ok(max(x)? - min(x)?)
}

/// Mean absolute deviation around the mean.
///
/// # Errors
///
/// [`DspError::EmptyInput`] if the slice is empty.
pub fn mean_abs_deviation(x: &[f64]) -> Result<f64, DspError> {
    let m = mean(x)?;
    Ok(x.iter().map(|v| (v - m).abs()).sum::<f64>() / x.len() as f64)
}

/// Number of crossings of the signal's mean.
///
/// A cheap proxy for dominant frequency: a periodic signal of `f` Hz
/// sampled for `T` seconds crosses its mean about `2 f T` times.
///
/// # Errors
///
/// [`DspError::TooShort`] if the slice has fewer than 2 samples.
pub fn mean_crossings(x: &[f64]) -> Result<usize, DspError> {
    if x.len() < 2 {
        return Err(DspError::TooShort {
            len: x.len(),
            min: 2,
        });
    }
    let m = mean(x)?;
    let mut count = 0;
    for w in x.windows(2) {
        if (w[0] - m) * (w[1] - m) < 0.0 {
            count += 1;
        }
    }
    Ok(count)
}

/// Normalized autocorrelation at a lag, `r(k) in [-1, 1]`.
///
/// # Errors
///
/// * [`DspError::TooShort`] if `lag >= x.len()`.
/// * [`DspError::EmptyInput`] if the slice is empty.
pub fn autocorrelation(x: &[f64], lag: usize) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if lag >= x.len() {
        return Err(DspError::TooShort {
            len: x.len(),
            min: lag + 1,
        });
    }
    let m = mean(x)?;
    let denom: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
    if denom == 0.0 {
        // A constant signal is perfectly self-similar at every lag.
        return Ok(1.0);
    }
    let num: f64 = x.windows(lag + 1).map(|w| (w[0] - m) * (w[lag] - m)).sum();
    Ok(num / denom)
}

/// A bundle of the statistical features used by the HAR design points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Root-mean-square value.
    pub rms: f64,
    /// Crossings of the mean (cadence proxy).
    pub mean_crossings: usize,
}

impl Summary {
    /// Computes all summary statistics of a window.
    ///
    /// # Errors
    ///
    /// [`DspError::TooShort`] if the window has fewer than 2 samples.
    pub fn of(x: &[f64]) -> Result<Summary, DspError> {
        if x.len() < 2 {
            return Err(DspError::TooShort {
                len: x.len(),
                min: 2,
            });
        }
        Ok(Summary {
            mean: mean(x)?,
            std_dev: std_dev(x)?,
            min: min(x)?,
            max: max(x)?,
            rms: rms(x)?,
            mean_crossings: mean_crossings(x)?,
        })
    }

    /// The summary as a fixed-order feature slice
    /// `[mean, std, min, max, rms, crossings]`.
    #[must_use]
    pub fn to_features(&self) -> [f64; 6] {
        [
            self.mean,
            self.std_dev,
            self.min,
            self.max,
            self.rms,
            self.mean_crossings as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert_eq!(mean(&[]), Err(DspError::EmptyInput));
        assert_eq!(variance(&[]), Err(DspError::EmptyInput));
        assert_eq!(rms(&[]), Err(DspError::EmptyInput));
        assert_eq!(min(&[]), Err(DspError::EmptyInput));
        assert_eq!(max(&[]), Err(DspError::EmptyInput));
        assert_eq!(autocorrelation(&[], 0), Err(DspError::EmptyInput));
    }

    #[test]
    fn mean_and_variance_of_known_data() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(mean(&x).unwrap(), 5.0);
        assert_close(variance(&x).unwrap(), 4.0);
        assert_close(std_dev(&x).unwrap(), 2.0);
    }

    #[test]
    fn welford_matches_two_pass_on_offset_data() {
        // Large offset stresses the naive formula; Welford must stay exact.
        let x: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 7) as f64).collect();
        let m = mean(&x).unwrap();
        let two_pass = x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64;
        assert!((variance(&x).unwrap() - two_pass).abs() < 1e-6);
    }

    #[test]
    fn minmax_range() {
        let x = [3.0, -1.0, 4.0, 1.0, 5.0];
        assert_close(min(&x).unwrap(), -1.0);
        assert_close(max(&x).unwrap(), 5.0);
        assert_close(range(&x).unwrap(), 6.0);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let x: Vec<f64> = (0..1000)
            .map(|i| 3.0 * (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        assert!((rms(&x).unwrap() - 3.0 / std::f64::consts::SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn mad_of_symmetric_data() {
        let x = [1.0, 3.0];
        assert_close(mean_abs_deviation(&x).unwrap(), 1.0);
    }

    #[test]
    fn crossings_count_cadence() {
        // 2 Hz sine sampled at 100 Hz for 1.6 s -> about 2*2*1.6 ≈ 6 crossings.
        let x: Vec<f64> = (0..160)
            .map(|i| (2.0 * std::f64::consts::PI * 2.0 * i as f64 / 100.0).sin())
            .collect();
        let c = mean_crossings(&x).unwrap();
        assert!((5..=7).contains(&c), "crossings = {c}");
    }

    #[test]
    fn autocorrelation_detects_period() {
        // Period-20 sine: r(20) ~ 1, r(10) ~ -1.
        let x: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 20.0).sin())
            .collect();
        assert!(autocorrelation(&x, 20).unwrap() > 0.85);
        assert!(autocorrelation(&x, 10).unwrap() < -0.85);
        assert_close(autocorrelation(&x, 0).unwrap(), 1.0);
    }

    #[test]
    fn autocorrelation_of_constant_is_one() {
        assert_close(autocorrelation(&[5.0; 10], 3).unwrap(), 1.0);
    }

    #[test]
    fn summary_bundles_features() {
        let x = [0.0, 2.0, 0.0, 2.0];
        let s = Summary::of(&x).unwrap();
        assert_close(s.mean, 1.0);
        assert_close(s.std_dev, 1.0);
        assert_close(s.min, 0.0);
        assert_close(s.max, 2.0);
        assert_eq!(s.mean_crossings, 3);
        let f = s.to_features();
        assert_eq!(f.len(), 6);
        assert_close(f[0], 1.0);
        assert_close(f[5], 3.0);
    }

    #[test]
    fn summary_rejects_single_sample() {
        assert!(Summary::of(&[1.0]).is_err());
    }
}
