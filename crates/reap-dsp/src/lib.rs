//! DSP kernels for wearable human-activity recognition.
//!
//! The REAP paper's design points compute three families of signal features
//! on the TI CC2650 MCU (Fig. 2 of the paper):
//!
//! * **statistical features** of accelerometer axes ([`stats`]),
//! * a **16-point FFT** of the stretch-sensor signal ([`fft`]),
//! * a **discrete wavelet transform** of the accelerometer ([`dwt`]).
//!
//! This crate implements those kernels from scratch (no external DSP
//! dependencies) together with the decimation helper used to map a
//! 160-sample activity window onto a 16-point FFT input.
//!
//! # Examples
//!
//! ```
//! use reap_dsp::fft::fft_magnitudes;
//!
//! // A pure tone in bin 2 of a 16-point window.
//! let signal: Vec<f64> = (0..16)
//!     .map(|n| (2.0 * std::f64::consts::PI * 2.0 * n as f64 / 16.0).cos())
//!     .collect();
//! let mags = fft_magnitudes(&signal).unwrap();
//! let peak = mags
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
//!     .unwrap()
//!     .0;
//! assert_eq!(peak, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decimate;
pub mod dwt;
pub mod fft;
pub mod goertzel;
pub mod stats;
pub mod window_fn;

mod error;

pub use error::DspError;
