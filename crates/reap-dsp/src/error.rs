//! Error type for DSP kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by the DSP kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The input length must be a power of two (FFT, DWT).
    NotPowerOfTwo {
        /// Offending input length.
        len: usize,
    },
    /// The input was empty but the kernel needs at least one sample.
    EmptyInput,
    /// The input was shorter than the kernel's minimum length.
    TooShort {
        /// Offending input length.
        len: usize,
        /// Minimum supported length.
        min: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::NotPowerOfTwo { len } => {
                write!(f, "input length {len} is not a power of two")
            }
            DspError::EmptyInput => write!(f, "input is empty"),
            DspError::TooShort { len, min } => {
                write!(f, "input length {len} is shorter than the minimum {min}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(DspError::NotPowerOfTwo { len: 3 }.to_string().contains('3'));
        assert!(DspError::EmptyInput.to_string().contains("empty"));
        assert!(DspError::TooShort { len: 2, min: 4 }
            .to_string()
            .contains('4'));
    }
}
