//! Goertzel single-bin DFT.
//!
//! When a design point only needs the energy at *one* frequency (e.g. the
//! wearer's gait cadence), running a full FFT wastes MCU cycles. The
//! Goertzel algorithm computes one DFT bin with a two-multiply recurrence —
//! the classic MCU trick, included here as the substrate for cheap
//! cadence-tracking design-point variants.

// Index-based loops below mirror the textbook linear-algebra notation;
// iterator rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::DspError;

/// Squared magnitude of DFT bin `k` of `signal` (same normalization as
/// [`crate::fft::fft_real`]: `|X[k]|^2`).
///
/// # Errors
///
/// * [`DspError::EmptyInput`] for an empty signal.
/// * [`DspError::TooShort`] when `k >= signal.len()` (no such bin).
pub fn goertzel_power(signal: &[f64], k: usize) -> Result<f64, DspError> {
    let n = signal.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if k >= n {
        return Err(DspError::TooShort { len: n, min: k + 1 });
    }
    let w = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    Ok(s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2)
}

/// Magnitude of DFT bin `k` (`|X[k]|`).
///
/// # Errors
///
/// Same conditions as [`goertzel_power`].
pub fn goertzel_magnitude(signal: &[f64], k: usize) -> Result<f64, DspError> {
    goertzel_power(signal, k).map(|p| p.max(0.0).sqrt())
}

/// The bin with the largest magnitude among `bins`, computed with one
/// Goertzel pass per bin — cheaper than a full FFT when `bins.len()` is
/// small.
///
/// # Errors
///
/// * [`DspError::EmptyInput`] when `bins` or `signal` is empty.
/// * [`DspError::TooShort`] when any bin index is out of range.
pub fn strongest_bin(signal: &[f64], bins: &[usize]) -> Result<usize, DspError> {
    if bins.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let mut best = (bins[0], f64::MIN);
    for &k in bins {
        let p = goertzel_power(signal, k)?;
        if p > best.1 {
            best = (k, p);
        }
    }
    Ok(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    const TAU: f64 = 2.0 * std::f64::consts::PI;

    #[test]
    fn matches_fft_magnitudes_exactly() {
        let signal: Vec<f64> = (0..64)
            .map(|i| {
                (TAU * 3.0 * i as f64 / 64.0).sin() + 0.5 * (TAU * 9.0 * i as f64 / 64.0).cos()
            })
            .collect();
        let spectrum = fft::fft_real(&signal).unwrap();
        for k in 0..32 {
            let g = goertzel_magnitude(&signal, k).unwrap();
            let f = spectrum[k].abs();
            // Goertzel's recurrence accumulates O(N) round-off, so compare
            // with a tolerance scaled to the signal energy.
            assert!((g - f).abs() < 1e-5, "bin {k}: goertzel {g} vs fft {f}");
        }
    }

    #[test]
    fn works_on_non_power_of_two_lengths() {
        // Goertzel has no power-of-two restriction — its raison d'etre on
        // a 160-sample window.
        let signal: Vec<f64> = (0..160)
            .map(|i| (TAU * 5.0 * i as f64 / 160.0).sin())
            .collect();
        let mag = goertzel_magnitude(&signal, 5).unwrap();
        assert!((mag - 80.0).abs() < 1e-8); // N/2 for a unit sine
        let off = goertzel_magnitude(&signal, 11).unwrap();
        assert!(off < 1e-8);
    }

    #[test]
    fn strongest_bin_finds_the_tone() {
        let signal: Vec<f64> = (0..160)
            .map(|i| (TAU * 4.0 * i as f64 / 160.0).sin())
            .collect();
        let bins: Vec<usize> = (1..10).collect();
        assert_eq!(strongest_bin(&signal, &bins).unwrap(), 4);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(goertzel_power(&[], 0), Err(DspError::EmptyInput));
        assert_eq!(
            goertzel_power(&[1.0, 2.0], 2),
            Err(DspError::TooShort { len: 2, min: 3 })
        );
        assert_eq!(strongest_bin(&[1.0], &[]), Err(DspError::EmptyInput));
    }

    #[test]
    fn dc_bin_equals_sum() {
        let signal = [1.5, 2.5, -1.0, 3.0];
        let mag = goertzel_magnitude(&signal, 0).unwrap();
        assert!((mag - 6.0).abs() < 1e-12);
    }
}
