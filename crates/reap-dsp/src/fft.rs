//! Radix-2 iterative fast Fourier transform.
//!
//! The stretch-sensor feature in every REAP design point is a 16-point FFT,
//! so this module provides a general power-of-two FFT plus convenience
//! helpers for real inputs and magnitude spectra.

use crate::DspError;

/// A complex number with `f64` parts.
///
/// Deliberately minimal: just what the FFT butterfly needs. Implements the
/// usual component-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from a real value.
    #[must_use]
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{i theta}` on the unit circle.
    #[must_use]
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (cheaper than [`Complex::abs`]).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// `inverse = false` computes the forward DFT
/// `X[k] = sum_n x[n] e^{-2 pi i k n / N}`; `inverse = true` computes the
/// inverse including the `1/N` normalization.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] unless `buf.len()` is a power of two,
/// and [`DspError::EmptyInput`] for an empty buffer.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) -> Result<(), DspError> {
    let n = buf.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !n.is_power_of_two() {
        return Err(DspError::NotPowerOfTwo { len: n });
    }
    if n == 1 {
        return Ok(());
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        let mut start = 0;
        while start < n {
            let mut w = Complex::from_real(1.0);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2] * w;
                buf[start + k] = a + b;
                buf[start + k + len / 2] = a - b;
                w = w * wlen;
            }
            start += len;
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for v in buf.iter_mut() {
            *v = *v * scale;
        }
    }
    Ok(())
}

/// Forward FFT of a real signal.
///
/// # Errors
///
/// Same conditions as [`fft_in_place`].
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    fft_in_place(&mut buf, false)?;
    Ok(buf)
}

/// Magnitude spectrum of a real signal: `|X[k]|` for the `N/2 + 1`
/// non-redundant bins (DC through Nyquist).
///
/// This is the feature vector the REAP design points compute from the
/// stretch sensor (a 16-point FFT yields 9 magnitudes).
///
/// # Errors
///
/// Same conditions as [`fft_in_place`].
pub fn fft_magnitudes(signal: &[f64]) -> Result<Vec<f64>, DspError> {
    let spectrum = fft_real(signal)?;
    let n = spectrum.len();
    Ok(spectrum[..=n / 2].iter().map(|c| c.abs()).collect())
}

/// Index of the dominant non-DC bin of a real signal's spectrum.
///
/// Useful for locating the cadence peak of gait signals.
///
/// # Errors
///
/// Same conditions as [`fft_in_place`], plus [`DspError::TooShort`] when the
/// signal has fewer than 4 samples (no non-DC bin to speak of).
pub fn dominant_bin(signal: &[f64]) -> Result<usize, DspError> {
    if signal.len() < 4 {
        return Err(DspError::TooShort {
            len: signal.len(),
            min: 4,
        });
    }
    let mags = fft_magnitudes(signal)?;
    let mut best = 1;
    for (k, &m) in mags.iter().enumerate().skip(1) {
        if m > mags[best] {
            best = k;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = 2.0 * std::f64::consts::PI;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut empty: Vec<Complex> = vec![];
        assert_eq!(fft_in_place(&mut empty, false), Err(DspError::EmptyInput));
        let mut three = vec![Complex::ZERO; 3];
        assert_eq!(
            fft_in_place(&mut three, false),
            Err(DspError::NotPowerOfTwo { len: 3 })
        );
    }

    #[test]
    fn single_sample_is_identity() {
        let mut one = vec![Complex::new(2.5, -1.0)];
        fft_in_place(&mut one, false).unwrap();
        assert_eq!(one[0], Complex::new(2.5, -1.0));
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = vec![3.0; 16];
        let spec = fft_real(&x).unwrap();
        assert_close(spec[0].re, 48.0, 1e-9);
        for c in &spec[1..] {
            assert_close(c.abs(), 0.0, 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![0.0; 8];
        x[0] = 1.0;
        let spec = fft_real(&x).unwrap();
        for c in &spec {
            assert_close(c.abs(), 1.0, 1e-12);
        }
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 16;
        let k = 3;
        let x: Vec<f64> = (0..n)
            .map(|i| (TAU * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let mags = fft_magnitudes(&x).unwrap();
        assert_eq!(mags.len(), 9);
        // sin tone of amplitude 1 -> |X[k]| = N/2.
        assert_close(mags[k], n as f64 / 2.0, 1e-9);
        for (i, &m) in mags.iter().enumerate() {
            if i != k {
                assert_close(m, 0.0, 1e-9);
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        fft_in_place(&mut buf, false).unwrap();
        fft_in_place(&mut buf, true).unwrap();
        for (orig, c) in x.iter().zip(&buf) {
            assert_close(c.re, *orig, 1e-9);
            assert_close(c.im, 0.0, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + 0.5)
            .collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = fft_real(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn linearity_of_the_transform() {
        let a: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let fa = fft_real(&a).unwrap();
        let fb = fft_real(&b).unwrap();
        let fsum = fft_real(&sum).unwrap();
        for k in 0..16 {
            let expect = fa[k] * 2.0 + fb[k] * 3.0;
            assert_close(fsum[k].re, expect.re, 1e-9);
            assert_close(fsum[k].im, expect.im, 1e-9);
        }
    }

    #[test]
    fn dominant_bin_finds_cadence() {
        // 2 Hz walking cadence sampled at 10 Hz over 1.6 s (16 samples):
        // bin = 2 Hz * 16 / 10 Hz = 3.2 -> nearest bin 3.
        let n = 16;
        let fs = 10.0;
        let x: Vec<f64> = (0..n).map(|i| (TAU * 2.0 * i as f64 / fs).sin()).collect();
        let bin = dominant_bin(&x).unwrap();
        assert_eq!(bin, 3);
    }

    #[test]
    fn dominant_bin_rejects_short_input() {
        assert_eq!(
            dominant_bin(&[1.0, 2.0]),
            Err(DspError::TooShort { len: 2, min: 4 })
        );
    }

    #[test]
    fn complex_helpers() {
        let c = Complex::new(3.0, 4.0);
        assert_close(c.abs(), 5.0, 1e-12);
        assert_close(c.norm_sqr(), 25.0, 1e-12);
        assert_eq!(c.conj(), Complex::new(3.0, -4.0));
        let u = Complex::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert_close(u.re, 0.0, 1e-12);
        assert_close(u.im, 1.0, 1e-12);
    }
}
