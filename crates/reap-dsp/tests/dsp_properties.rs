//! Property tests for the DSP kernels: transform identities that must
//! hold on arbitrary signals, not just the hand-picked unit-test cases.

#![allow(clippy::needless_range_loop)] // bin indices mirror DFT notation

use proptest::prelude::*;
use reap_dsp::fft::{fft_in_place, fft_real, Complex};
use reap_dsp::{decimate, dwt, goertzel, stats};

fn arb_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

fn arb_pow2_signal() -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64)]
        .prop_flat_map(|n| proptest::collection::vec(-100.0f64..100.0, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fft_roundtrip_recovers_signal(x in arb_pow2_signal()) {
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        fft_in_place(&mut buf, false).expect("power of two");
        fft_in_place(&mut buf, true).expect("power of two");
        for (orig, c) in x.iter().zip(&buf) {
            prop_assert!((c.re - orig).abs() < 1e-8 * (1.0 + orig.abs()));
            prop_assert!(c.im.abs() < 1e-8 * (1.0 + orig.abs()));
        }
    }

    #[test]
    fn parseval_holds(x in arb_pow2_signal()) {
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = fft_real(&x)
            .expect("power of two")
            .iter()
            .map(|c| c.norm_sqr())
            .sum::<f64>() / x.len() as f64;
        prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time));
    }

    #[test]
    fn goertzel_matches_fft_on_every_bin(x in arb_pow2_signal()) {
        let spectrum = fft_real(&x).expect("power of two");
        let energy: f64 = x.iter().map(|v| v.abs()).sum();
        for k in 0..x.len() / 2 {
            let g = goertzel::goertzel_magnitude(&x, k).expect("valid bin");
            prop_assert!(
                (g - spectrum[k].abs()).abs() < 1e-7 * (1.0 + energy),
                "bin {k}: {g} vs {}", spectrum[k].abs()
            );
        }
    }

    #[test]
    fn dwt_level_preserves_energy_and_inverts(x in arb_pow2_signal()) {
        for wavelet in [dwt::Wavelet::Haar, dwt::Wavelet::Db4] {
            let (a, d) = dwt::dwt_level(&x, wavelet).expect("power of two");
            let e_in: f64 = x.iter().map(|v| v * v).sum();
            let e_out: f64 = a.iter().chain(&d).map(|v| v * v).sum();
            prop_assert!((e_in - e_out).abs() < 1e-6 * (1.0 + e_in));
            let back = dwt::idwt_level(&a, &d, wavelet).expect("non-empty");
            for (orig, rec) in x.iter().zip(&back) {
                prop_assert!((orig - rec).abs() < 1e-7 * (1.0 + orig.abs()));
            }
        }
    }

    #[test]
    fn decimation_preserves_mean(x in arb_signal(160)) {
        let out = decimate::decimate_to(&x, 16).expect("160 >= 16");
        let mean_in: f64 = x.iter().sum::<f64>() / 160.0;
        let mean_out: f64 = out.iter().sum::<f64>() / 16.0;
        // Equal-size blocks (160/16 = 10) make block-mean averaging exact.
        prop_assert!((mean_in - mean_out).abs() < 1e-9 * (1.0 + mean_in.abs()));
    }

    #[test]
    fn summary_invariants(x in arb_signal(64)) {
        let s = stats::Summary::of(&x).expect("non-empty");
        prop_assert!(s.min <= s.mean + 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.rms >= 0.0);
        prop_assert!(s.rms + 1e-9 >= s.mean.abs());
        prop_assert!(s.mean_crossings < x.len());
        // Shifting the signal shifts mean/min/max but not std or crossings.
        let shifted: Vec<f64> = x.iter().map(|v| v + 37.0).collect();
        let t = stats::Summary::of(&shifted).expect("non-empty");
        prop_assert!((t.mean - s.mean - 37.0).abs() < 1e-9);
        prop_assert!((t.std_dev - s.std_dev).abs() < 1e-8);
        prop_assert_eq!(t.mean_crossings, s.mean_crossings);
    }

    #[test]
    fn autocorrelation_is_bounded(x in arb_signal(64), lag in 0usize..32) {
        let r = stats::autocorrelation(&x, lag).expect("lag < len");
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }

    #[test]
    fn subband_energy_scales_quadratically(x in arb_pow2_signal()) {
        let e1 = dwt::subband_energies(&x, dwt::Wavelet::Haar, 2);
        prop_assume!(e1.is_ok());
        let e1 = e1.expect("checked");
        let doubled: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let e2 = dwt::subband_energies(&doubled, dwt::Wavelet::Haar, 2).expect("same shape");
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert!((b - 4.0 * a).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }
}
