//! Property tests for the harvesting substrate: battery conservation
//! under arbitrary operation sequences, trace invariants across seeds and
//! seasons, source-trait contracts, and allocator sanity.

use proptest::prelude::*;
use reap_harvest::{
    Battery, BudgetAllocator, EwmaAllocator, GreedyAllocator, HarvestTrace, SolarModel, SolarPanel,
    SourceKind, UniformDailyAllocator, WeatherModel,
};
use reap_units::Energy;

#[derive(Debug, Clone)]
enum Op {
    Charge(f64),
    Discharge(f64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0.0f64..20.0).prop_map(Op::Charge),
            (0.0f64..20.0).prop_map(Op::Discharge),
        ],
        1..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn battery_never_leaves_bounds_and_conserves_energy(ops in arb_ops()) {
        let mut battery = Battery::new(
            Energy::from_joules(60.0),
            Energy::from_joules(30.0),
            0.9,
            0.9,
        ).expect("valid");
        for op in &ops {
            let before = battery.level().joules();
            match op {
                Op::Charge(j) => {
                    let spill = battery.charge(Energy::from_joules(*j));
                    let after = battery.level().joules();
                    // Stored energy never exceeds input (efficiency <= 1).
                    prop_assert!(after - before <= j * 0.9 + 1e-9);
                    prop_assert!(spill.joules() >= -1e-12);
                    prop_assert!(spill.joules() <= *j + 1e-9);
                }
                Op::Discharge(j) => {
                    let got = battery.discharge(Energy::from_joules(*j));
                    let after = battery.level().joules();
                    prop_assert!(got.joules() <= j + 1e-9);
                    // Drawn internal energy >= delivered (efficiency <= 1).
                    prop_assert!(before - after >= got.joules() - 1e-9);
                }
            }
            prop_assert!(battery.level().joules() >= -1e-9);
            prop_assert!(battery.level() <= battery.capacity());
            prop_assert!((0.0..=1.0).contains(&battery.state_of_charge()));
        }
    }

    #[test]
    fn traces_are_nonnegative_and_dark_at_night(seed in 0u64..500, start_day in 1u32..330) {
        let trace = HarvestTrace::generate(
            &SolarModel::golden_colorado(),
            &WeatherModel::new(seed),
            &SolarPanel::sp3_37_wearable(),
            start_day,
            5,
        ).expect("valid");
        for e in trace.iter() {
            prop_assert!(!e.is_negative());
            prop_assert!(e.joules() < 20.0, "implausible hourly harvest {e}");
        }
        for day in 0..trace.days() {
            // Solar midnight and 3am are always dark at mid-latitudes.
            prop_assert_eq!(trace.energy(day, 0), Energy::ZERO);
            prop_assert_eq!(trace.energy(day, 3), Energy::ZERO);
        }
    }

    #[test]
    fn summer_months_out_harvest_winter_months(seed in 0u64..100) {
        let gen = |start: u32| {
            HarvestTrace::generate(
                &SolarModel::golden_colorado(),
                &WeatherModel::new(seed),
                &SolarPanel::sp3_37_wearable(),
                start,
                10,
            ).expect("valid").total().joules()
        };
        let june = gen(160);
        let december = gen(340);
        // Same weather stream; the solar geometry alone must separate the
        // seasons.
        prop_assert!(june > december, "june {june} <= december {december}");
    }

    #[test]
    fn every_source_is_nonnegative_deterministic_and_pv_dark_at_night(
        seed in 0u64..300,
        start_day in 1u32..330,
    ) {
        for kind in SourceKind::ALL {
            let source = kind.instantiate(seed);
            let trace = source.generate(start_day, 4).expect("valid");
            // Non-negative, finite, plausible hourly energies everywhere.
            for e in trace.iter() {
                prop_assert!(!e.is_negative(), "{} went negative", source.name());
                prop_assert!(e.is_finite(), "{} not finite", source.name());
                prop_assert!(
                    e.joules() < 20.0,
                    "{} implausible hourly harvest {e}",
                    source.name()
                );
            }
            // Photovoltaic sources are exactly dark in the dead of night
            // (light off whatever the season, latitude, or schedule).
            if source.is_photovoltaic() {
                for day in 0..trace.days() {
                    for hour in [0u32, 1, 2, 3, 23] {
                        prop_assert_eq!(
                            trace.energy(day, hour),
                            Energy::ZERO,
                            "{} harvested at night (day {}, hour {})",
                            source.name(),
                            day,
                            hour
                        );
                    }
                }
            }
            // Same seed, same trace — bit-identical.
            let again = kind.instantiate(seed).generate(start_day, 4).expect("valid");
            prop_assert_eq!(&trace, &again, "{} not deterministic", source.name());
        }
    }

    #[test]
    fn allocators_never_go_negative_and_stay_bounded(
        harvests in proptest::collection::vec(0.0f64..12.0, 48),
    ) {
        let battery = Battery::small_wearable();
        let mut allocators: Vec<Box<dyn BudgetAllocator>> = vec![
            Box::new(GreedyAllocator),
            Box::new(EwmaAllocator::new()),
            Box::new(UniformDailyAllocator::new()),
        ];
        for allocator in &mut allocators {
            for (i, &h) in harvests.iter().enumerate() {
                let budget = allocator.allocate(
                    (i % 24) as u32,
                    Energy::from_joules(h),
                    &battery,
                );
                prop_assert!(!budget.is_negative(), "{} went negative", allocator.name());
                prop_assert!(
                    budget.joules() <= 12.0 + battery.capacity().joules(),
                    "{} budget {budget} is implausible",
                    allocator.name()
                );
            }
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless_enough(seed in 0u64..100) {
        let trace = HarvestTrace::september_like(seed);
        let back = HarvestTrace::from_csv(trace.start_day_of_year(), &trace.to_csv())
            .expect("parses");
        prop_assert_eq!(trace.len_hours(), back.len_hours());
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert!((a.joules() - b.joules()).abs() < 1e-5);
        }
    }
}
