//! Hourly energy-budget allocation policies.
//!
//! REAP assumes "Energy budget Eb ... is determined by energy allocation
//! techniques using the expected amount of harvested energy and battery
//! capacity" (Sec. 3.2, citing Kansal et al. and Bhat et al.). This module
//! provides three such policies with a common interface so the simulator
//! can ablate them.

use reap_units::Energy;

use crate::forecast::DiurnalEwma;
use crate::Battery;

/// A policy that decides each period's energy budget from the harvesting
/// history and battery state.
///
/// Called once per hour, *before* the period runs, with the energy
/// harvested during the previous hour and the battery as it stands.
pub trait BudgetAllocator {
    /// Budget for the upcoming hour.
    fn allocate(
        &mut self,
        hour_of_day: u32,
        harvested_last_hour: Energy,
        battery: &Battery,
    ) -> Energy;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Spend-as-you-go: budget = last hour's harvest plus a battery-level
/// correction toward a half-full target. Reactive and simple; serves as
/// the weakest baseline.
#[derive(Debug, Clone, Default)]
pub struct GreedyAllocator;

impl BudgetAllocator for GreedyAllocator {
    fn allocate(
        &mut self,
        _hour_of_day: u32,
        harvested_last_hour: Energy,
        battery: &Battery,
    ) -> Energy {
        let target = battery.capacity() * 0.5;
        let correction = (battery.level() - target) * 0.25;
        (harvested_last_hour + correction).max(Energy::ZERO)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Kansal-style EWMA allocator: keeps an exponentially weighted moving
/// average of the harvest *per hour-of-day slot* (capturing the diurnal
/// profile, via the shared [`DiurnalEwma`] estimator) and budgets that
/// expectation plus a battery correction.
///
/// Cold start is **lazy per slot**: the very first call carries no real
/// sample (there was no previous hour), so it is discarded, and each slot
/// is seeded by the first harvest actually observed for it. Slots not yet
/// observed budget the mean of the observed ones — so a device booted at
/// midnight ramps its expectations up through a sunny first day instead
/// of believing every hour is as dark as the boot placeholder.
#[derive(Debug, Clone)]
pub struct EwmaAllocator {
    /// Shared per-slot diurnal estimator (also used by
    /// [`EwmaForecaster`](crate::EwmaForecaster)).
    ewma: DiurnalEwma,
    /// Fraction of the battery's divergence from target spent per hour.
    battery_gain: f64,
    /// `false` until the first call: its `harvested_last_hour` describes
    /// an hour that never ran and must not seed any slot.
    first_call_done: bool,
}

impl EwmaAllocator {
    /// Creates an allocator with the conventional smoothing factor 0.5
    /// (as in Kansal et al.) and a gentle battery gain.
    #[must_use]
    pub fn new() -> EwmaAllocator {
        EwmaAllocator {
            ewma: DiurnalEwma::new(0.5),
            battery_gain: 0.1,
            first_call_done: false,
        }
    }

    /// Overrides the smoothing factor (clamped to `(0, 1]`).
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> EwmaAllocator {
        self.ewma = DiurnalEwma::new(alpha);
        self
    }

    /// Current expectation for a slot (J), for inspection: the slot's
    /// estimate, or the observed-slot mean while the slot is still
    /// unseeded.
    #[must_use]
    pub fn estimate(&self, hour_of_day: u32) -> Energy {
        Energy::from_joules(self.ewma.expected(hour_of_day))
    }

    /// The battery-correction gain (fraction of the battery's divergence
    /// from the half-full target budgeted per hour).
    #[must_use]
    pub fn battery_gain(&self) -> f64 {
        self.battery_gain
    }

    /// The underlying diurnal estimator, for state extraction
    /// (checkpointing a resident allocator).
    #[must_use]
    pub fn diurnal(&self) -> &DiurnalEwma {
        &self.ewma
    }

    /// Whether the discard-the-first-call cold-start step has happened
    /// yet; part of the allocator's checkpointable state.
    #[must_use]
    pub fn first_call_done(&self) -> bool {
        self.first_call_done
    }

    /// Rebuilds an allocator from extracted state
    /// ([`EwmaAllocator::diurnal`] + [`EwmaAllocator::first_call_done`]),
    /// with the standard battery gain. The round trip is exact: a
    /// restored allocator budgets bit-identically to the original.
    #[must_use]
    pub fn from_parts(ewma: DiurnalEwma, first_call_done: bool) -> EwmaAllocator {
        EwmaAllocator {
            ewma,
            battery_gain: 0.1,
            first_call_done,
        }
    }
}

impl Default for EwmaAllocator {
    fn default() -> Self {
        EwmaAllocator::new()
    }
}

impl BudgetAllocator for EwmaAllocator {
    fn allocate(
        &mut self,
        hour_of_day: u32,
        harvested_last_hour: Energy,
        battery: &Battery,
    ) -> Energy {
        // Update the estimate of the *previous* slot with its outcome —
        // except on the very first call, whose sample is a placeholder
        // for an hour that never ran (the engine passes zero at hour 0;
        // seeding from it would starve the whole first day).
        if self.first_call_done {
            let prev_slot = (hour_of_day + 23) % 24;
            self.ewma.observe(prev_slot, harvested_last_hour.joules());
        } else {
            self.first_call_done = true;
        }
        let expected = self.ewma.expected(hour_of_day);
        let target = battery.capacity() * 0.5;
        let correction = (battery.level() - target).joules() * self.battery_gain;
        Energy::from_joules((expected + correction).max(0.0))
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Splits the trailing daily harvest evenly across 24 hours (plus the
/// battery correction). Smooths aggressively: good at night, wasteful of
/// clear-noon surpluses when the battery is small.
#[derive(Debug, Clone)]
pub struct UniformDailyAllocator {
    window: [f64; 24],
    cursor: usize,
    filled: bool,
    battery_gain: f64,
}

impl UniformDailyAllocator {
    /// Creates the allocator.
    #[must_use]
    pub fn new() -> UniformDailyAllocator {
        UniformDailyAllocator {
            window: [0.0; 24],
            cursor: 0,
            filled: false,
            battery_gain: 0.1,
        }
    }
}

impl Default for UniformDailyAllocator {
    fn default() -> Self {
        UniformDailyAllocator::new()
    }
}

impl BudgetAllocator for UniformDailyAllocator {
    fn allocate(
        &mut self,
        _hour_of_day: u32,
        harvested_last_hour: Energy,
        battery: &Battery,
    ) -> Energy {
        self.window[self.cursor] = harvested_last_hour.joules();
        self.cursor = (self.cursor + 1) % 24;
        if self.cursor == 0 {
            self.filled = true;
        }
        let divisor = if self.filled {
            24.0
        } else {
            // reap-lint: allow(unsafe:float-cast) -- cursor counts absorbed hours, far below 2^53; exact
            self.cursor.max(1) as f64
        };
        let daily: f64 = self.window.iter().sum();
        let per_hour = daily / divisor;
        let target = battery.capacity() * 0.5;
        let correction = (battery.level() - target).joules() * self.battery_gain;
        Energy::from_joules((per_hour + correction).max(0.0))
    }

    fn name(&self) -> &'static str {
        "uniform-daily"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(j: f64) -> Energy {
        Energy::from_joules(j)
    }

    fn half_full() -> Battery {
        Battery::small_wearable() // 60 J capacity, 30 J level
    }

    #[test]
    fn greedy_passes_harvest_through_at_target_level() {
        let mut a = GreedyAllocator;
        let b = half_full();
        let budget = a.allocate(10, joules(4.0), &b);
        assert!((budget.joules() - 4.0).abs() < 1e-9);
        assert_eq!(a.name(), "greedy");
    }

    #[test]
    fn greedy_spends_surplus_battery() {
        let mut a = GreedyAllocator;
        let full = Battery::new(joules(60.0), joules(60.0), 0.95, 0.95).unwrap();
        let low = Battery::new(joules(60.0), joules(5.0), 0.95, 0.95).unwrap();
        assert!(a.allocate(10, joules(2.0), &full) > a.allocate(10, joules(2.0), &low));
        // Deep deficit never yields a negative budget.
        assert!(a.allocate(10, Energy::ZERO, &low).joules() >= 0.0);
    }

    #[test]
    fn ewma_learns_the_diurnal_profile() {
        let mut a = EwmaAllocator::new();
        let b = half_full();
        // Three synthetic days: 5 J at noon slots, 0 at night slots.
        for _ in 0..3 {
            for hour in 0u32..24 {
                let prev = (hour + 23) % 24;
                let harvested = if (10..=14).contains(&prev) { 5.0 } else { 0.0 };
                let _ = a.allocate(hour, joules(harvested), &b);
            }
        }
        assert!(a.estimate(12).joules() > 3.0, "noon estimate too low");
        assert!(a.estimate(2).joules() < 1.0, "night estimate too high");
        assert_eq!(a.name(), "ewma");
    }

    #[test]
    fn ewma_cold_start_ignores_the_boot_placeholder() {
        // Regression: the engine always passes harvested_last_hour = 0 on
        // hour 0 (no previous hour exists). That placeholder used to seed
        // every slot to zero, starving the whole first day. It must not
        // seed anything.
        let mut a = EwmaAllocator::new();
        let b = half_full();
        let _ = a.allocate(0, Energy::ZERO, &b);
        // A sunny first day: hours 0 and 1 each harvested 5 J.
        let _ = a.allocate(1, joules(5.0), &b);
        let _ = a.allocate(2, joules(5.0), &b);
        // By hour 2 the observed slots hold real nonzero estimates...
        assert!(
            a.estimate(0).joules() > 4.9 && a.estimate(1).joules() > 4.9,
            "sunny first-day slots estimate {} / {}",
            a.estimate(0),
            a.estimate(1)
        );
        // ...and unseen slots extrapolate from them instead of zero.
        assert!(a.estimate(12).joules() > 4.9, "noon fallback starved");
    }

    #[test]
    fn ewma_budget_tracks_expectations() {
        let mut a = EwmaAllocator::new();
        let b = half_full();
        // The first call's sample is discarded (no previous hour), so the
        // budget at the target battery level is zero.
        let first = a.allocate(0, joules(2.0), &b);
        assert!(first.joules().abs() < 1e-9);
        // The second call carries the first real sample; with only that
        // slot seen, the expectation for any hour equals it.
        let second = a.allocate(1, joules(2.0), &b);
        assert!((second.joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_daily_smooths() {
        let mut a = UniformDailyAllocator::new();
        let b = half_full();
        // A day with one big 24 J hour and 23 dark hours.
        let mut budgets = Vec::new();
        for hour in 0u32..48 {
            let harvested = if hour % 24 == 12 { 24.0 } else { 0.0 };
            budgets.push(a.allocate(hour % 24, joules(harvested), &b).joules());
        }
        // After the first full day, the budget settles near 1 J/hour.
        let settled = budgets[30];
        assert!((settled - 1.0).abs() < 0.3, "settled = {settled}");
        assert_eq!(a.name(), "uniform-daily");
    }

    #[test]
    fn allocators_are_object_safe() {
        let mut list: Vec<Box<dyn BudgetAllocator>> = vec![
            Box::new(GreedyAllocator),
            Box::new(EwmaAllocator::new()),
            Box::new(UniformDailyAllocator::new()),
        ];
        let b = half_full();
        for a in &mut list {
            let budget = a.allocate(0, joules(1.0), &b);
            assert!(budget.joules() >= 0.0);
            assert!(!a.name().is_empty());
        }
    }
}
