//! Flexible solar panel model.

use reap_units::{Energy, Power, TimeSpan};

use crate::HarvestError;

/// A small flexible photovoltaic panel (SP3-37 class) with wearable
/// deratings.
///
/// `harvested_power = irradiance * area * cell_efficiency * wearing_factor
/// * converter_efficiency`.
///
/// The *wearing factor* folds in everything that separates a wearable from
/// a rooftop installation: non-optimal tilt, body shading, clothing, and
/// time spent indoors. [`SolarPanel::sp3_37_wearable`] calibrates it so
/// that September hourly harvests in Golden span the paper's evaluation
/// regime (≈0–10 J per hour, with DP1's 9.9 J/h reachable only around
/// clear noons) — see DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct SolarPanel {
    area_m2: f64,
    cell_efficiency: f64,
    wearing_factor: f64,
    converter_efficiency: f64,
}

impl SolarPanel {
    /// The calibrated wearable panel used throughout the evaluation.
    #[must_use]
    pub fn sp3_37_wearable() -> SolarPanel {
        SolarPanel::new(0.00237, 0.05, 0.03, 0.80).expect("calibrated constants are valid")
    }

    /// Creates a panel model.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the area is non-positive or
    /// any efficiency/factor is outside `(0, 1]`.
    pub fn new(
        area_m2: f64,
        cell_efficiency: f64,
        wearing_factor: f64,
        converter_efficiency: f64,
    ) -> Result<SolarPanel, HarvestError> {
        if !area_m2.is_finite() || area_m2 <= 0.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "panel area {area_m2} must be positive"
            )));
        }
        for (name, v) in [
            ("cell efficiency", cell_efficiency),
            ("wearing factor", wearing_factor),
            ("converter efficiency", converter_efficiency),
        ] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(HarvestError::InvalidParameter(format!(
                    "{name} {v} outside (0, 1]"
                )));
            }
        }
        Ok(SolarPanel {
            area_m2,
            cell_efficiency,
            wearing_factor,
            converter_efficiency,
        })
    }

    /// Electrical power delivered to the harvester at a given irradiance
    /// (W/m²).
    #[must_use]
    pub fn harvested_power(&self, irradiance_wm2: f64) -> Power {
        let w = irradiance_wm2.max(0.0)
            * self.area_m2
            * self.cell_efficiency
            * self.wearing_factor
            * self.converter_efficiency;
        Power::from_watts(w)
    }

    /// Energy harvested over one hour at a constant irradiance.
    #[must_use]
    pub fn hourly_energy(&self, irradiance_wm2: f64) -> Energy {
        self.harvested_power(irradiance_wm2) * TimeSpan::from_hours(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SolarPanel::new(0.0, 0.05, 0.1, 0.8).is_err());
        assert!(SolarPanel::new(0.002, 1.5, 0.1, 0.8).is_err());
        assert!(SolarPanel::new(0.002, 0.05, 0.0, 0.8).is_err());
        assert!(SolarPanel::new(0.002, 0.05, 0.1, 0.8).is_ok());
    }

    #[test]
    fn zero_irradiance_harvests_nothing() {
        let p = SolarPanel::sp3_37_wearable();
        assert_eq!(p.harvested_power(0.0), Power::ZERO);
        assert_eq!(p.harvested_power(-100.0), Power::ZERO);
    }

    #[test]
    fn calibration_spans_the_paper_regime() {
        // A clear September noon (~850 W/m²) must land high in the
        // paper's 0.18-10 J sweep but not absurdly beyond it.
        let p = SolarPanel::sp3_37_wearable();
        let noon = p.hourly_energy(850.0);
        assert!(
            (6.0..12.0).contains(&noon.joules()),
            "noon harvest = {noon}"
        );
        // A heavily overcast mid-morning (~100 W/m²) still beats the
        // off-state floor.
        let gloomy = p.hourly_energy(100.0);
        assert!(gloomy.joules() > 0.18, "gloomy harvest = {gloomy}");
    }

    #[test]
    fn power_scales_linearly_with_irradiance() {
        let p = SolarPanel::sp3_37_wearable();
        let a = p.harvested_power(200.0).watts();
        let b = p.harvested_power(400.0).watts();
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
