//! The [`HarvestSource`] abstraction: anything that turns the physical
//! world into hourly joules.
//!
//! The paper evaluates REAP against a single outdoor-solar trace, but its
//! premise — runtime adaptation under *unpredictable* harvested energy —
//! only gets stress-tested across diverse energy sources. This module
//! defines the common interface every source model implements, plus
//! [`SourceKind`], a value-level enumeration of the bundled sources used
//! by the fleet simulator to shard user populations across them.

use reap_units::Energy;

use crate::{HarvestError, HarvestTrace};

/// An energy-harvesting transducer model, queried one hour at a time.
///
/// Implementations must be **deterministic pure functions of their
/// construction parameters**: the same source must return the same energy
/// for the same `(day_of_year, day_index, hour)` cell, so that any cell
/// can be queried independently (the weather and routine models underneath
/// derive every cell from a seed rather than from iteration state).
/// Returned energies must be finite and non-negative; photovoltaic
/// sources ([`is_photovoltaic`](HarvestSource::is_photovoltaic)) must
/// return zero whenever their light source is off — in particular during
/// the dead of night.
///
/// # Examples
///
/// ```
/// use reap_harvest::{HarvestSource, SourceKind};
///
/// // Every bundled source yields a month-long trace from one seed.
/// for kind in SourceKind::ALL {
///     let source = kind.instantiate(42);
///     let trace = source.generate(244, 30).unwrap();
///     assert_eq!(trace.days(), 30);
///     assert!(trace.total().joules() > 0.0, "{} harvested nothing", source.name());
/// }
/// ```
pub trait HarvestSource {
    /// Short source name for reports (e.g. `"outdoor-solar"`).
    fn name(&self) -> &'static str;

    /// Energy harvested during hour `hour` (0-23) of trace day
    /// `day_index` (0-based), whose calendar day is `day_of_year`
    /// (1-based, wrapped into `1..=365`).
    ///
    /// Both day coordinates are provided because sources couple to
    /// different clocks: solar geometry and seasonal ambient temperature
    /// follow the calendar (`day_of_year`), while weather streams and
    /// weekday/weekend activity routines follow the trace-relative index
    /// (`day_index`).
    fn hourly_energy(&self, day_of_year: u32, day_index: u32, hour: u32) -> Energy;

    /// `true` when the source harvests light and therefore goes fully
    /// dark when its light source is off. Used by budget-allocation
    /// heuristics and by the substrate's property tests (photovoltaic
    /// sources must yield exactly zero in the dead of night).
    fn is_photovoltaic(&self) -> bool {
        false
    }

    /// Generates an hourly [`HarvestTrace`] of `days` days starting at
    /// `start_day_of_year` (1-based).
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when `days == 0`,
    /// `start_day_of_year` is outside `1..=365`, or the model produced an
    /// invalid (negative / non-finite) energy.
    fn generate(&self, start_day_of_year: u32, days: u32) -> Result<HarvestTrace, HarvestError> {
        if days == 0 {
            return Err(HarvestError::InvalidParameter("zero days".into()));
        }
        if !(1..=365).contains(&start_day_of_year) {
            return Err(HarvestError::InvalidParameter(format!(
                "start day of year {start_day_of_year} outside 1..=365"
            )));
        }
        let mut hourly = Vec::with_capacity(days as usize * 24);
        for day in 0..days {
            let doy = (start_day_of_year + day - 1) % 365 + 1;
            for hour in 0..24 {
                hourly.push(self.hourly_energy(doy, day, hour));
            }
        }
        HarvestTrace::new(start_day_of_year, hourly)
    }
}

/// The bundled source models, as values.
///
/// The fleet simulator shards synthetic users across these kinds; each
/// [`instantiate`](SourceKind::instantiate)d source is calibrated so its
/// useful hours land inside the paper's 0.18–10 J evaluation regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Outdoor flexible solar panel under real-sky irradiance
    /// ([`SolarSource`](crate::SolarSource)).
    OutdoorSolar,
    /// Indoor photovoltaic cell under office lighting
    /// ([`IndoorPhotovoltaic`](crate::IndoorPhotovoltaic)).
    IndoorPhotovoltaic,
    /// Thermoelectric generator against body heat
    /// ([`BodyHeatTeg`](crate::BodyHeatTeg)).
    BodyHeat,
    /// Kinetic/piezoelectric motion harvester
    /// ([`KineticHarvester`](crate::KineticHarvester)).
    Kinetic,
}

impl SourceKind {
    /// All bundled kinds, in the fleet's sharding order.
    pub const ALL: [SourceKind; 4] = [
        SourceKind::OutdoorSolar,
        SourceKind::IndoorPhotovoltaic,
        SourceKind::BodyHeat,
        SourceKind::Kinetic,
    ];

    /// Stable label (matches the instantiated source's
    /// [`name`](HarvestSource::name)).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::OutdoorSolar => "outdoor-solar",
            SourceKind::IndoorPhotovoltaic => "indoor-pv",
            SourceKind::BodyHeat => "body-heat-teg",
            SourceKind::Kinetic => "kinetic",
        }
    }

    /// Builds the calibrated wearable instance of this kind for a seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_harvest::{HarvestSource, SourceKind};
    ///
    /// let teg = SourceKind::BodyHeat.instantiate(1);
    /// assert_eq!(teg.name(), SourceKind::BodyHeat.label());
    /// // Body heat never stops flowing: even 3 am harvests something.
    /// assert!(teg.hourly_energy(244, 0, 3).joules() > 0.0);
    /// ```
    #[must_use]
    pub fn instantiate(self, seed: u64) -> Box<dyn HarvestSource> {
        match self {
            SourceKind::OutdoorSolar => Box::new(crate::SolarSource::september_wearable(seed)),
            SourceKind::IndoorPhotovoltaic => {
                Box::new(crate::IndoorPhotovoltaic::office_badge(seed))
            }
            SourceKind::BodyHeat => Box::new(crate::BodyHeatTeg::wrist_wearable(seed)),
            SourceKind::Kinetic => Box::new(crate::KineticHarvester::shoe_piezo(seed)),
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_instantiated_names() {
        for kind in SourceKind::ALL {
            let source = kind.instantiate(3);
            assert_eq!(source.name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn all_kinds_are_distinct() {
        for (i, a) in SourceKind::ALL.iter().enumerate() {
            for b in &SourceKind::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn generate_rejects_zero_days() {
        for kind in SourceKind::ALL {
            assert!(kind.instantiate(0).generate(1, 0).is_err());
        }
    }

    #[test]
    fn generate_rejects_out_of_range_start_day() {
        for kind in SourceKind::ALL {
            assert!(kind.instantiate(0).generate(0, 1).is_err());
            assert!(kind.instantiate(0).generate(366, 1).is_err());
        }
    }

    #[test]
    fn generate_wraps_the_calendar() {
        // Starting in late December must wrap into January, not panic.
        for kind in SourceKind::ALL {
            let trace = kind.instantiate(1).generate(360, 10).unwrap();
            assert_eq!(trace.days(), 10);
        }
    }

    #[test]
    fn photovoltaic_flags() {
        assert!(SourceKind::OutdoorSolar.instantiate(0).is_photovoltaic());
        assert!(SourceKind::IndoorPhotovoltaic
            .instantiate(0)
            .is_photovoltaic());
        assert!(!SourceKind::BodyHeat.instantiate(0).is_photovoltaic());
        assert!(!SourceKind::Kinetic.instantiate(0).is_photovoltaic());
    }
}
