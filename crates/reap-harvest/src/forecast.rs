//! Harvest forecasting for lookahead (receding-horizon) policies.
//!
//! The budget allocators in [`crate::allocator`] are *myopic*: they turn
//! harvesting history into a single next-hour budget. A receding-horizon
//! controller instead needs an **H-hour forecast window** each period.
//! This module defines the [`HarvestForecaster`] interface plus two
//! implementations spanning the realism spectrum:
//!
//! * [`EwmaForecaster`] — a causal, deployable forecaster that maintains
//!   the same Kansal-style per-hour-of-day EWMA estimates as
//!   [`EwmaAllocator`](crate::EwmaAllocator) (both are built on the shared
//!   [`DiurnalEwma`] estimator) and projects them over the window;
//! * [`OracleForecaster`] — a seeded noisy oracle that perturbs the true
//!   future trace with a configurable relative error. At zero error it is
//!   the perfect-information upper bound; at 10–40% it measures how
//!   gracefully a lookahead policy degrades with forecast quality.

use reap_units::Energy;

/// A source of per-hour harvest forecasts over a lookahead window.
///
/// The simulation loop drives implementations with the same cadence as
/// the allocators: after each hour executes, [`observe`] receives the
/// realized harvest; before each hour plans, [`forecast`] produces the
/// window starting at the hour about to run.
///
/// [`observe`]: HarvestForecaster::observe
/// [`forecast`]: HarvestForecaster::forecast
pub trait HarvestForecaster {
    /// Records the energy actually harvested during absolute trace hour
    /// `hour_index` (0-based from the start of the trace).
    fn observe(&mut self, hour_index: usize, harvested: Energy);

    /// Forecasts hours `start_hour .. start_hour + horizon` (absolute
    /// trace indices). Every returned energy is finite and non-negative,
    /// and the result always has exactly `horizon` entries.
    fn forecast(&self, start_hour: usize, horizon: usize) -> Vec<Energy>;

    /// Short forecaster name for reports.
    fn name(&self) -> &'static str;
}

/// Per-hour-of-day EWMA harvest estimator with lazy cold start.
///
/// Keeps one exponentially weighted moving average per hour-of-day slot
/// (capturing the diurnal profile, as in Kansal et al.). Slots are seeded
/// **lazily from their first real observation** — never from a
/// placeholder — so a device booted at midnight does not believe the
/// whole first day is dark. Slots that have not been observed yet fall
/// back to the mean of the observed ones.
///
/// Both [`EwmaAllocator`](crate::EwmaAllocator) (budgets) and
/// [`EwmaForecaster`] (forecast windows) are thin wrappers around this
/// estimator, so the allocation and forecasting layers share one view of
/// the diurnal profile.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalEwma {
    estimates: [f64; 24],
    seen: [bool; 24],
    alpha: f64,
}

impl DiurnalEwma {
    /// Creates an estimator with smoothing factor `alpha` (the weight of
    /// the newest sample), clamped to `[1e-3, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> DiurnalEwma {
        DiurnalEwma {
            estimates: [0.0; 24],
            seen: [false; 24],
            alpha: alpha.clamp(1e-3, 1.0),
        }
    }

    /// Folds one observed harvest (J) into the slot for `hour_of_day`.
    /// The first observation of a slot seeds it exactly; later ones blend
    /// with weight `alpha`.
    pub fn observe(&mut self, hour_of_day: u32, joules: f64) {
        let slot = (hour_of_day % 24) as usize;
        if self.seen[slot] {
            self.estimates[slot] = (1.0 - self.alpha) * self.estimates[slot] + self.alpha * joules;
        } else {
            self.estimates[slot] = joules;
            self.seen[slot] = true;
        }
    }

    /// Expected harvest (J) for `hour_of_day`: the slot's estimate, or —
    /// while the slot is still unobserved — the mean of the observed
    /// slots (zero before any observation at all).
    #[must_use]
    pub fn expected(&self, hour_of_day: u32) -> f64 {
        let slot = (hour_of_day % 24) as usize;
        if self.seen[slot] {
            return self.estimates[slot];
        }
        let (sum, n) = self
            .seen
            .iter()
            .zip(&self.estimates)
            .filter(|(&seen, _)| seen)
            .fold((0.0, 0u32), |(s, n), (_, &e)| (s + e, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// `true` once the slot for `hour_of_day` has received a real sample.
    #[must_use]
    pub fn is_seen(&self, hour_of_day: u32) -> bool {
        self.seen[(hour_of_day % 24) as usize]
    }

    /// The smoothing factor (post-clamp).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Extracts the full estimator state as `(slot estimates, seen
    /// bitmask)` — bit `s` of the mask set when slot `s` has been seeded.
    /// Together with [`DiurnalEwma::alpha`] this is everything a
    /// checkpoint needs to rebuild the estimator bit-identically via
    /// [`DiurnalEwma::from_parts`].
    #[must_use]
    pub fn to_parts(&self) -> ([f64; 24], u32) {
        let mut mask = 0u32;
        for (s, &seen) in self.seen.iter().enumerate() {
            mask |= u32::from(seen) << s;
        }
        (self.estimates, mask)
    }

    /// Rebuilds an estimator from [`DiurnalEwma::to_parts`] output (bits
    /// of `seen_mask` above slot 23 are ignored). The round trip is exact:
    /// the restored estimator produces bit-identical expectations.
    #[must_use]
    pub fn from_parts(alpha: f64, estimates: [f64; 24], seen_mask: u32) -> DiurnalEwma {
        let mut seen = [false; 24];
        for (s, slot) in seen.iter_mut().enumerate() {
            *slot = (seen_mask >> s) & 1 == 1;
        }
        DiurnalEwma {
            estimates,
            seen,
            alpha: alpha.clamp(1e-3, 1.0),
        }
    }
}

/// Causal per-slot EWMA forecaster (see [`DiurnalEwma`]).
///
/// # Examples
///
/// ```
/// use reap_harvest::{EwmaForecaster, HarvestForecaster};
/// use reap_units::Energy;
///
/// let mut f = EwmaForecaster::new();
/// // A sunny morning: hours 0..3 harvested 0, 0, 2, 4 J.
/// for (h, j) in [0.0, 0.0, 2.0, 4.0].iter().enumerate() {
///     f.observe(h, Energy::from_joules(*j));
/// }
/// let window = f.forecast(4, 3);
/// assert_eq!(window.len(), 3);
/// // Unseen afternoon slots fall back to the observed mean (1.5 J).
/// assert!((window[0].joules() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaForecaster {
    ewma: DiurnalEwma,
}

impl EwmaForecaster {
    /// Creates a forecaster with the conventional smoothing factor 0.5.
    #[must_use]
    pub fn new() -> EwmaForecaster {
        EwmaForecaster::with_alpha(0.5)
    }

    /// Creates a forecaster with an explicit smoothing factor (clamped to
    /// `[1e-3, 1]`).
    #[must_use]
    pub fn with_alpha(alpha: f64) -> EwmaForecaster {
        EwmaForecaster {
            ewma: DiurnalEwma::new(alpha),
        }
    }

    /// The underlying diurnal estimator, for inspection.
    #[must_use]
    pub fn estimator(&self) -> &DiurnalEwma {
        &self.ewma
    }
}

impl Default for EwmaForecaster {
    fn default() -> Self {
        EwmaForecaster::new()
    }
}

impl HarvestForecaster for EwmaForecaster {
    fn observe(&mut self, hour_index: usize, harvested: Energy) {
        self.ewma
            .observe((hour_index % 24) as u32, harvested.joules().max(0.0));
    }

    fn forecast(&self, start_hour: usize, horizon: usize) -> Vec<Energy> {
        (start_hour..start_hour + horizon)
            .map(|h| Energy::from_joules(self.ewma.expected((h % 24) as u32).max(0.0)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "ewma-forecast"
    }
}

/// A seeded noisy oracle over a known trace.
///
/// Forecasts are the *true* future energies perturbed by a deterministic
/// multiplicative error: hour `t` is scaled by `1 + rel_error * u(t)`
/// with `u(t)` uniform in `[-1, 1)`, derived purely from `(seed, t)` so
/// the same hour forecast from different origins is perturbed the same
/// way, and re-runs are reproducible. Hours beyond the trace forecast
/// zero.
///
/// `rel_error = 0` is the perfect oracle — the upper bound any real
/// forecaster can approach.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleForecaster {
    truth: Vec<Energy>,
    rel_error: f64,
    seed: u64,
}

impl OracleForecaster {
    /// Creates an oracle over `truth` with relative error `rel_error`
    /// (clamped to `[0, 1]`; 0.2 means hourly forecasts are off by up to
    /// ±20%).
    #[must_use]
    pub fn new(truth: Vec<Energy>, rel_error: f64, seed: u64) -> OracleForecaster {
        OracleForecaster {
            truth,
            rel_error: if rel_error.is_finite() {
                rel_error.clamp(0.0, 1.0)
            } else {
                0.0
            },
            seed,
        }
    }

    /// The configured relative error.
    #[must_use]
    pub fn rel_error(&self) -> f64 {
        self.rel_error
    }

    /// Deterministic noise factor for hour `t`: `1 + rel_error * u`,
    /// `u in [-1, 1)` via a splitmix64-style finalizer of `(seed, t)`.
    fn noise(&self, t: usize) -> f64 {
        if self.rel_error == 0.0 {
            return 1.0;
        }
        let mut z = self
            .seed
            .wrapping_add((t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // reap-lint: allow(unsafe:float-cast) -- 53-bit mantissa math: both operands fit in 53 bits, conversion exact
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (1.0 + self.rel_error * (2.0 * unit - 1.0)).max(0.0)
    }
}

impl HarvestForecaster for OracleForecaster {
    fn observe(&mut self, _hour_index: usize, _harvested: Energy) {}

    fn forecast(&self, start_hour: usize, horizon: usize) -> Vec<Energy> {
        (start_hour..start_hour + horizon)
            .map(|t| match self.truth.get(t) {
                Some(&e) => (e * self.noise(t)).max(Energy::ZERO),
                None => Energy::ZERO,
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "oracle-forecast"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(j: f64) -> Energy {
        Energy::from_joules(j)
    }

    #[test]
    fn diurnal_ewma_seeds_lazily_and_blends() {
        let mut e = DiurnalEwma::new(0.5);
        assert_eq!(e.expected(3), 0.0, "empty estimator forecasts zero");
        e.observe(3, 4.0);
        assert!((e.expected(3) - 4.0).abs() < 1e-12, "first sample seeds");
        e.observe(3, 0.0);
        assert!((e.expected(3) - 2.0).abs() < 1e-12, "second sample blends");
        // Unseen slots fall back to the mean of seen ones.
        assert!((e.expected(7) - 2.0).abs() < 1e-12);
        assert!(e.is_seen(3) && !e.is_seen(7));
    }

    #[test]
    fn ewma_forecaster_projects_the_diurnal_profile() {
        let mut f = EwmaForecaster::new();
        // Two days: 6 J in hours 10..=13, dark otherwise.
        for t in 0..48usize {
            let h = t % 24;
            let e = if (10..=13).contains(&h) { 6.0 } else { 0.0 };
            f.observe(t, joules(e));
        }
        let window = f.forecast(48, 24);
        assert_eq!(window.len(), 24);
        for (offset, e) in window.iter().enumerate() {
            let h = (48 + offset) % 24;
            if (10..=13).contains(&h) {
                assert!(e.joules() > 5.0, "noon slot {h} forecast {e}");
            } else {
                assert!(e.joules() < 1e-9, "night slot {h} forecast {e}");
            }
        }
        assert_eq!(f.name(), "ewma-forecast");
    }

    #[test]
    fn ewma_forecaster_cold_start_is_not_starved() {
        let mut f = EwmaForecaster::new();
        f.observe(0, joules(3.0));
        // Only hour 0 observed: the whole window forecasts its value via
        // the seen-mean fallback instead of zero.
        for e in f.forecast(1, 6) {
            assert!((e.joules() - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_oracle_returns_the_truth_and_zero_beyond() {
        let truth: Vec<Energy> = (0..10).map(|i| joules(f64::from(i))).collect();
        let o = OracleForecaster::new(truth.clone(), 0.0, 9);
        let w = o.forecast(4, 10);
        assert_eq!(&w[..6], &truth[4..10]);
        assert!(w[6..].iter().all(|&e| e == Energy::ZERO));
        assert_eq!(o.name(), "oracle-forecast");
        assert_eq!(o.rel_error(), 0.0);
    }

    #[test]
    fn noisy_oracle_is_deterministic_bounded_and_origin_independent() {
        let truth: Vec<Energy> = (0..48).map(|i| joules(1.0 + (i % 24) as f64)).collect();
        let o = OracleForecaster::new(truth.clone(), 0.2, 7);
        let a = o.forecast(0, 48);
        let b = o.forecast(0, 48);
        assert_eq!(a, b, "same seed, same forecast");
        // The same hour forecast from a different origin is identical.
        let shifted = o.forecast(10, 8);
        assert_eq!(&a[10..18], &shifted[..]);
        let mut distinct = 0;
        for (t, (&f, &e)) in a.iter().zip(&truth).enumerate() {
            let ratio = f.joules() / e.joules();
            assert!(
                (0.8 - 1e-9..=1.2 + 1e-9).contains(&ratio),
                "hour {t}: ratio {ratio} outside +/-20%"
            );
            if (ratio - 1.0).abs() > 1e-6 {
                distinct += 1;
            }
        }
        assert!(distinct > 40, "noise should actually perturb most hours");
        // A different seed gives a different perturbation.
        let other = OracleForecaster::new(truth, 0.2, 8);
        assert_ne!(a, other.forecast(0, 48));
    }

    #[test]
    fn oracle_clamps_degenerate_error_levels() {
        let o = OracleForecaster::new(vec![joules(2.0)], f64::NAN, 1);
        assert_eq!(o.rel_error(), 0.0);
        let o = OracleForecaster::new(vec![joules(2.0)], 7.0, 1);
        assert_eq!(o.rel_error(), 1.0);
        // Even at 100% error the forecast never goes negative.
        assert!(o.forecast(0, 1)[0].joules() >= 0.0);
    }

    #[test]
    fn diurnal_parts_round_trip_bit_identically() {
        let mut e = DiurnalEwma::new(0.5);
        for (h, j) in [(0u32, 0.25), (3, 1.5), (3, 2.0), (17, 0.0)] {
            e.observe(h, j);
        }
        let (est, mask) = e.to_parts();
        let restored = DiurnalEwma::from_parts(e.alpha(), est, mask);
        for h in 0..24 {
            assert_eq!(restored.expected(h), e.expected(h), "slot {h}");
            assert_eq!(restored.is_seen(h), e.is_seen(h), "seen {h}");
        }
        // High seen-mask bits are ignored.
        let noisy = DiurnalEwma::from_parts(e.alpha(), est, mask | 0xFF00_0000);
        assert_eq!(noisy.expected(5), e.expected(5));
    }

    #[test]
    fn forecasters_are_object_safe() {
        let truth = vec![joules(1.0); 24];
        let mut list: Vec<Box<dyn HarvestForecaster>> = vec![
            Box::new(EwmaForecaster::new()),
            Box::new(OracleForecaster::new(truth, 0.1, 0)),
        ];
        for f in &mut list {
            f.observe(0, joules(1.0));
            let w = f.forecast(1, 4);
            assert_eq!(w.len(), 4);
            assert!(w.iter().all(|e| e.is_finite() && !e.is_negative()));
            assert!(!f.name().is_empty());
        }
    }
}
