//! Harvest blackout injection: a seeded overlay that zeroes contiguous
//! windows of an inner source's output.
//!
//! Deployed harvesters lose whole stretches of input — a wearable left
//! in a drawer, a solar cell shadowed by a parked truck, a TEG off the
//! wrist. [`BlackoutOverlay`] models those outages as one contiguous
//! window starting on each day, its start hour drawn deterministically
//! from a seed, so fleet robustness experiments are exactly
//! reproducible: the same `(seed, fraction)` pair blacks out the same
//! hours every run. Windows live on the continuous trace timeline — a
//! late-night window spills past midnight into the next day instead of
//! wrapping back into hours that already passed, and windows that meet
//! (a long spill running into the next day's early start) union into
//! one longer outage rather than double-counting the shared hours.

use reap_units::Energy;

use crate::error::HarvestError;
use crate::source::HarvestSource;

/// Wraps any [`HarvestSource`] and zeroes a seeded contiguous window of
/// `round(fraction * 24)` hours starting on every day, the start hour
/// drawn per-day from the seed. Windows sit on the continuous trace
/// timeline: one starting at 22:00 blacks out 22:00–midnight *and the
/// next day's early hours*, it does not wrap back into the same day's
/// morning. Where a spill meets the next day's own window the two
/// union — each hour is blacked out once, never double-zeroed — and a
/// window reaching past the last generated hour truncates at the trace
/// end.
///
/// The overlay composes with [`HarvestSource::generate`] unchanged, so
/// traces built through it stay valid (finite, non-negative) whenever
/// the inner source's are.
///
/// ```
/// use reap_harvest::{BlackoutOverlay, HarvestSource, SourceKind};
///
/// let inner = SourceKind::BodyHeat.instantiate(7);
/// let dark = BlackoutOverlay::new(inner, 42, 0.30).unwrap();
/// // 30% of 24 hours -> a 7-hour outage window starting each day. Day
/// // 0 has no predecessor to spill into it, so its blacked-out hours
/// // are exactly its own window clipped at midnight.
/// assert_eq!(dark.window_hours(), 7);
/// let day0 = (0..24)
///     .filter(|&h| dark.hourly_energy(244, 0, h).joules() == 0.0)
///     .count() as u32;
/// assert_eq!(day0, dark.window_hours().min(24 - dark.window_start(0)));
/// ```
pub struct BlackoutOverlay {
    inner: Box<dyn HarvestSource>,
    seed: u64,
    /// Blacked-out hours per day, `0..=24`.
    window_hours: u32,
}

impl BlackoutOverlay {
    /// Wraps `inner` so that `round(fraction * 24)` hours of every day
    /// harvest exactly zero.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when `fraction` is not a
    /// finite value in `[0, 1]`.
    pub fn new(
        inner: Box<dyn HarvestSource>,
        seed: u64,
        fraction: f64,
    ) -> Result<Self, HarvestError> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(HarvestError::InvalidParameter(format!(
                "blackout fraction {fraction} outside [0, 1]"
            )));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let window_hours = (fraction * 24.0).round() as u32;
        Ok(Self {
            inner,
            seed,
            window_hours,
        })
    }

    /// The number of hours blacked out on every day.
    pub fn window_hours(&self) -> u32 {
        self.window_hours
    }

    /// The start hour (0-23) of the window that *begins* on trace day
    /// `day_index`. The window itself may run past midnight into day
    /// `day_index + 1`.
    #[must_use]
    pub fn window_start(&self, day_index: u32) -> u32 {
        (splitmix64(
            self.seed ^ (u64::from(day_index).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ) % 24) as u32
    }

    /// `true` when `hour` of trace day `day_index` falls inside a
    /// blackout window on the continuous trace timeline — either the
    /// window that begins on this day or the tail of the previous day's
    /// window spilling past midnight. Overlapping windows union: an hour
    /// covered by both is blacked out once, and no hour between two
    /// abutting windows is skipped.
    pub fn is_blacked_out(&self, day_index: u32, hour: u32) -> bool {
        if self.window_hours == 0 {
            return false;
        }
        if self.window_hours >= 24 {
            return true;
        }
        let abs = u64::from(day_index) * 24 + u64::from(hour % 24);
        // With window_hours < 24 a window reaches at most one midnight
        // past its start day, so only this day's window and the previous
        // day's spill can cover `abs`.
        let covers = |day: u32| {
            let start = u64::from(day) * 24 + u64::from(self.window_start(day));
            abs >= start && abs < start + u64::from(self.window_hours)
        };
        covers(day_index) || (day_index > 0 && covers(day_index - 1))
    }
}

impl HarvestSource for BlackoutOverlay {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn hourly_energy(&self, day_of_year: u32, day_index: u32, hour: u32) -> Energy {
        if self.is_blacked_out(day_index, hour % 24) {
            Energy::ZERO
        } else {
            self.inner.hourly_energy(day_of_year, day_index, hour)
        }
    }

    fn is_photovoltaic(&self) -> bool {
        self.inner.is_photovoltaic()
    }
}

/// The splitmix64 finalizer (same mixing the fault plan and the trace
/// perturbations use).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceKind;

    fn body_heat(seed: u64, fraction: f64) -> BlackoutOverlay {
        BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(seed), seed, fraction)
            .expect("valid overlay")
    }

    #[test]
    fn fraction_is_validated() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(1), 1, bad).is_err());
        }
        for ok in [0.0, 0.5, 1.0] {
            assert!(BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(1), 1, ok).is_ok());
        }
    }

    #[test]
    fn blacked_hours_are_exactly_the_union_of_per_day_windows() {
        // Reference model: mark [start_d, start_d + w) on an absolute
        // hour axis for every day, then compare hour by hour. This is
        // the continuous-timeline contract — no wrap-back, no
        // double-zeroed overlap hours, no skipped hours between
        // abutting windows.
        let dark = body_heat(3, 0.30);
        assert_eq!(dark.window_hours(), 7);
        let days = 60u32;
        let mut expected = vec![false; (days as usize + 1) * 24];
        for day in 0..days {
            let start = day as usize * 24 + dark.window_start(day) as usize;
            for slot in expected.iter_mut().skip(start).take(7) {
                *slot = true;
            }
        }
        for day in 0..days {
            for hour in 0..24 {
                assert_eq!(
                    dark.is_blacked_out(day, hour),
                    expected[day as usize * 24 + hour as usize],
                    "day {day} hour {hour}"
                );
            }
        }
    }

    #[test]
    fn late_windows_spill_into_the_next_day_instead_of_wrapping() {
        // Regression: a window abutting a day boundary used to wrap back
        // into the *same* day's early hours, splitting one physical
        // outage into two and blacking out hours that had already
        // passed. Hunt down a seeded late start and pin the spill.
        let dark = body_heat(3, 0.30);
        let day = (0..400)
            .find(|&d| dark.window_start(d) > 17 && dark.window_start(d + 1) > 7)
            .expect("some seeded day starts late with a late successor");
        let start = dark.window_start(day);
        let spill = start + 7 - 24;
        for h in start..24 {
            assert!(dark.is_blacked_out(day, h), "day {day} hour {h}");
        }
        for h in 0..spill {
            assert!(dark.is_blacked_out(day + 1, h), "spill hour {h}");
        }
        // The same day's early hours stay lit (its own window cannot
        // wrap, and the chosen predecessor day + 1 cannot be reached by
        // day - 1 here because day's start > 17 was found fresh).
        for h in spill..dark.window_start(day + 1).min(24) {
            assert!(
                !dark.is_blacked_out(day + 1, h),
                "day {} hour {h} double-zeroed past the spill",
                day + 1
            );
        }
    }

    #[test]
    fn abutting_windows_union_without_double_zeroing_or_gaps() {
        // Sweep many seeds and days: wherever day d's window spills into
        // day d+1 and meets day d+1's own window, the union must be one
        // contiguous run on the absolute timeline (no skipped hour at
        // the seam, no hour counted twice by the membership predicate).
        let mut seams = 0;
        for seed in 0..40u64 {
            let dark = body_heat(seed, 0.30);
            for day in 0..60u32 {
                let start = dark.window_start(day);
                if start + 7 <= 24 {
                    continue; // no spill from this day
                }
                let spill_end = start + 7 - 24;
                let next = dark.window_start(day + 1);
                if next > spill_end {
                    continue; // spill and next window don't touch
                }
                seams += 1;
                // One merged run: from day d's start through the end of
                // day d+1's window, every hour is blacked out exactly
                // per the union, with no gap at the seam.
                let abs_start = u64::from(day) * 24 + u64::from(start);
                let abs_end = u64::from(day + 1) * 24 + u64::from(next + 7);
                for abs in abs_start..abs_end {
                    let (d, h) = ((abs / 24) as u32, (abs % 24) as u32);
                    assert!(
                        dark.is_blacked_out(d, h),
                        "seed {seed}: gap at day {d} hour {h} inside merged outage"
                    );
                }
            }
        }
        assert!(seams > 0, "the sweep never produced an abutting pair");
    }

    #[test]
    fn window_at_the_trace_end_truncates_instead_of_wrapping() {
        // A last-day window that runs past the final generated hour must
        // simply truncate: the generated trace loses only the in-range
        // hours and no early hour of the last day gets zeroed in
        // compensation.
        let seed = (0..200)
            .find(|&s| {
                let dark = body_heat(s, 0.30);
                dark.window_start(1) > 17 && dark.window_start(0) + 7 <= 18
            })
            .expect("some seed ends day 1 with a spilling window");
        let dark = body_heat(seed, 0.30);
        let inner = SourceKind::BodyHeat.instantiate(seed);
        let trace = dark.generate(244, 2).unwrap();
        let start1 = dark.window_start(1);
        // BodyHeat never harvests zero on its own, so zeros mark the
        // blackout exactly.
        let zeros_day1: Vec<u32> = (0..24)
            .filter(|&h| trace.energy(1, h).joules() == 0.0)
            .collect();
        assert_eq!(
            zeros_day1,
            (start1..24).collect::<Vec<_>>(),
            "seed {seed}: last-day window must cover only its in-range tail"
        );
        // Non-blacked hours of the truncated day match the inner source.
        for h in 0..start1 {
            if !dark.is_blacked_out(1, h) {
                assert_eq!(
                    trace.energy(1, h).joules(),
                    inner.hourly_energy(245, 1, h).joules()
                );
            }
        }
    }

    #[test]
    fn window_start_varies_by_day_and_is_seed_deterministic() {
        let a = body_heat(9, 0.25);
        let b = body_heat(9, 0.25);
        let starts: Vec<u32> = (0..30).map(|d| a.window_start(d)).collect();
        assert_eq!(
            starts,
            (0..30).map(|d| b.window_start(d)).collect::<Vec<_>>()
        );
        // Not all days share one start hour (the seed spreads windows).
        assert!(starts.iter().any(|&s| s != starts[0]));
    }

    #[test]
    fn blacked_hours_are_zero_and_the_rest_match_the_inner_source() {
        let inner = SourceKind::BodyHeat.instantiate(11);
        let dark = body_heat(11, 0.30);
        for day in 0..7 {
            for hour in 0..24 {
                let got = dark.hourly_energy(244 + day, day, hour);
                if dark.is_blacked_out(day, hour) {
                    assert_eq!(got.joules(), 0.0);
                } else {
                    assert_eq!(
                        got.joules(),
                        inner.hourly_energy(244 + day, day, hour).joules()
                    );
                }
            }
        }
    }

    #[test]
    fn edge_fractions_black_out_nothing_or_everything() {
        let none = body_heat(5, 0.0);
        let all = body_heat(5, 1.0);
        for hour in 0..24 {
            assert!(!none.is_blacked_out(0, hour));
            assert!(all.is_blacked_out(0, hour));
            assert_eq!(all.hourly_energy(244, 0, hour).joules(), 0.0);
        }
    }

    #[test]
    fn generated_traces_stay_valid_and_lose_energy() {
        let inner = SourceKind::OutdoorSolar
            .instantiate(2)
            .generate(244, 10)
            .unwrap();
        let dark = body_heat_like_solar();
        let trace = dark.generate(244, 10).expect("overlay trace generates");
        assert_eq!(trace.days(), 10);
        assert!(trace
            .iter()
            .all(|e| e.joules().is_finite() && e.joules() >= 0.0));
        assert!(trace.total() < inner.total());
    }

    fn body_heat_like_solar() -> BlackoutOverlay {
        BlackoutOverlay::new(SourceKind::OutdoorSolar.instantiate(2), 2, 0.30)
            .expect("valid overlay")
    }
}
